//! The newline-delimited JSON-RPC wire protocol.
//!
//! One request per line, one response per line, in order. A request
//! names a [`Method`] plus either inline input (`"source"` for a
//! mini-language program, `"edges"` for a raw edge-list digraph) or a
//! previously registered `"unit"` id (the 16-hex content hash returned
//! by every inline request). `"id"` is echoed verbatim into the
//! response (`null` when absent or unparseable), so clients may use
//! numbers, strings, or nothing.
//!
//! ```json
//! {"id": 1, "method": "pst", "source": "fn f(n) { return n; }"}
//! {"id": 1, "ok": true, "unit": "9b60933458e17dc1", "cached": false,
//!  "nanos": 184023, "result": {...}}
//! {"id": 2, "method": "lint", "unit": "9b60933458e17dc1"}
//! {"id": 3, "method": "oops"}
//! {"id": 3, "ok": false,
//!  "error": {"code": "unknown_method", "message": "..."}}
//! ```
//!
//! Every failure — malformed JSON, invalid graphs, a contained panic —
//! is a structured `{"ok": false, "error": {...}}` envelope; the daemon
//! never dies on a request. See `docs/SERVING.md` for the full method
//! and error-code tables.

use pst_obs::json::Json;

/// Every request method the daemon answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Program structure tree + per-function shape statistics.
    Pst,
    /// Control-dependence equivalence classes (§5, Theorem 7).
    ControlRegions,
    /// Strong control dependence: NTSCD relation, DOD witnesses, and the
    /// strong-region partition (`pst-controldep`, `docs/CONTROLDEP.md`).
    Controldep,
    /// Structural lint diagnostics (`pst-analysis`).
    Lint,
    /// φ-placement and SSA renaming (§6.1). Mini units only.
    Ssa,
    /// Per-variable reaching definitions via QPGs (§6.2). Mini units only.
    Dataflow,
    /// Definition-1 repair report for an edge-list digraph. Edge units only.
    Canonicalize,
    /// Session cache statistics and `serve_*` counters.
    Stats,
    /// Live windowed telemetry: per-method and per-shard latency
    /// quantiles, rates, and cache-hit ratios over the last N windows.
    /// `"format": "text"` asks for Prometheus-style text exposition.
    Metrics,
    /// The bounded ring of the slowest requests seen so far, each with a
    /// per-phase timing breakdown.
    Slowlog,
    /// Graceful drain: stop admitting new work, finish in-flight
    /// requests, flush journal/metrics, then exit.
    Drain,
    /// Acknowledge and stop serving after this response.
    Shutdown,
}

impl Method {
    /// Every method, in documentation order.
    pub const ALL: [Method; 12] = [
        Method::Pst,
        Method::ControlRegions,
        Method::Controldep,
        Method::Lint,
        Method::Ssa,
        Method::Dataflow,
        Method::Canonicalize,
        Method::Stats,
        Method::Metrics,
        Method::Slowlog,
        Method::Drain,
        Method::Shutdown,
    ];

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Pst => "pst",
            Method::ControlRegions => "control_regions",
            Method::Controldep => "controldep",
            Method::Lint => "lint",
            Method::Ssa => "ssa",
            Method::Dataflow => "dataflow",
            Method::Canonicalize => "canonicalize",
            Method::Stats => "stats",
            Method::Metrics => "metrics",
            Method::Slowlog => "slowlog",
            Method::Drain => "drain",
            Method::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Method> {
        Method::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// Structured error codes of the response envelope, ordered roughly by
/// how early in the request path they fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line exceeded the configured size limit.
    OversizedRequest,
    /// The request line was not valid UTF-8.
    InvalidUtf8,
    /// The request line was not valid JSON.
    ParseError,
    /// The request was JSON but not a valid request object.
    InvalidRequest,
    /// The `method` field names no known method.
    UnknownMethod,
    /// The referenced unit id was never registered or has been evicted.
    UnknownUnit,
    /// The method does not apply to this unit kind (e.g. `ssa` on an
    /// edge-list unit, which has no variables).
    Unsupported,
    /// The pipeline rejected the input with a proper error.
    AnalysisError,
    /// The request ran past its `--request-timeout-ms` budget and was
    /// abandoned at a cooperative checkpoint between analysis phases.
    DeadlineExceeded,
    /// The daemon is saturated (or draining) and shed this request
    /// before doing any work; the envelope carries a `retry_after_ms`
    /// hint for the client's backoff.
    Overloaded,
    /// The pipeline panicked; the panic was contained and the daemon
    /// keeps serving.
    Panic,
}

impl ErrorCode {
    /// The wire name stored in `error.code`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::OversizedRequest => "oversized_request",
            ErrorCode::InvalidUtf8 => "invalid_utf8",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::UnknownMethod => "unknown_method",
            ErrorCode::UnknownUnit => "unknown_unit",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::AnalysisError => "analysis_error",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Panic => "panic",
        }
    }
}

/// What a request asks the daemon to analyze.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestInput {
    /// Inline mini-language source (registers the unit).
    MiniSource(String),
    /// Inline `a->b` edge-list digraph (registers the unit).
    EdgeList(String),
    /// A previously registered unit id (content-hash key).
    Unit(u64),
    /// No input (only valid for the unit-less control methods:
    /// `stats`, `metrics`, `slowlog`, `drain`, `shutdown`).
    None,
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed into the response; `Json::Null` when absent.
    pub id: Json,
    /// The requested method.
    pub method: Method,
    /// The input to analyze.
    pub input: RequestInput,
    /// The `"inject"` field, honored only by `fault-inject` builds
    /// (e2e panic-containment tests); carried so production builds can
    /// reject it loudly instead of silently ignoring it.
    pub inject: Option<String>,
    /// The `"format"` field (`metrics` only): `"text"` selects the
    /// Prometheus-style exposition; absent or `"json"` selects JSON.
    pub format: Option<String>,
}

/// A request that could not be parsed into a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct RequestError {
    /// Echoed id (best effort: `null` unless the line parsed as JSON).
    pub id: Json,
    /// The envelope code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl Request {
    /// Parses one NDJSON line. All failures come back as
    /// [`RequestError`] envelopes, never panics.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let fail = |id: Json, code: ErrorCode, message: String| RequestError { id, code, message };
        let j = Json::parse(line).map_err(|e| {
            fail(
                Json::Null,
                ErrorCode::ParseError,
                format!("request is not valid JSON: {e}"),
            )
        })?;
        if !matches!(j, Json::Obj(_)) {
            return Err(fail(
                Json::Null,
                ErrorCode::InvalidRequest,
                "request must be a JSON object".to_string(),
            ));
        }
        let id = j.get("id").cloned().unwrap_or(Json::Null);
        let method_name = match j.get("method") {
            Some(Json::Str(m)) => m.clone(),
            Some(_) => {
                return Err(fail(
                    id,
                    ErrorCode::InvalidRequest,
                    "`method` must be a string".to_string(),
                ))
            }
            None => {
                return Err(fail(
                    id,
                    ErrorCode::InvalidRequest,
                    "request has no `method` field".to_string(),
                ))
            }
        };
        let method = Method::from_name(&method_name).ok_or_else(|| {
            fail(
                id.clone(),
                ErrorCode::UnknownMethod,
                format!(
                    "unknown method `{method_name}` (expected one of: {})",
                    Method::ALL.map(Method::name).join(", ")
                ),
            )
        })?;
        let text_field = |key: &str| -> Result<Option<String>, RequestError> {
            match j.get(key) {
                None => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(fail(
                    id.clone(),
                    ErrorCode::InvalidRequest,
                    format!("`{key}` must be a string"),
                )),
            }
        };
        let source = text_field("source")?;
        let edges = text_field("edges")?;
        let unit = text_field("unit")?;
        let inject = text_field("inject")?;
        let format = text_field("format")?;
        let given = [source.is_some(), edges.is_some(), unit.is_some()]
            .iter()
            .filter(|&&g| g)
            .count();
        if given > 1 {
            return Err(fail(
                id,
                ErrorCode::InvalidRequest,
                "give exactly one of `source`, `edges`, or `unit`".to_string(),
            ));
        }
        let input = if let Some(s) = source {
            RequestInput::MiniSource(s)
        } else if let Some(e) = edges {
            RequestInput::EdgeList(e)
        } else if let Some(u) = unit {
            let key = crate::hash::parse_unit_hex(&u).ok_or_else(|| {
                fail(
                    id.clone(),
                    ErrorCode::InvalidRequest,
                    format!("`unit` must be a 16-hex-digit id, got `{u}`"),
                )
            })?;
            RequestInput::Unit(key)
        } else {
            RequestInput::None
        };
        Ok(Request {
            id,
            method,
            input,
            inject,
            format,
        })
    }
}

/// Builds the success envelope. `unit`/`cached` are omitted for
/// unit-less methods (`stats`, `shutdown`).
pub fn ok_response(
    id: &Json,
    unit: Option<&str>,
    cached: Option<bool>,
    nanos: u64,
    result: Json,
) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
    ];
    if let Some(u) = unit {
        fields.push(("unit".to_string(), Json::Str(u.to_string())));
    }
    if let Some(c) = cached {
        fields.push(("cached".to_string(), Json::Bool(c)));
    }
    fields.push(("nanos".to_string(), Json::UInt(nanos)));
    fields.push(("result".to_string(), result));
    Json::Obj(fields)
}

/// Builds the error envelope.
pub fn error_response(id: &Json, code: ErrorCode, message: &str) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::Str(code.as_str().to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        ),
    ])
}

/// Builds the overload-shedding envelope: an `overloaded` error whose
/// error object carries a `retry_after_ms` backoff hint for the client.
pub fn overloaded_response(id: &Json, message: &str, retry_after_ms: u64) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                (
                    "code",
                    Json::Str(ErrorCode::Overloaded.as_str().to_string()),
                ),
                ("message", Json::Str(message.to_string())),
                ("retry_after_ms", Json::UInt(retry_after_ms)),
            ]),
        ),
    ])
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_and_unit_requests() {
        let r = Request::parse(r#"{"id": 7, "method": "pst", "source": "fn f(n) {}"}"#).unwrap();
        assert_eq!(r.id, Json::UInt(7));
        assert_eq!(r.method, Method::Pst);
        assert_eq!(r.input, RequestInput::MiniSource("fn f(n) {}".into()));

        let r = Request::parse(r#"{"method": "lint", "unit": "00000000000000ff"}"#).unwrap();
        assert_eq!(r.id, Json::Null);
        assert_eq!(r.input, RequestInput::Unit(0xff));

        let r = Request::parse(r#"{"method": "shutdown"}"#).unwrap();
        assert_eq!(r.input, RequestInput::None);
    }

    #[test]
    fn rejects_malformed_requests_with_typed_codes() {
        let e = Request::parse("not json {").unwrap_err();
        assert_eq!(e.code, ErrorCode::ParseError);
        let e = Request::parse(r#"[1, 2]"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        let e = Request::parse(r#"{"id": 1}"#).unwrap_err();
        assert_eq!((e.code, &e.id), (ErrorCode::InvalidRequest, &Json::UInt(1)));
        let e = Request::parse(r#"{"id": 1, "method": "frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownMethod);
        let e = Request::parse(r#"{"method": "pst", "source": "a", "unit": "b"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        let e = Request::parse(r#"{"method": "pst", "unit": "xyz"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
    }

    #[test]
    fn envelopes_round_trip_through_the_json_parser() {
        let ok = ok_response(&Json::UInt(3), Some("abc"), Some(true), 42, Json::Null);
        let parsed = Json::parse(&ok.to_string()).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(true)));
        let err = error_response(&Json::Null, ErrorCode::Panic, "boom");
        let parsed = Json::parse(&err.to_string()).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("panic".into()))
        );
        let shed = overloaded_response(&Json::UInt(5), "saturated", 40);
        let parsed = Json::parse(&shed.to_string()).unwrap();
        assert_eq!(
            parsed.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("overloaded".into()))
        );
        assert_eq!(
            parsed.get("error").and_then(|e| e.get("retry_after_ms")),
            Some(&Json::UInt(40))
        );
    }

    #[test]
    fn metrics_and_slowlog_parse_with_an_optional_format() {
        let r = Request::parse(r#"{"id": 4, "method": "metrics", "format": "text"}"#).unwrap();
        assert_eq!(r.method, Method::Metrics);
        assert_eq!(r.format.as_deref(), Some("text"));
        assert_eq!(r.input, RequestInput::None);
        let r = Request::parse(r#"{"method": "slowlog"}"#).unwrap();
        assert_eq!(r.method, Method::Slowlog);
        assert_eq!(r.format, None);
        let e = Request::parse(r#"{"method": "metrics", "format": 3}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
    }

    #[test]
    fn drain_parses_as_an_inputless_method() {
        let r = Request::parse(r#"{"id": 2, "method": "drain"}"#).unwrap();
        assert_eq!(r.method, Method::Drain);
        assert_eq!(r.input, RequestInput::None);
    }
}
