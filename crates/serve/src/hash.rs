//! Content hashing for the session cache.
//!
//! A unit id is the 64-bit hash of its input text, mixed with the input
//! *kind* (mini source vs raw edge list) so the same bytes registered
//! both ways never collide into one cache slot. The mix is the same
//! SplitMix64 finalizer the rest of the repo uses for seeded generators
//! and trace ids: each 8-byte chunk of input is absorbed with a
//! multiply-xor fold and the state is finished through the SplitMix64
//! permutation. This is *not* a cryptographic hash — it keys a cache in
//! a trusted process, and a collision only costs a wrong cache hit for
//! an adversarially crafted input pair.

/// The SplitMix64 finalizer (same constants as `pst_obs::journal` and
/// `pst_perf::stats`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes `bytes` under a domain-separating `kind` tag.
pub fn content_hash(kind: u64, bytes: &[u8]) -> u64 {
    let mut state = splitmix64(kind ^ 0x5045_5354_5345_5256); // "PEST SERV"-ish salt
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = splitmix64(state ^ u64::from_le_bytes(word));
    }
    // Absorb the length so `"a"` and `"a\0"` (same padded word) differ.
    splitmix64(state ^ bytes.len() as u64)
}

/// Renders a unit id the way the wire protocol spells it: 16 lowercase
/// hex digits, the same shape as journal trace ids.
pub fn unit_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a wire unit id back into the cache key.
pub fn parse_unit_hex(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_kind_separated() {
        let a = content_hash(0, b"fn f(n) { return n; }");
        assert_eq!(a, content_hash(0, b"fn f(n) { return n; }"));
        assert_ne!(a, content_hash(1, b"fn f(n) { return n; }"));
        assert_ne!(a, content_hash(0, b"fn f(n) { return n;  }"));
    }

    #[test]
    fn length_breaks_padding_collisions() {
        assert_ne!(content_hash(0, b"a"), content_hash(0, b"a\0"));
        assert_ne!(content_hash(0, b""), content_hash(0, b"\0"));
    }

    #[test]
    fn unit_hex_round_trips() {
        let h = content_hash(0, b"round trip");
        assert_eq!(parse_unit_hex(&unit_hex(h)), Some(h));
        assert_eq!(parse_unit_hex("nope"), None);
        assert_eq!(parse_unit_hex("123"), None);
        assert_eq!(parse_unit_hex("zzzzzzzzzzzzzzzz"), None);
    }
}
