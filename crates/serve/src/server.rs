//! The serving loops: stdin/stdout and TCP (std::net only).
//!
//! Both transports share [`serve_stream`], which reads one request line
//! at a time with a *bounded* reader: a line longer than
//! `max_request_bytes` is drained without buffering and answered with
//! an `oversized_request` envelope, and a non-UTF-8 line is answered
//! with `invalid_utf8` naming the first bad byte offset — the daemon
//! never dies on input, it answers. Blank lines are skipped; EOF (or a
//! client disconnect, over TCP) ends the stream cleanly; an
//! acknowledged `shutdown` ends the daemon.
//!
//! The TCP listener serves connections *sequentially* against one
//! shared session, so cache state persists across clients and the
//! daemon needs no locks at all — the only `Mutex`es in the whole
//! serving path are `pst-obs` internals, every one of which recovers
//! from poisoning via `into_inner` (see `docs/SERVING.md`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

use crate::session::{Reply, ServeConfig, Session};

/// One bounded read off the request stream.
enum Line {
    /// Stream ended before any byte of a new line.
    Eof,
    /// A complete UTF-8 line within the size cap (no trailing newline;
    /// an unterminated final line is still a request).
    Text(String),
    /// Line exceeded the cap; carries the actual byte length drained.
    Oversized(usize),
    /// Line was not UTF-8; carries the offset of the first invalid byte.
    InvalidUtf8(usize),
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes.
/// Oversized lines are drained to the newline but never held in memory.
fn read_bounded_line<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<Line> {
    let mut buf = Vec::new();
    let mut total = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if total == 0 {
                return Ok(Line::Eof);
            }
            break;
        }
        let (consumed, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        let chunk_len = if done { consumed - 1 } else { consumed };
        total += chunk_len;
        if total <= cap {
            buf.extend_from_slice(&available[..chunk_len]);
        }
        reader.consume(consumed);
        if done {
            break;
        }
    }
    if total > cap {
        return Ok(Line::Oversized(total));
    }
    match String::from_utf8(buf) {
        Ok(text) => Ok(Line::Text(text)),
        Err(e) => Ok(Line::InvalidUtf8(e.utf8_error().valid_up_to())),
    }
}

/// Serves one request stream to completion. Returns `true` when a
/// `shutdown` request ended it, `false` on EOF/disconnect.
pub fn serve_stream<R: BufRead, W: Write>(
    session: &mut Session,
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<bool> {
    let cap = session.config().max_request_bytes;
    loop {
        let reply: Reply = match read_bounded_line(reader, cap)? {
            Line::Eof => return Ok(false),
            Line::Text(line) if line.trim().is_empty() => continue,
            Line::Text(line) => session.handle_line(&line),
            Line::Oversized(actual) => session.oversized_reply(actual),
            Line::InvalidUtf8(offset) => session.invalid_utf8_reply(offset),
        };
        writer.write_all(reply.line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if reply.shutdown {
            return Ok(true);
        }
    }
}

/// Serves stdin → stdout until EOF or `shutdown`.
pub fn serve_stdio(config: ServeConfig) -> std::io::Result<()> {
    let mut session = Session::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_stream(&mut session, &mut reader, &mut writer)?;
    Ok(())
}

/// Binds `addr` (`addr:port`; port 0 picks a free port) and serves TCP
/// connections sequentially against one shared session. The bound
/// address is announced on stdout as `pst serve: listening on <addr>`
/// so callers that requested port 0 can find the port. A per-connection
/// I/O error drops that client and keeps the daemon alive; `shutdown`
/// stops the accept loop.
pub fn serve_tcp(config: ServeConfig, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    {
        let mut out = std::io::stdout().lock();
        writeln!(out, "pst serve: listening on {}", listener.local_addr()?)?;
        out.flush()?;
    }
    serve_listener(config, listener)
}

/// Serves an already-bound listener (see [`serve_tcp`]); split out so
/// tests can bind their own port without racing on rebinds.
pub fn serve_listener(config: ServeConfig, listener: TcpListener) -> std::io::Result<()> {
    let mut session = Session::new(config);
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(stream);
        let mut writer = write_half;
        match serve_stream(&mut session, &mut reader, &mut writer) {
            Ok(true) => break,
            Ok(false) | Err(_) => continue,
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pst_obs::json::Json;

    fn drive(input: &[u8], config: ServeConfig) -> (Vec<Json>, bool) {
        let mut session = Session::new(config);
        let mut reader = std::io::Cursor::new(input.to_vec());
        let mut out = Vec::new();
        let shutdown = serve_stream(&mut session, &mut reader, &mut out).unwrap();
        let replies = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every reply line is JSON"))
            .collect();
        (replies, shutdown)
    }

    #[test]
    fn round_trip_blank_lines_eof_and_shutdown() {
        let input = b"\n{\"id\": 1, \"method\": \"stats\"}\n\n{\"method\": \"shutdown\"}\n{\"method\": \"stats\"}\n";
        let (replies, shutdown) = drive(input, ServeConfig::default());
        // Blank lines answered nothing; the post-shutdown request was
        // never read.
        assert_eq!(replies.len(), 2);
        assert!(shutdown);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(replies[0].get("id"), Some(&Json::UInt(1)));
    }

    #[test]
    fn unterminated_final_line_is_still_a_request() {
        let (replies, shutdown) = drive(b"{\"method\": \"stats\"}", ServeConfig::default());
        assert_eq!(replies.len(), 1);
        assert!(!shutdown);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn oversized_line_is_drained_and_answered_then_serving_continues() {
        let config = ServeConfig {
            max_request_bytes: 64,
            ..ServeConfig::default()
        };
        let big = format!("{{\"method\": \"pst\", \"source\": \"{}\"}}", "x".repeat(500));
        let input = format!("{big}\n{{\"method\": \"stats\"}}\n");
        let (replies, _) = drive(input.as_bytes(), config);
        assert_eq!(replies.len(), 2);
        assert_eq!(
            replies[0].get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("oversized_request".into()))
        );
        assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn invalid_utf8_line_reports_the_bad_offset() {
        let mut input = b"{\"method\": \"stats\"".to_vec();
        input.push(0xff);
        input.extend_from_slice(b"}\n{\"method\": \"stats\"}\n");
        let (replies, _) = drive(&input, ServeConfig::default());
        assert_eq!(replies.len(), 2);
        let err = replies[0].get("error").unwrap();
        assert_eq!(err.get("code"), Some(&Json::Str("invalid_utf8".into())));
        match err.get("message") {
            Some(Json::Str(m)) => assert!(m.contains("offset 18"), "got: {m}"),
            other => panic!("no message: {other:?}"),
        }
        assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn tcp_round_trip_on_a_test_bound_port() {
        // Bind our own free port, serve it in a thread, talk to it.
        use std::io::{BufRead as _, BufReader, Write as _};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_listener(ServeConfig::default(), listener).unwrap();
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": 1, \"method\": \"stats\"}\n{\"method\": \"shutdown\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let bye = Json::parse(line.trim()).unwrap();
        assert_eq!(
            bye.get("result").and_then(|r| r.get("stopping")),
            Some(&Json::Bool(true))
        );
        server.join().unwrap();
    }
}
