//! The serving loops: stdin/stdout and a concurrent TCP front (std::net
//! only).
//!
//! Both transports share the bounded `LineReader`: a line longer than
//! `max_request_bytes` is drained without buffering and answered with an
//! `oversized_request` envelope, and a non-UTF-8 line is answered with
//! `invalid_utf8` naming the first bad byte offset — the daemon never
//! dies on input, it answers. Blank lines are skipped; EOF (or a client
//! disconnect, over TCP) ends that stream cleanly; an acknowledged
//! `shutdown` or `drain` ends the daemon.
//!
//! The TCP path is a bounded worker pool (`--workers N`, scoped threads)
//! behind a non-blocking accept loop. Accepted connections land in a
//! bounded queue; when the queue is full the connection is shed with a
//! raw `overloaded` envelope instead of silently queueing unbounded
//! work. Worker streams carry a short read timeout so an idle or
//! wedged client can never pin a worker across a drain: every timeout
//! tick re-checks the drain flag. A failed `accept()` or a mid-stream
//! I/O error is counted (`serve_conn_errors`) and never stops the
//! accept loop — connection trouble is per-client, not per-daemon.
//!
//! Drain choreography: `drain`/`shutdown` flips the shared monotone
//! flag; the accept loop stops accepting and closes the queue; each
//! worker finishes (and answers) its in-flight request, refuses to read
//! further lines, and exits; the scope joins; then the owning thread
//! runs the epilogue (cache snapshot, journal/metrics flush).

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use pst_obs::json::Json;

use crate::proto::overloaded_response;
use crate::session::{Reply, ServeConfig};
use crate::shared::SharedSession;

/// How often a blocked worker re-checks lifecycle flags.
const POLL_TICK: Duration = Duration::from_millis(50);
/// Accept-loop sleep when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
/// Pending-connection queue bound, per worker.
const QUEUE_PER_WORKER: usize = 4;

/// One bounded read off the request stream.
enum Line {
    /// Stream ended before any byte of a new line.
    Eof,
    /// A complete UTF-8 line within the size cap (no trailing newline;
    /// an unterminated final line is still a request).
    Text(String),
    /// Line exceeded the cap; carries the actual byte length drained.
    Oversized(usize),
    /// Line was not UTF-8; carries the offset of the first invalid byte.
    InvalidUtf8(usize),
}

/// A bounded line reader that survives read timeouts: partial-line
/// state persists across calls, so a stream with a read timeout can be
/// polled (`Ok(None)` = no complete line yet, check the drain flag and
/// come back) without ever corrupting or dropping request bytes.
struct LineReader<R> {
    reader: R,
    cap: usize,
    buf: Vec<u8>,
    total: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(reader: R, cap: usize) -> Self {
        LineReader {
            reader,
            cap,
            buf: Vec::new(),
            total: 0,
        }
    }

    /// Reads one `\n`-terminated line, buffering at most `cap` bytes
    /// (oversized lines are drained to the newline but never held).
    /// `Ok(None)` means the read timed out mid-line; call again.
    fn read_line(&mut self) -> io::Result<Option<Line>> {
        loop {
            let available = match self.reader.fill_buf() {
                Ok(available) => available,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                if self.total == 0 {
                    return Ok(Some(Line::Eof));
                }
                break; // unterminated final line is still a request
            }
            let (consumed, done) = match available.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos + 1, true),
                None => (available.len(), false),
            };
            let chunk_len = if done { consumed - 1 } else { consumed };
            self.total += chunk_len;
            if self.total <= self.cap {
                let chunk = &available[..chunk_len];
                self.buf.extend_from_slice(chunk);
            }
            self.reader.consume(consumed);
            if done {
                break;
            }
        }
        let total = std::mem::take(&mut self.total);
        let buf = std::mem::take(&mut self.buf);
        if total > self.cap {
            return Ok(Some(Line::Oversized(total)));
        }
        match String::from_utf8(buf) {
            Ok(text) => Ok(Some(Line::Text(text))),
            Err(e) => Ok(Some(Line::InvalidUtf8(e.utf8_error().valid_up_to()))),
        }
    }
}

fn reply_for(shared: &SharedSession, line: Line) -> Option<Reply> {
    match line {
        Line::Eof => None,
        Line::Text(text) if text.trim().is_empty() => Some(Reply {
            line: String::new(),
            shutdown: false,
            drop_conn: false,
            outcome: None,
        }),
        Line::Text(text) => Some(shared.handle_line(&text)),
        Line::Oversized(actual) => Some(shared.oversized_reply(actual)),
        Line::InvalidUtf8(offset) => Some(shared.invalid_utf8_reply(offset)),
    }
}

/// Serves one request stream to completion against the shared session.
/// Returns `true` when a `shutdown`/`drain` acknowledged on *this*
/// stream ended it, `false` on EOF/disconnect (or when a drain from
/// another stream stopped the daemon).
pub fn serve_stream<R: BufRead, W: Write>(
    shared: &SharedSession,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<bool> {
    let cap = shared.config().max_request_bytes;
    let mut lines = LineReader::new(reader, cap);
    loop {
        let line = match lines.read_line()? {
            Some(line) => line,
            // Timeout tick on a timeout-capable stream: stop reading if
            // the daemon is draining, otherwise poll again.
            None if shared.is_draining() => return Ok(false),
            None => continue,
        };
        let Some(reply) = reply_for(shared, line) else {
            return Ok(false); // EOF
        };
        if reply.line.is_empty() {
            continue; // blank input line
        }
        if reply.drop_conn {
            // Injected drop-conn fault: vanish without replying. The
            // client sees an abrupt disconnect and is expected to retry.
            return Ok(false);
        }
        writer.write_all(reply.line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if reply.shutdown {
            return Ok(true);
        }
        if shared.is_draining() {
            return Ok(false);
        }
    }
}

/// Serves stdin → stdout until EOF or `shutdown`/`drain`. Stdio has one
/// stream, so the worker pool collapses to the calling thread
/// (`workers` is forced to 1 — one shard, no idle mutex traffic). A
/// `--metrics-listen` responder, when configured, runs on a side thread
/// (announced on stderr — stdout belongs to the NDJSON replies).
pub fn serve_stdio(mut config: ServeConfig) -> io::Result<()> {
    config.workers = 1;
    let metrics = match &config.metrics_listen {
        Some(addr) => {
            let listener = bind_metrics(addr)?;
            eprintln!("pst serve: metrics on {}", listener.local_addr()?);
            Some(listener)
        }
        None => None,
    };
    let shared = SharedSession::new(config);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let stopped = std::sync::atomic::AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        if let Some(listener) = &metrics {
            scope.spawn(|| {
                while !stopped.load(std::sync::atomic::Ordering::SeqCst) && !shared.is_draining() {
                    poll_metrics(&shared, listener);
                    std::thread::sleep(ACCEPT_TICK);
                }
            });
        }
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        let result = serve_stream(&shared, &mut reader, &mut writer);
        stopped.store(true, std::sync::atomic::Ordering::SeqCst);
        result
    });
    shared.finish();
    result.map(|_| ())
}

/// Binds the one-shot HTTP metrics responder (non-blocking, polled by
/// whichever loop owns the daemon's idle ticks).
fn bind_metrics(addr: &str) -> io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// Drains every pending metrics connection: read the request
/// best-effort, answer one `HTTP/1.0 200` text exposition, close. Any
/// connection trouble is counted and never stops the daemon.
fn poll_metrics(shared: &SharedSession, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    shared.note_conn_error();
                    continue;
                }
                answer_metrics_conn(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => {
                shared.note_conn_error();
                return;
            }
        }
    }
}

/// Answers one scrape. The request line is read (bounded, best-effort)
/// only to let well-behaved HTTP clients finish writing; the response
/// is the same exposition for every path.
fn answer_metrics_conn(shared: &SharedSession, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 1024];
    let _ = io::Read::read(&mut stream, &mut scratch);
    let body = shared.render_metrics_text();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(response.as_bytes()).is_err() {
        shared.note_conn_error();
    }
}

/// Binds `addr` (`addr:port`; port 0 picks a free port) and serves TCP
/// connections concurrently. The bound address is announced on stdout
/// as `pst serve: listening on <addr>` so callers that requested port 0
/// can find the port.
pub fn serve_tcp(config: ServeConfig, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    {
        let mut out = io::stdout().lock();
        writeln!(out, "pst serve: listening on {}", listener.local_addr()?)?;
        out.flush()?;
    }
    serve_listener(config, listener)
}

/// A bounded hand-off queue from the accept loop to the worker pool.
/// Push beyond the bound is refused (the caller sheds the connection);
/// closing wakes every blocked worker.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    bound: usize,
}

impl ConnQueue {
    fn new(bound: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            bound,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<TcpStream>, bool)> {
        // Poison recovery, per docs/SERVING.md § Locking: the queue
        // holds plain connection handles; a panicking worker cannot
        // leave them inconsistent.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues a connection, or returns it when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.1 || state.0.len() >= self.bound {
            return Err(stream);
        }
        state.0.push_back(stream);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            let (next, _timeout) = self
                .ready
                .wait_timeout(state, POLL_TICK)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }

    /// Stops accepting pushes and wakes all workers. Already-queued
    /// connections are still handed out (they were accepted; shedding
    /// them now would strand clients silently).
    fn close(&self) {
        self.lock().1 = true;
        self.ready.notify_all();
    }
}

/// Writes a raw `overloaded` envelope to a connection the queue
/// refused, then drops it. Best-effort: the client may already be gone.
fn shed_connection(shared: &SharedSession, mut stream: TcpStream) {
    pst_obs::counter!("serve_shed");
    let line = overloaded_response(
        &Json::Null,
        &format!(
            "daemon accept queue is full ({} workers; --workers); retry after the hint",
            shared.config().workers
        ),
        25,
    )
    .to_string();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Serves one accepted connection on a worker thread. All I/O errors
/// are counted and end only this connection.
fn serve_conn(shared: &SharedSession, stream: TcpStream) {
    // A short read timeout turns a blocked worker into a poller, so an
    // idle connection can never hold a worker hostage across a drain.
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        shared.note_conn_error();
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.note_conn_error();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    if let Err(_e) = serve_stream(shared, &mut reader, &mut writer) {
        shared.note_conn_error();
    }
}

/// Serves an already-bound listener (see [`serve_tcp`]); split out so
/// tests can bind their own port without racing on rebinds. Returns
/// after a `shutdown`/`drain` finished the in-flight work and the
/// epilogue (snapshot + telemetry flush) ran.
pub fn serve_listener(config: ServeConfig, listener: TcpListener) -> io::Result<()> {
    let metrics = match &config.metrics_listen {
        Some(addr) => {
            let bound = bind_metrics(addr)?;
            // Announced like the main listener so a port-0 caller can
            // find the scrape endpoint.
            let mut out = io::stdout().lock();
            writeln!(out, "pst serve: metrics on {}", bound.local_addr()?)?;
            out.flush()?;
            Some(bound)
        }
        None => None,
    };
    let shared = SharedSession::new(config);
    let workers = shared.config().workers.max(1);
    listener.set_nonblocking(true)?;
    let queue = ConnQueue::new(workers * QUEUE_PER_WORKER);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(stream) = queue.pop() {
                    serve_conn(&shared, stream);
                    // Fold this connection's thread-local telemetry so a
                    // crash after any connection loses nothing.
                    pst_obs::flush_thread();
                }
                pst_obs::flush_thread();
            });
        }
        // The accept loop owns the lifecycle: poll, hand off, and stop
        // accepting the moment a drain is acknowledged anywhere. Metrics
        // scrapes piggyback on the same loop's idle ticks.
        loop {
            if shared.is_draining() {
                break;
            }
            if let Some(m) = &metrics {
                poll_metrics(&shared, m);
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.note_connection();
                    // Accepted sockets must not inherit the listener's
                    // non-blocking mode (platform-dependent).
                    if stream.set_nonblocking(false).is_err() {
                        shared.note_conn_error();
                        continue;
                    }
                    if let Err(refused) = queue.push(stream) {
                        shed_connection(&shared, refused);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(_) => {
                    // Satellite fix: a failed accept() is counted and
                    // the loop keeps serving — it used to be silently
                    // skipped and could never be observed.
                    shared.note_conn_error();
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        }
        queue.close();
    });
    shared.finish();
    pst_obs::flush_thread();
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn drive(input: &[u8], config: ServeConfig) -> (Vec<Json>, bool) {
        let shared = SharedSession::new(config);
        let mut reader = std::io::Cursor::new(input.to_vec());
        let mut out = Vec::new();
        let shutdown = serve_stream(&shared, &mut reader, &mut out).unwrap();
        let replies = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every reply line is JSON"))
            .collect();
        (replies, shutdown)
    }

    #[test]
    fn round_trip_blank_lines_eof_and_shutdown() {
        let input = b"\n{\"id\": 1, \"method\": \"stats\"}\n\n{\"method\": \"shutdown\"}\n{\"method\": \"stats\"}\n";
        let (replies, shutdown) = drive(input, ServeConfig::default());
        // Blank lines answered nothing; the post-shutdown request was
        // never read.
        assert_eq!(replies.len(), 2);
        assert!(shutdown);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(replies[0].get("id"), Some(&Json::UInt(1)));
    }

    #[test]
    fn drain_ends_the_stream_like_shutdown() {
        let input = b"{\"id\": 1, \"method\": \"drain\"}\n{\"method\": \"stats\"}\n";
        let (replies, shutdown) = drive(input, ServeConfig::default());
        assert_eq!(replies.len(), 1);
        assert!(shutdown);
        assert_eq!(
            replies[0].get("result").and_then(|r| r.get("draining")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn unterminated_final_line_is_still_a_request() {
        let (replies, shutdown) = drive(b"{\"method\": \"stats\"}", ServeConfig::default());
        assert_eq!(replies.len(), 1);
        assert!(!shutdown);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn oversized_line_is_drained_and_answered_then_serving_continues() {
        let config = ServeConfig {
            max_request_bytes: 64,
            ..ServeConfig::default()
        };
        let big = format!("{{\"method\": \"pst\", \"source\": \"{}\"}}", "x".repeat(500));
        let input = format!("{big}\n{{\"method\": \"stats\"}}\n");
        let (replies, _) = drive(input.as_bytes(), config);
        assert_eq!(replies.len(), 2);
        assert_eq!(
            replies[0].get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("oversized_request".into()))
        );
        assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn invalid_utf8_line_reports_the_bad_offset() {
        let mut input = b"{\"method\": \"stats\"".to_vec();
        input.push(0xff);
        input.extend_from_slice(b"}\n{\"method\": \"stats\"}\n");
        let (replies, _) = drive(&input, ServeConfig::default());
        assert_eq!(replies.len(), 2);
        let err = replies[0].get("error").unwrap();
        assert_eq!(err.get("code"), Some(&Json::Str("invalid_utf8".into())));
        match err.get("message") {
            Some(Json::Str(m)) => assert!(m.contains("offset 18"), "got: {m}"),
            other => panic!("no message: {other:?}"),
        }
        assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn tcp_round_trip_on_a_test_bound_port() {
        // Bind our own free port, serve it in a thread, talk to it.
        use std::io::{BufRead as _, BufReader, Write as _};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_listener(ServeConfig::default(), listener).unwrap();
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": 1, \"method\": \"stats\"}\n{\"method\": \"shutdown\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let bye = Json::parse(line.trim()).unwrap();
        assert_eq!(
            bye.get("result").and_then(|r| r.get("stopping")),
            Some(&Json::Bool(true))
        );
        server.join().unwrap();
    }

    #[test]
    fn concurrent_clients_are_all_answered_and_drain_finishes_in_flight() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        };
        let server = std::thread::spawn(move || {
            serve_listener(config, listener).unwrap();
        });
        // Several concurrent clients, each with its own unit.
        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = std::net::TcpStream::connect(addr).unwrap();
                    let line = format!(
                        "{{\"id\": {i}, \"method\": \"pst\", \"source\": \"fn c{i}(n) {{ return n; }}\"}}\n"
                    );
                    stream.write_all(line.as_bytes()).unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    Json::parse(reply.trim()).unwrap()
                })
            })
            .collect();
        for (i, client) in clients.into_iter().enumerate() {
            let reply = client.join().unwrap();
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "client {i}");
        }
        // Drain from a fresh connection ends the daemon gracefully.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": \"bye\", \"method\": \"drain\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let bye = Json::parse(line.trim()).unwrap();
        assert_eq!(
            bye.get("result").and_then(|r| r.get("draining")),
            Some(&Json::Bool(true))
        );
        server.join().unwrap();
    }
}
