//! Crash-safe session-cache snapshots (`--cache-snapshot <path>`).
//!
//! A snapshot is NDJSON with a fixed frame:
//!
//! ```text
//! {"pst_snapshot": 1, "entries": N}          header (version + count)
//! {"kind": "mini", "source": "...", "results": {"pst": ..., ...}}
//! ...                                        N entry lines, LRU-first
//! {"checksum": "0123456789abcdef"}           splitmix64 over the payload
//! ```
//!
//! Entries carry the registered *source text* plus the memoized
//! per-method result JSON — not the parsed artifacts. Restoring replays
//! each entry through the normal registration path, so a snapshot can
//! never smuggle in artifacts the current binary wouldn't compute; the
//! memos are what make the first post-restart repeat query answer
//! `cached: true`. Entries are ordered least-recently-used first so the
//! restored cache has today's eviction order.
//!
//! Writes are crash-only: the whole file is rendered, written to a
//! `<path>.tmp.<suffix>` sibling, then atomically renamed over `<path>`.
//! A crash mid-write leaves the previous snapshot intact. Loading treats
//! *any* defect — missing file, bad header, version skew, truncation,
//! checksum mismatch, malformed entry — as "start cold": the daemon
//! logs the reason, counts `serve_snapshot_load_failed`, and serves with
//! an empty cache. A snapshot is an optimization, never a dependency.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use pst_obs::json::Json;

use crate::hash::{content_hash, unit_hex};
use crate::session::{ExportedUnit, KIND_EDGES, KIND_MINI};

/// Snapshot format version; bump on any incompatible frame change.
/// Loaders refuse other versions (cold start), never reinterpret.
pub(crate) const SNAPSHOT_VERSION: u64 = 1;

/// Domain tag for the payload checksum (distinct from unit hashing).
const KIND_CHECKSUM: u64 = 0xC0DE;

/// One restorable cache entry.
#[derive(Debug)]
pub(crate) struct SnapshotEntry {
    /// Unit kind tag ([`KIND_MINI`] / [`KIND_EDGES`]).
    pub kind: u64,
    /// The registered input text, verbatim.
    pub source: String,
    /// Memoized `(method name, result)` pairs.
    pub results: Vec<(String, Json)>,
}

/// Why a snapshot failed to load. Every variant means "start cold".
#[derive(Debug)]
pub(crate) enum SnapshotError {
    /// The file does not exist (a normal first boot).
    Missing,
    /// The file could not be read.
    Io(io::Error),
    /// The frame is structurally wrong (header, counts, checksum,
    /// entry shape, version skew).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no snapshot file (cold start)"),
            SnapshotError::Io(e) => write!(f, "snapshot unreadable: {e}"),
            SnapshotError::Malformed(why) => write!(f, "snapshot rejected: {why}"),
        }
    }
}

fn kind_name(kind: u64) -> Option<&'static str> {
    match kind {
        KIND_MINI => Some("mini"),
        KIND_EDGES => Some("edges"),
        _ => None,
    }
}

fn kind_tag(name: &str) -> Option<u64> {
    match name {
        "mini" => Some(KIND_MINI),
        "edges" => Some(KIND_EDGES),
        _ => None,
    }
}

/// Renders the full snapshot file (header, entries, checksum trailer).
fn render(entries: &[ExportedUnit]) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(entries.len() + 2);
    let mut persisted = 0u64;
    let mut body = Vec::with_capacity(entries.len());
    for (kind, source, results) in entries {
        let Some(kind) = kind_name(*kind) else {
            continue; // unknown kinds are dropped, not mis-tagged
        };
        persisted += 1;
        body.push(
            Json::obj([
                ("kind", Json::Str(kind.to_string())),
                ("source", Json::Str(source.clone())),
                (
                    "results",
                    Json::obj(results.iter().map(|(m, r)| (*m, r.clone()))),
                ),
            ])
            .to_string(),
        );
    }
    lines.push(
        Json::obj([
            ("pst_snapshot", Json::UInt(SNAPSHOT_VERSION)),
            ("entries", Json::UInt(persisted)),
        ])
        .to_string(),
    );
    lines.extend(body);
    let payload = lines.join("\n");
    let checksum = unit_hex(content_hash(KIND_CHECKSUM, payload.as_bytes()));
    lines.push(Json::obj([("checksum", Json::Str(checksum))]).to_string());
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

/// Writes a snapshot atomically: render, write `<path>.tmp.<suffix>`,
/// rename over `<path>`. `corrupt` truncates the rendered payload first
/// (the `corrupt-snapshot` chaos fault — proves the *loader's* cold-start
/// tolerance, which is why corruption happens before the atomic rename:
/// the damaged file is what the next boot sees).
pub(crate) fn save(
    path: &str,
    suffix: u64,
    entries: &[ExportedUnit],
    corrupt: bool,
) -> io::Result<()> {
    let mut text = render(entries);
    if corrupt {
        text.truncate(text.len() * 2 / 3);
    }
    let tmp = format!("{path}.tmp.{suffix}");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    let renamed = fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp); // never leave tmp litter behind
    }
    renamed
}

/// Loads and validates a snapshot. Any defect is an error; the caller
/// starts cold.
pub(crate) fn load(path: &str) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    if !Path::new(path).exists() {
        return Err(SnapshotError::Missing);
    }
    let text = fs::read_to_string(path).map_err(SnapshotError::Io)?;
    let malformed = |why: String| SnapshotError::Malformed(why);
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| malformed("empty file".to_string()))?;
    let header =
        Json::parse(header_line).map_err(|e| malformed(format!("header is not JSON: {e}")))?;
    let version = header
        .get("pst_snapshot")
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed("header lacks a pst_snapshot version".to_string()))?;
    if version != SNAPSHOT_VERSION {
        return Err(malformed(format!(
            "version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let count = header
        .get("entries")
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed("header lacks an entry count".to_string()))?;

    let mut entries = Vec::with_capacity(count as usize);
    let mut payload_lines = vec![header_line.to_string()];
    for i in 0..count {
        let line = lines
            .next()
            .ok_or_else(|| malformed(format!("truncated: {i} of {count} entries present")))?;
        payload_lines.push(line.to_string());
        let entry =
            Json::parse(line).map_err(|e| malformed(format!("entry {i} is not JSON: {e}")))?;
        let kind = match entry.get("kind") {
            Some(Json::Str(name)) => kind_tag(name)
                .ok_or_else(|| malformed(format!("entry {i} has unknown kind `{name}`")))?,
            _ => return Err(malformed(format!("entry {i} lacks a kind"))),
        };
        let source = match entry.get("source") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(malformed(format!("entry {i} lacks a source"))),
        };
        let results = match entry.get("results") {
            Some(Json::Obj(fields)) => fields.clone(),
            None => Vec::new(),
            _ => return Err(malformed(format!("entry {i} has non-object results"))),
        };
        entries.push(SnapshotEntry {
            kind,
            source,
            results,
        });
    }

    let trailer_line = lines
        .next()
        .ok_or_else(|| malformed("truncated: missing checksum trailer".to_string()))?;
    if lines.next().is_some() {
        return Err(malformed("trailing data after the checksum".to_string()));
    }
    let trailer =
        Json::parse(trailer_line).map_err(|e| malformed(format!("trailer is not JSON: {e}")))?;
    let stated = match trailer.get("checksum") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(malformed("trailer lacks a checksum".to_string())),
    };
    let payload = payload_lines.join("\n");
    let actual = unit_hex(content_hash(KIND_CHECKSUM, payload.as_bytes()));
    if stated != actual {
        return Err(malformed(format!(
            "checksum mismatch (file says {stated}, payload hashes to {actual})"
        )));
    }
    Ok(entries)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("pst-snap-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("cache.snapshot").to_string_lossy().into_owned()
    }

    fn sample() -> Vec<ExportedUnit> {
        vec![
            (
                KIND_MINI,
                "fn f(n) { return n; }".to_string(),
                vec![("pst", Json::obj([("ok", Json::Bool(true))]))],
            ),
            (KIND_EDGES, "0->1\n".to_string(), vec![]),
        ]
    }

    #[test]
    fn round_trips_entries_in_order() {
        let path = temp_path("roundtrip");
        save(&path, 0, &sample(), false).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].kind, KIND_MINI);
        assert_eq!(loaded[0].source, "fn f(n) { return n; }");
        assert_eq!(loaded[0].results.len(), 1);
        assert_eq!(loaded[0].results[0].0, "pst");
        assert_eq!(loaded[1].kind, KIND_EDGES);
        assert!(loaded[1].results.is_empty());
    }

    #[test]
    fn missing_truncated_and_corrupt_files_are_typed_errors() {
        let path = temp_path("defects");
        assert!(matches!(load(&path), Err(SnapshotError::Missing)));

        save(&path, 0, &sample(), false).unwrap();
        let good = fs::read_to_string(&path).unwrap();

        // Truncation (what the corrupt-snapshot chaos fault produces).
        fs::write(&path, &good[..good.len() * 2 / 3]).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Malformed(_))));

        // Payload tampering fails the checksum.
        fs::write(&path, good.replace("0->1", "0->2")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Version skew is refused, not reinterpreted.
        fs::write(&path, good.replace("\"pst_snapshot\":1", "\"pst_snapshot\":99")).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn corrupt_flag_produces_an_unloadable_file() {
        let path = temp_path("chaos");
        save(&path, 7, &sample(), true).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Malformed(_))));
    }
}
