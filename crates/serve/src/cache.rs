//! The session LRU cache.
//!
//! Units are keyed by content hash ([`crate::hash::content_hash`]) and
//! evicted least-recently-used under two configurable budgets: an entry
//! count (`--cache-entries`) and an approximate byte total
//! (`--cache-bytes`). Byte accounting is approximate by design — entries
//! report an estimate of their retained heap, and the estimate is
//! refreshed whenever a new pipeline stage is interned into a unit (so
//! a unit that has grown a PST and an SSA form weighs more than it did
//! at parse time).
//!
//! Recency is a monotone tick, not wall-clock time, so eviction order is
//! deterministic for a given request sequence.

use std::collections::HashMap;

/// Cache budgets. Zero means "no limit" for either axis.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum number of resident units (0 = unlimited).
    pub max_entries: usize,
    /// Maximum approximate resident bytes (0 = unlimited).
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 256,
            max_bytes: 64 << 20,
        }
    }
}

/// Monotone lifetime counters, surfaced by the `stats` method and
/// mirrored into `serve_*` obs counters by the session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Unit lookups that found a resident entry.
    pub hits: u64,
    /// Unit lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

struct Slot<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

/// A least-recently-used map with entry and byte budgets.
pub struct LruCache<V> {
    slots: HashMap<u64, Slot<V>>,
    config: CacheConfig,
    tick: u64,
    total_bytes: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// An empty cache under the given budgets.
    pub fn new(config: CacheConfig) -> Self {
        LruCache {
            slots: HashMap::new(),
            config,
            tick: 0,
            total_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a unit, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&mut self, key: u64) -> Option<&mut V> {
        let tick = self.bump();
        match self.slots.get_mut(&key) {
            Some(slot) => {
                slot.last_used = tick;
                self.stats.hits += 1;
                Some(&mut slot.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Membership probe that does not disturb recency or stats.
    pub fn contains(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    /// Mutable access without counting a hit or refreshing recency —
    /// for follow-up work within a request that already paid its one
    /// stats-counting [`LruCache::get`].
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut V> {
        self.slots.get_mut(&key).map(|slot| &mut slot.value)
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until budgets hold. The just-inserted key is never
    /// evicted, so one oversized unit may occupy the cache alone.
    /// Returns how many entries were evicted.
    pub fn insert(&mut self, key: u64, value: V, bytes: usize) -> usize {
        let tick = self.bump();
        if let Some(old) = self.slots.insert(
            key,
            Slot {
                value,
                bytes,
                last_used: tick,
            },
        ) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
        self.stats.insertions += 1;
        self.enforce(Some(key))
    }

    /// Refreshes an entry's byte estimate (after a pipeline stage was
    /// interned into it), evicting *other* entries if the growth pushed
    /// the cache over budget. Returns how many entries were evicted.
    pub fn update_bytes(&mut self, key: u64, bytes: usize) -> usize {
        if let Some(slot) = self.slots.get_mut(&key) {
            self.total_bytes -= slot.bytes;
            slot.bytes = bytes;
            self.total_bytes += bytes;
            self.enforce(Some(key))
        } else {
            0
        }
    }

    /// Drops an entry outright (used to quarantine a unit whose
    /// pipeline panicked — its artifacts are suspect).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        self.slots.remove(&key).map(|slot| {
            self.total_bytes -= slot.bytes;
            slot.value
        })
    }

    fn over_budget(&self) -> bool {
        let CacheConfig {
            max_entries,
            max_bytes,
        } = self.config;
        (max_entries > 0 && self.slots.len() > max_entries)
            || (max_bytes > 0 && self.total_bytes > max_bytes)
    }

    fn enforce(&mut self, keep: Option<u64>) -> usize {
        let mut evicted = 0;
        while self.over_budget() {
            let victim = self
                .slots
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.remove(k);
                    self.stats.evictions += 1;
                    evicted += 1;
                }
                None => break, // only the protected entry remains
            }
        }
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The monotone recency tick: one per lookup or insertion, never
    /// wall-clock. Exposed so the daemon can report a deterministic
    /// logical-age alongside occupancy.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Resident values ordered least-recently-used first — the order a
    /// snapshot should persist them in, so that replaying the snapshot
    /// through [`LruCache::insert`] reproduces today's eviction order.
    pub fn values_by_recency(&self) -> Vec<&V> {
        let mut slots: Vec<&Slot<V>> = self.slots.values().collect();
        slots.sort_by_key(|slot| slot.last_used);
        slots.into_iter().map(|slot| &slot.value).collect()
    }

    /// The active budgets.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cache(max_entries: usize, max_bytes: usize) -> LruCache<&'static str> {
        LruCache::new(CacheConfig {
            max_entries,
            max_bytes,
        })
    }

    #[test]
    fn evicts_least_recently_used_by_entry_count() {
        let mut c = cache(2, 0);
        c.insert(1, "one", 10);
        c.insert(2, "two", 10);
        assert!(c.get(1).is_some()); // 1 is now fresher than 2
        let evicted = c.insert(3, "three", 10);
        assert_eq!(evicted, 1);
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn evicts_by_byte_budget_and_keeps_oversized_insert() {
        let mut c = cache(0, 100);
        c.insert(1, "a", 60);
        c.insert(2, "b", 60);
        assert!(!c.contains(1) && c.contains(2));
        assert_eq!(c.total_bytes(), 60);
        // An entry bigger than the whole budget still lands, alone.
        c.insert(3, "big", 500);
        assert_eq!(c.len(), 1);
        assert!(c.contains(3));
    }

    #[test]
    fn update_bytes_never_evicts_the_updated_key() {
        let mut c = cache(0, 100);
        c.insert(1, "a", 40);
        c.insert(2, "b", 40);
        let evicted = c.update_bytes(2, 90); // 1 must go, 2 must stay
        assert_eq!(evicted, 1);
        assert!(c.contains(2) && !c.contains(1));
        assert_eq!(c.total_bytes(), 90);
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let mut c = cache(1, 0);
        assert!(c.get(9).is_none());
        c.insert(1, "a", 1);
        assert!(c.get(1).is_some());
        c.insert(2, "b", 1); // evicts 1
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.insertions), (1, 1, 1, 2));
    }

    #[test]
    fn remove_releases_bytes() {
        let mut c = cache(0, 0);
        c.insert(1, "a", 30);
        assert_eq!(c.remove(1), Some("a"));
        assert_eq!((c.len(), c.total_bytes()), (0, 0));
        assert_eq!(c.remove(1), None);
    }

    #[test]
    fn values_by_recency_orders_least_recent_first() {
        let mut c = cache(0, 0);
        c.insert(1, "a", 1);
        c.insert(2, "b", 1);
        c.insert(3, "c", 1);
        assert!(c.get(1).is_some()); // 1 is now the freshest
        assert_eq!(c.values_by_recency(), vec![&"b", &"c", &"a"]);
        assert!(c.tick() >= 4);
    }

    #[test]
    fn replacement_does_not_double_count_bytes() {
        let mut c = cache(0, 0);
        c.insert(1, "a", 30);
        c.insert(1, "a2", 50);
        assert_eq!(c.total_bytes(), 50);
        assert_eq!(c.len(), 1);
    }
}
