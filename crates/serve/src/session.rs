//! Session state: the content-hash unit cache plus the request
//! dispatcher.
//!
//! A *unit* is one registered input — mini-language source or a raw
//! edge-list digraph — keyed by [`crate::hash::content_hash`] over its
//! text. Registering a unit parses (and for edge lists, canonicalizes)
//! it once; every later request against the same content is a cache
//! lookup. Within a unit, artifacts are interned per *stage*: the PST is
//! built at most once and shared by `pst`, `ssa`, and `dataflow`, and
//! each method's final result JSON is memoized, so a repeat query is a
//! clone, not a recompute.
//!
//! Every request is fault-isolated with `catch_unwind` (the same
//! containment the fuzz loop uses): a panicking request produces a
//! structured `panic` error envelope, the touched unit is evicted from
//! the cache (its artifacts are suspect), and the daemon keeps serving.
//!
//! Telemetry reuses the v2 plumbing: `serve_*` counters for cache
//! traffic, latency histograms split cold/hot, a `UnitScope` per request
//! (so `--metrics-json` carries per-unit sub-reports), and — when a
//! journal is installed — one `unit_summary` event per request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use pst_cfg::{canonicalize, parse_edge_list_graph, CanonicalizeOptions, Canonicalized, Graph, NodeId};
use pst_core::{collapse_all, ControlRegions, ProgramStructureTree, PstStats};
use pst_dataflow::{solve_iterative, QpgContext, SingleVariableReachingDefs};
use pst_lang::{lower_program, parse_program, LoweredFunction, VarId};
use pst_obs::json::Json;
use pst_ssa::{place_phis_pst, rename};

use crate::cache::{CacheConfig, LruCache};
use crate::hash::{content_hash, unit_hex};
use crate::proto::{error_response, ok_response, ErrorCode, Method, Request, RequestInput};

/// Domain tags for [`content_hash`]: the same bytes registered as mini
/// source and as an edge list are different units. Snapshots persist
/// these as `"mini"` / `"edges"` (see `snapshot.rs`).
pub(crate) const KIND_MINI: u64 = 1;
pub(crate) const KIND_EDGES: u64 = 2;

/// A daemon-level chaos fault (`pst serve --inject-fault <kind>`,
/// honored only by `fault-inject` builds). The enum itself is always
/// compiled so flag parsing stays feature-free; *firing* is gated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// Periodically panic inside the analysis path (exercises
    /// containment + quarantine).
    Panic,
    /// Periodically sleep 50ms inside the analysis path (exercises the
    /// cooperative deadline).
    Slow,
    /// Periodically compute the answer but drop the connection without
    /// replying (exercises client reconnect/retry).
    DropConn,
    /// Corrupt every cache-snapshot write (exercises cold-start
    /// tolerance on the next boot).
    CorruptSnapshot,
}

impl ServeFault {
    /// Parses the `--inject-fault` flag value.
    pub fn parse(kind: &str) -> Option<ServeFault> {
        match kind {
            "panic" => Some(ServeFault::Panic),
            "slow" => Some(ServeFault::Slow),
            "drop-conn" => Some(ServeFault::DropConn),
            "corrupt-snapshot" => Some(ServeFault::CorruptSnapshot),
            _ => None,
        }
    }

    /// The flag spelling (diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            ServeFault::Panic => "panic",
            ServeFault::Slow => "slow",
            ServeFault::DropConn => "drop-conn",
            ServeFault::CorruptSnapshot => "corrupt-snapshot",
        }
    }
}

/// Daemon configuration: cache budgets, request size cap, and the
/// fleet-facing knobs (worker pool, deadlines, admission, snapshots).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// LRU budgets for the unit cache.
    pub cache: CacheConfig,
    /// Maximum accepted request-line length in bytes; longer lines get
    /// an `oversized_request` envelope (enforced by the server loop).
    pub max_request_bytes: usize,
    /// TCP worker pool size; also the session shard count (each shard
    /// is an independent `Mutex<Session>`, so requests for different
    /// units proceed in parallel). Stdio mode forces 1.
    pub workers: usize,
    /// Cooperative per-request deadline in milliseconds (0 = none);
    /// checked between analysis phases, answered `deadline_exceeded`.
    pub request_timeout_ms: u64,
    /// Admission gate: maximum analysis requests in flight at once
    /// (0 = unlimited). Excess requests are shed with an `overloaded`
    /// envelope carrying a `retry_after_ms` hint.
    pub max_inflight: usize,
    /// Cache snapshot file (`--cache-snapshot`): loaded at startup
    /// (tolerating a missing/corrupt file by starting cold), written
    /// periodically and on drain/shutdown via write-then-rename.
    pub snapshot_path: Option<String>,
    /// Periodic snapshot cadence in admitted requests (0 = only on
    /// drain/shutdown).
    pub snapshot_every: u64,
    /// Daemon-level chaos fault; `None` in production. Only
    /// `fault-inject` builds ever fire it.
    pub inject_fault: Option<ServeFault>,
    /// Width of one live-telemetry window in milliseconds
    /// (`--metrics-window-ms`); 0 disables the windowed series, the
    /// `metrics`/`slowlog` methods, and the slowlog ring entirely (the
    /// perf harness prices exactly this on/off delta).
    pub metrics_window_ms: u64,
    /// How many windows the live rings retain.
    pub metrics_windows: usize,
    /// Slow-request journal threshold in milliseconds (`--slowlog-ms`);
    /// 0 emits no `slow_request` journal events, but the slowlog ring
    /// still captures the top-K slowest requests.
    pub slowlog_ms: u64,
    /// Slowlog ring capacity (top-K by total latency).
    pub slowlog_capacity: usize,
    /// Address for the one-shot HTTP metrics responder
    /// (`--metrics-listen addr:port`); `None` disables it.
    pub metrics_listen: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache: CacheConfig::default(),
            max_request_bytes: 4 << 20,
            workers: 4,
            request_timeout_ms: 0,
            max_inflight: 64,
            snapshot_path: None,
            snapshot_every: 32,
            inject_fault: None,
            metrics_window_ms: 1000,
            metrics_windows: 8,
            slowlog_ms: 0,
            slowlog_capacity: 32,
            metrics_listen: None,
        }
    }
}

/// One response line plus transport directives for the serving loop.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The serialized JSON envelope (no trailing newline).
    pub line: String,
    /// True after a `shutdown` or `drain` request was acknowledged —
    /// the stream stops reading after writing this reply.
    pub shutdown: bool,
    /// True when an injected `drop-conn` fault fired: the serving loop
    /// must close the connection *without* writing the line (the client
    /// sees an abrupt disconnect and is expected to retry).
    pub drop_conn: bool,
    /// What the analysis request looked like, for the live-metrics
    /// layer. `None` for control methods and pre-dispatch failures.
    pub outcome: Option<crate::metrics::RequestOutcome>,
}

impl Reply {
    fn of(envelope: Json) -> Reply {
        Reply {
            line: envelope.to_string(),
            shutdown: false,
            drop_conn: false,
            outcome: None,
        }
    }
}

/// Per-function pipeline artifacts of a mini-language unit.
struct FnArtifacts {
    f: LoweredFunction,
    ast: pst_lang::Function,
    /// Interned on first use; shared by `pst`, `ssa`, and `dataflow`.
    pst: Option<ProgramStructureTree>,
}

impl FnArtifacts {
    fn pst(&mut self) -> &ProgramStructureTree {
        self.pst
            .get_or_insert_with(|| ProgramStructureTree::build(&self.f.cfg))
    }
}

/// An edge-list unit: the raw digraph plus its Definition-1 repair.
struct EdgeArtifacts {
    graph: Graph,
    entry: NodeId,
    canonical: Canonicalized,
    pst: Option<ProgramStructureTree>,
}

impl EdgeArtifacts {
    fn pst(&mut self) -> &ProgramStructureTree {
        self.pst
            .get_or_insert_with(|| ProgramStructureTree::build(&self.canonical.cfg))
    }
}

enum UnitData {
    Mini(Vec<FnArtifacts>),
    Edges(Box<EdgeArtifacts>),
}

/// A resident unit: parsed artifacts plus memoized per-method results.
/// The registered source text is retained so the unit (and its memos)
/// can be persisted into a cache snapshot and re-registered on restart.
struct Unit {
    data: UnitData,
    /// Domain tag ([`KIND_MINI`] / [`KIND_EDGES`]).
    kind: u64,
    /// The registered input text, verbatim.
    source: String,
    /// `(method name, memoized result)` — methods take no parameters
    /// beyond the unit, so one slot per method suffices.
    results: Vec<(&'static str, Json)>,
    /// Running estimate of the memoized results' rendered size.
    results_bytes: usize,
}

impl Unit {
    fn cached_result(&self, method: &'static str) -> Option<&Json> {
        self.results
            .iter()
            .find(|(m, _)| *m == method)
            .map(|(_, r)| r)
    }

    fn memoize(&mut self, method: &'static str, result: &Json) {
        self.results_bytes += result.to_string().len() * 2;
        self.results.push((method, result.clone()));
    }

    /// Approximate retained heap: a crude, monotone estimate is all the
    /// byte budget needs (see `cache.rs`).
    fn approx_bytes(&self) -> usize {
        let mut bytes = 512 + self.source.len() * 8 + self.results_bytes;
        match &self.data {
            UnitData::Mini(functions) => {
                for fa in functions {
                    bytes += fa.f.cfg.node_count() * 160 + fa.f.statement_count() * 48;
                    if fa.pst.is_some() {
                        bytes += fa.f.cfg.node_count() * 96;
                    }
                }
            }
            UnitData::Edges(e) => {
                bytes += e.graph.node_count() * 96 + e.canonical.cfg.node_count() * 160;
                if e.pst.is_some() {
                    bytes += e.canonical.cfg.node_count() * 96;
                }
            }
        }
        bytes
    }
}

struct Answer {
    unit: String,
    /// True when the result came out of the per-method memo (the unit
    /// was resident *and* this method had already run on it).
    cached: bool,
    result: Json,
    /// True when an injected `drop-conn` daemon fault fired on this
    /// request (the serving loop drops the connection unreplied).
    drop_conn: bool,
    /// Phase timings for the slowlog: unit resolution/registration,
    /// fault injection, and method computation.
    register_nanos: u64,
    inject_nanos: u64,
    compute_nanos: u64,
}

type MethodError = (ErrorCode, String);

/// One unit as a snapshot sees it: `(kind tag, source text, memoized
/// results)`.
pub(crate) type ExportedUnit = (u64, String, Vec<(&'static str, Json)>);

/// The in-flight request's cooperative deadline, checked at phase
/// boundaries (after registration, after fault injection, and between
/// per-function analyses). There is no preemption: a single pathological
/// phase can overrun, but the paper's linear-time bounds keep phases
/// short, so boundary checks bound the overshoot tightly in practice.
#[derive(Clone, Copy)]
struct Deadline {
    at: Option<Instant>,
    budget_ms: u64,
}

impl Deadline {
    fn check(self) -> Result<(), MethodError> {
        match self.at {
            Some(at) if Instant::now() >= at => {
                pst_obs::counter!("serve_deadline_exceeded");
                Err((
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "request exceeded its {}ms budget (--request-timeout-ms); \
                         partial work was abandoned at a phase boundary",
                        self.budget_ms
                    ),
                ))
            }
            _ => Ok(()),
        }
    }
}

/// The daemon's session state — one cache shard. A sequential caller
/// drives it through [`Session::handle_line`]; the concurrent daemon
/// wraps several shards in `Mutex`es behind
/// [`crate::shared::SharedSession`] and dispatches through
/// [`Session::handle_request`].
pub struct Session {
    cache: LruCache<Unit>,
    config: ServeConfig,
    requests: u64,
    panics: u64,
    quarantined: u64,
    /// Lifetime latency of memo-hit requests (always compiled, unlike
    /// the feature-gated `histogram!` mirror): feeds the
    /// `serve_hot_p50/p99_nanos` stats fields.
    hot_nanos: pst_obs::Histogram,
    /// Lifetime latency of recompute requests.
    cold_nanos: pst_obs::Histogram,
    /// Unit touched by the in-flight request, for quarantine on panic.
    touched: Option<u64>,
    /// Cooperative deadline of the in-flight request.
    deadline: Option<Instant>,
    /// Analysis-request counter for periodic daemon-fault firing; only
    /// `fault-inject` builds touch it.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    fault_cycle: u64,
}

impl Session {
    /// A fresh session under the given budgets.
    pub fn new(config: ServeConfig) -> Session {
        Session {
            cache: LruCache::new(config.cache),
            config,
            requests: 0,
            panics: 0,
            quarantined: 0,
            hot_nanos: pst_obs::Histogram::new(),
            cold_nanos: pst_obs::Histogram::new(),
            touched: None,
            deadline: None,
            fault_cycle: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Contained-panic count (aggregated across shards by the shared
    /// front-end).
    pub fn contained_panics(&self) -> u64 {
        self.panics
    }

    /// Units quarantined after a contained panic.
    pub fn quarantined_units(&self) -> u64 {
        self.quarantined
    }

    /// Folds this shard's lifetime hot/cold latency histograms into the
    /// caller's accumulators (stats aggregation across shards).
    pub(crate) fn merge_latency_into(
        &self,
        hot: &mut pst_obs::Histogram,
        cold: &mut pst_obs::Histogram,
    ) {
        hot.merge_from(&self.hot_nanos);
        cold.merge_from(&self.cold_nanos);
    }

    /// This shard's cache occupancy/traffic, for stats aggregation:
    /// `(entries, bytes, tick, lifetime stats)`.
    pub fn cache_snapshot_stats(&self) -> (usize, usize, u64, crate::cache::CacheStats) {
        (
            self.cache.len(),
            self.cache.total_bytes(),
            self.cache.tick(),
            self.cache.stats(),
        )
    }

    /// Answers one request line. Never panics: malformed JSON, invalid
    /// graphs, and contained panics all come back as error envelopes.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let started = Instant::now();
        self.requests += 1;
        pst_obs::counter!("serve_requests");
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return self.error_reply(&e.id, e.code, &e.message),
        };
        self.handle_request(&req, started)
    }

    /// Dispatches one parsed request. Entry points count
    /// `serve_requests` themselves ([`Session::handle_line`] for the
    /// sequential path, the shared front-end for the concurrent one) so
    /// a request is counted exactly once however it arrives.
    pub fn handle_request(&mut self, req: &Request, started: Instant) -> Reply {
        match req.method {
            Method::Shutdown => {
                let nanos = started.elapsed().as_nanos() as u64;
                let result = Json::obj([("stopping", Json::Bool(true))]);
                let mut reply = Reply::of(ok_response(&req.id, None, None, nanos, result));
                reply.shutdown = true;
                reply
            }
            Method::Drain => {
                let nanos = started.elapsed().as_nanos() as u64;
                let result = Json::obj([("draining", Json::Bool(true))]);
                let mut reply = Reply::of(ok_response(&req.id, None, None, nanos, result));
                reply.shutdown = true;
                reply
            }
            Method::Stats => {
                let nanos = started.elapsed().as_nanos() as u64;
                Reply::of(ok_response(&req.id, None, None, nanos, self.stats_json()))
            }
            // Live telemetry lives in the shared front-end (one series
            // set above the shards); a bare sequential session has none.
            Method::Metrics | Method::Slowlog => self.error_reply(
                &req.id,
                ErrorCode::Unsupported,
                &format!(
                    "`{}` is answered by the concurrent daemon front-end; \
                     run `pst serve` with --metrics-window-ms > 0",
                    req.method.name()
                ),
            ),
            _ => {
                self.deadline = (self.config.request_timeout_ms > 0).then(|| {
                    started + std::time::Duration::from_millis(self.config.request_timeout_ms)
                });
                self.handle_analysis(req, started)
            }
        }
    }

    /// The envelope the server loop emits for a line that exceeded
    /// [`ServeConfig::max_request_bytes`]. No id: the line was dropped
    /// unparsed.
    pub fn oversized_reply(&mut self, actual: usize) -> Reply {
        self.requests += 1;
        pst_obs::counter!("serve_requests");
        self.error_reply(
            &Json::Null,
            ErrorCode::OversizedRequest,
            &format!(
                "request line is {actual} bytes; the limit is {} (--max-request-bytes)",
                self.config.max_request_bytes
            ),
        )
    }

    /// The envelope the server loop emits for a non-UTF-8 request line.
    pub fn invalid_utf8_reply(&mut self, valid_up_to: usize) -> Reply {
        self.requests += 1;
        pst_obs::counter!("serve_requests");
        self.error_reply(
            &Json::Null,
            ErrorCode::InvalidUtf8,
            &format!("request line is not valid UTF-8 (first invalid byte at offset {valid_up_to})"),
        )
    }

    fn error_reply(&mut self, id: &Json, code: ErrorCode, message: &str) -> Reply {
        pst_obs::counter!("serve_errors");
        Reply::of(error_response(id, code, message))
    }

    /// Runs a unit-bearing method under panic containment. The default
    /// panic hook is suppressed for the duration (panics are contained
    /// and reported as data, same as the fuzz loop), and a panicking
    /// request evicts the unit it touched — its interned artifacts are
    /// suspect.
    fn handle_analysis(&mut self, req: &Request, started: Instant) -> Reply {
        self.touched = None;
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Fold this request's thread-local counters into the global
            // aggregate even if it panics: work done before the crash is
            // data, not noise.
            let _fold = pst_obs::fold_on_drop();
            self.answer(req)
        }));
        std::panic::set_hook(previous_hook);
        let nanos = started.elapsed().as_nanos() as u64;
        pst_obs::histogram!("serve_request_nanos", nanos);
        let failed_outcome = |method: Method| crate::metrics::RequestOutcome {
            method: method.name(),
            unit: None,
            ok: false,
            cached: false,
            total_nanos: nanos,
            register_nanos: 0,
            inject_nanos: 0,
            compute_nanos: 0,
        };
        match outcome {
            Ok(Ok(answer)) => {
                pst_obs::histogram!(
                    if answer.cached {
                        "serve_hot_nanos"
                    } else {
                        "serve_cold_nanos"
                    },
                    nanos
                );
                if answer.cached {
                    self.hot_nanos.record(nanos);
                } else {
                    self.cold_nanos.record(nanos);
                }
                pst_obs::journal::emit(pst_obs::journal::Event::UnitSummary {
                    unit: format!("serve:{}#{}", answer.unit, req.method.name()),
                    nanos,
                    count: 1,
                });
                let mut reply = Reply::of(ok_response(
                    &req.id,
                    Some(&answer.unit),
                    Some(answer.cached),
                    nanos,
                    answer.result,
                ));
                reply.drop_conn = answer.drop_conn;
                reply.outcome = Some(crate::metrics::RequestOutcome {
                    method: req.method.name(),
                    unit: Some(answer.unit),
                    ok: true,
                    cached: answer.cached,
                    total_nanos: nanos,
                    register_nanos: answer.register_nanos,
                    inject_nanos: answer.inject_nanos,
                    compute_nanos: answer.compute_nanos,
                });
                reply
            }
            Ok(Err((code, message))) => {
                let mut reply = self.error_reply(&req.id, code, &message);
                reply.outcome = Some(failed_outcome(req.method));
                reply
            }
            Err(payload) => {
                self.panics += 1;
                pst_obs::counter!("serve_panics");
                if let Some(key) = self.touched.take() {
                    if self.cache.remove(key).is_some() {
                        self.quarantined += 1;
                        pst_obs::counter!("serve_cache_quarantined");
                    }
                }
                let mut reply = self.error_reply(
                    &req.id,
                    ErrorCode::Panic,
                    &format!(
                        "request panicked (contained; the daemon keeps serving): {}",
                        panic_message(payload)
                    ),
                );
                reply.outcome = Some(failed_outcome(req.method));
                reply
            }
        }
    }

    /// Resolves the unit (registering inline input on a miss) and
    /// computes or replays the method result.
    fn answer(&mut self, req: &Request) -> Result<Answer, MethodError> {
        let key = match &req.input {
            RequestInput::MiniSource(s) => content_hash(KIND_MINI, s.as_bytes()),
            RequestInput::EdgeList(s) => content_hash(KIND_EDGES, s.as_bytes()),
            RequestInput::Unit(k) => *k,
            RequestInput::None => {
                return Err((
                    ErrorCode::InvalidRequest,
                    format!(
                        "method `{}` needs an input: `source`, `edges`, or `unit`",
                        req.method.name()
                    ),
                ))
            }
        };
        self.touched = Some(key);
        let hex = unit_hex(key);
        let deadline = Deadline {
            at: self.deadline,
            budget_ms: self.config.request_timeout_ms,
        };
        let _unit_scope = pst_obs::UnitScope::enter(format!("serve:{}#{}", hex, req.method.name()));

        // Exactly one recency-and-stats-counting cache access per request.
        let register_started = Instant::now();
        let resident = self.cache.get(key).is_some();
        if resident {
            pst_obs::counter!("serve_cache_hit");
        } else {
            pst_obs::counter!("serve_cache_miss");
            let unit = match &req.input {
                RequestInput::MiniSource(s) => register_mini(s)?,
                RequestInput::EdgeList(s) => register_edges(s)?,
                RequestInput::Unit(_) => {
                    return Err((
                        ErrorCode::UnknownUnit,
                        format!("unit `{hex}` is not registered (or was evicted); resend its `source` or `edges`"),
                    ))
                }
                RequestInput::None => unreachable!("handled above"),
            };
            let bytes = unit.approx_bytes();
            let evicted = self.cache.insert(key, unit, bytes);
            pst_obs::counter!("serve_cache_eviction", evicted);
        }
        let register_nanos = register_started.elapsed().as_nanos() as u64;
        deadline.check()?;

        // Fault injection sits after unit resolution on purpose: a test
        // panic must exercise the quarantine path, not dodge it. The
        // daemon-level chaos fault fires at the same point. Timing the
        // phase separately pins an injected stall on `inject` in the
        // slowlog breakdown, not on `compute`.
        let inject_started = Instant::now();
        if let Some(kind) = req.inject.as_deref() {
            fault_inject(kind)?;
        }
        let drop_conn = self.daemon_fault()?;
        let inject_nanos = inject_started.elapsed().as_nanos() as u64;
        deadline.check()?;

        let method = req.method.name();
        let Some(unit) = self.cache.peek_mut(key) else {
            return Err((
                ErrorCode::UnknownUnit,
                format!("unit `{hex}` was evicted while registering (cache budgets too small)"),
            ));
        };
        if let Some(result) = unit.cached_result(method) {
            pst_obs::counter!("serve_stage_hit");
            return Ok(Answer {
                unit: hex,
                cached: true,
                result: result.clone(),
                drop_conn,
                register_nanos,
                inject_nanos,
                compute_nanos: 0,
            });
        }
        pst_obs::counter!("serve_stage_miss");
        let compute_started = Instant::now();
        let result = compute(unit, req.method, deadline)?;
        let compute_nanos = compute_started.elapsed().as_nanos() as u64;
        unit.memoize(method, &result);
        let bytes = unit.approx_bytes();
        let evicted = self.cache.update_bytes(key, bytes);
        pst_obs::counter!("serve_cache_eviction", evicted);
        Ok(Answer {
            unit: hex,
            cached: false,
            result,
            drop_conn,
            register_nanos,
            inject_nanos,
            compute_nanos,
        })
    }

    /// Fires the daemon-level `--inject-fault` chaos fault, if one is
    /// configured and this is a firing cycle. Only `fault-inject` builds
    /// compile the firing logic; production builds never configure a
    /// fault (the CLI refuses the flag), so this is a no-op there.
    /// Returns true when the connection should be dropped unreplied.
    #[cfg(feature = "fault-inject")]
    fn daemon_fault(&mut self) -> Result<bool, MethodError> {
        let Some(fault) = self.config.inject_fault else {
            return Ok(false);
        };
        self.fault_cycle += 1;
        // Fire on every third analysis request so the chaos workload
        // mixes faulty and clean traffic on one connection.
        if self.fault_cycle % 3 != 2 {
            return Ok(false);
        }
        pst_obs::counter!("serve_injected_faults");
        match fault {
            ServeFault::Panic => panic!("injected fault: daemon panic"),
            ServeFault::Slow => {
                std::thread::sleep(std::time::Duration::from_millis(50));
                Ok(false)
            }
            ServeFault::DropConn => Ok(true),
            // Fires at snapshot-write time, not per request.
            ServeFault::CorruptSnapshot => Ok(false),
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn daemon_fault(&mut self) -> Result<bool, MethodError> {
        Ok(false)
    }

    /// Snapshot export: `(kind, source, memoized results)` for every
    /// resident unit, least-recently-used first, so replaying the list
    /// through [`Session::restore_unit`] reproduces today's eviction
    /// order.
    pub(crate) fn export_units(&self) -> Vec<ExportedUnit> {
        self.cache
            .values_by_recency()
            .into_iter()
            .map(|u| (u.kind, u.source.clone(), u.results.clone()))
            .collect()
    }

    /// Re-registers one snapshot entry (warm restart), restoring its
    /// memoized results so the first repeat query answers `cached: true`.
    pub(crate) fn restore_unit(
        &mut self,
        kind: u64,
        source: &str,
        results: &[(String, Json)],
    ) -> Result<(), MethodError> {
        let mut unit = match kind {
            KIND_MINI => register_mini(source)?,
            KIND_EDGES => register_edges(source)?,
            other => {
                return Err((
                    ErrorCode::InvalidRequest,
                    format!("snapshot entry has unknown unit kind {other}"),
                ))
            }
        };
        for (name, result) in results {
            if let Some(method) = Method::ALL.iter().copied().find(|m| m.name() == name) {
                unit.memoize(method.name(), result);
            }
        }
        let key = content_hash(kind, source.as_bytes());
        let bytes = unit.approx_bytes();
        self.cache.insert(key, unit, bytes);
        Ok(())
    }

    /// The `stats` method result.
    fn stats_json(&self) -> Json {
        let s = self.cache.stats();
        let cfg = self.cache.config();
        Json::obj([
            ("requests", Json::UInt(self.requests)),
            ("contained_panics", Json::UInt(self.panics)),
            ("quarantined_units", Json::UInt(self.quarantined)),
            // Saturation fields, uniform with the concurrent daemon's
            // aggregated stats: the sequential session is its own single
            // worker and handles the `stats` request itself, so nothing
            // else is in flight.
            ("uptime_ticks", Json::UInt(self.cache.tick())),
            ("in_flight", Json::UInt(0)),
            ("workers", Json::UInt(1)),
            (
                "max_request_bytes",
                Json::UInt(self.config.max_request_bytes as u64),
            ),
            (
                "serve_hot_p50_nanos",
                Json::UInt(self.hot_nanos.quantile(0.5)),
            ),
            (
                "serve_hot_p99_nanos",
                Json::UInt(self.hot_nanos.quantile(0.99)),
            ),
            (
                "serve_cold_p50_nanos",
                Json::UInt(self.cold_nanos.quantile(0.5)),
            ),
            (
                "serve_cold_p99_nanos",
                Json::UInt(self.cold_nanos.quantile(0.99)),
            ),
            (
                "cache",
                Json::obj([
                    ("entries", Json::UInt(self.cache.len() as u64)),
                    ("bytes", Json::UInt(self.cache.total_bytes() as u64)),
                    ("max_entries", Json::UInt(cfg.max_entries as u64)),
                    ("max_bytes", Json::UInt(cfg.max_bytes as u64)),
                    ("hits", Json::UInt(s.hits)),
                    ("misses", Json::UInt(s.misses)),
                    ("evictions", Json::UInt(s.evictions)),
                    ("insertions", Json::UInt(s.insertions)),
                ]),
            ),
        ])
    }
}

/// `"inject"` handling: compiled-in only under `fault-inject` (e2e panic
/// containment tests); production builds refuse it loudly.
#[cfg(feature = "fault-inject")]
fn fault_inject(kind: &str) -> Result<(), MethodError> {
    match kind {
        "panic" => panic!("injected fault: panic"),
        "slow" => {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(())
        }
        other => Err((
            ErrorCode::InvalidRequest,
            format!("unknown fault `{other}` (this build understands: panic, slow)"),
        )),
    }
}

#[cfg(not(feature = "fault-inject"))]
fn fault_inject(_kind: &str) -> Result<(), MethodError> {
    Err((
        ErrorCode::Unsupported,
        "fault injection is not compiled into this build (rebuild with --features fault-inject)"
            .to_string(),
    ))
}

/// Best-effort extraction of a panic payload message (same shape as the
/// fuzz loop's).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parses + lowers mini source into a resident unit.
fn register_mini(source: &str) -> Result<Unit, MethodError> {
    let analysis = |msg: String| (ErrorCode::AnalysisError, msg);
    let program =
        parse_program(source).map_err(|e| analysis(format!("parse error: {e}")))?;
    let lowered =
        lower_program(&program).map_err(|e| analysis(format!("lowering error: {e}")))?;
    let functions = lowered
        .into_iter()
        .zip(program.functions)
        .map(|(f, ast)| FnArtifacts { f, ast, pst: None })
        .collect();
    Ok(Unit {
        data: UnitData::Mini(functions),
        kind: KIND_MINI,
        source: source.to_string(),
        results: Vec::new(),
        results_bytes: 0,
    })
}

/// Parses + canonicalizes an edge list into a resident unit.
fn register_edges(source: &str) -> Result<Unit, MethodError> {
    let analysis = |msg: String| (ErrorCode::AnalysisError, msg);
    let (graph, entry) =
        parse_edge_list_graph(source).map_err(|e| analysis(format!("edge list error: {e}")))?;
    let canonical = canonicalize(&graph, entry, &CanonicalizeOptions::default())
        .map_err(|e| analysis(format!("canonicalize error: {e}")))?;
    Ok(Unit {
        data: UnitData::Edges(Box::new(EdgeArtifacts {
            graph,
            entry,
            canonical,
            pst: None,
        })),
        kind: KIND_EDGES,
        source: source.to_string(),
        results: Vec::new(),
        results_bytes: 0,
    })
}

/// Computes one method's result over a resident unit. The deadline is
/// re-checked between per-function analyses (the phase boundaries of a
/// multi-function mini unit); a single function's pipeline runs to
/// completion once started.
fn compute(unit: &mut Unit, method: Method, deadline: Deadline) -> Result<Json, MethodError> {
    match (&mut unit.data, method) {
        (UnitData::Mini(functions), Method::Pst) => {
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter_mut() {
                deadline.check()?;
                out.push(mini_pst_json(fa));
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(functions), Method::ControlRegions) => {
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter() {
                deadline.check()?;
                out.push(control_regions_json(&fa.f.name, &fa.f.cfg));
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(functions), Method::Controldep) => {
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter() {
                deadline.check()?;
                let strong = pst_controldep::StrongControlDeps::of_cfg(&fa.f.cfg);
                out.push(controldep_json(&fa.f.name, &strong));
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(functions), Method::Lint) => {
            let config = pst_analysis::LintConfig::new();
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter() {
                deadline.check()?;
                out.push(
                    pst_analysis::lint_function(&fa.f, Some(&fa.ast), &config).to_json(&fa.f.name),
                );
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(functions), Method::Ssa) => {
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter_mut() {
                deadline.check()?;
                out.push(mini_ssa_json(fa)?);
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(functions), Method::Dataflow) => {
            let mut out = Vec::with_capacity(functions.len());
            for fa in functions.iter_mut() {
                deadline.check()?;
                out.push(mini_dataflow_json(fa)?);
            }
            Ok(Json::Arr(out))
        }
        (UnitData::Mini(_), Method::Canonicalize) => Err((
            ErrorCode::Unsupported,
            "`canonicalize` applies to edge-list units; this unit is mini-language source"
                .to_string(),
        )),
        (UnitData::Edges(e), Method::Pst) => {
            let cfg_nodes = e.canonical.cfg.node_count();
            let cfg_edges = e.canonical.cfg.edge_count();
            let pst = e.pst();
            let stats = PstStats::of(pst);
            Ok(Json::obj([
                ("nodes", Json::UInt(cfg_nodes as u64)),
                ("edges", Json::UInt(cfg_edges as u64)),
                ("regions", Json::UInt(stats.region_count as u64)),
                ("max_depth", Json::UInt(stats.max_depth as u64)),
                ("average_depth", Json::Float(stats.average_depth())),
                (
                    "max_collapsed_size",
                    Json::UInt(stats.max_collapsed_size as u64),
                ),
                ("tree", Json::Str(pst.render())),
            ]))
        }
        (UnitData::Edges(e), Method::ControlRegions) => {
            Ok(control_regions_json("<edges>", &e.canonical.cfg))
        }
        (UnitData::Edges(e), Method::Controldep) => {
            // NTSCD and DOD are defined on the raw digraph itself — no
            // canonicalization, non-terminating regions intact. The
            // classic relation needs a valid CFG, so its size is reported
            // from the Definition-1 repair for comparison.
            let strong = pst_controldep::StrongControlDeps::of_graph(&e.graph);
            let classic = pst_controldep::ClassicControlDeps::compute(&e.canonical.cfg);
            let mut j = controldep_json("<edges>", &strong);
            if let Json::Obj(fields) = &mut j {
                fields.push((
                    "classic_deps_canonical".to_string(),
                    Json::UInt(classic.relation_size() as u64),
                ));
            }
            Ok(j)
        }
        (UnitData::Edges(e), Method::Lint) => {
            let lint = pst_analysis::lint_graph(
                &e.graph,
                e.entry,
                &CanonicalizeOptions::default(),
                &pst_analysis::LintConfig::new(),
            )
            .map_err(|err| (ErrorCode::AnalysisError, format!("canonicalize error: {err}")))?;
            Ok(lint.report.to_json("<edges>"))
        }
        (UnitData::Edges(e), Method::Canonicalize) => {
            let counts = e.canonical.report.counts();
            Ok(Json::obj([
                ("identity", Json::Bool(e.canonical.report.is_identity())),
                ("input_nodes", Json::UInt(e.graph.node_count() as u64)),
                ("input_edges", Json::UInt(e.graph.edge_count() as u64)),
                ("nodes", Json::UInt(e.canonical.cfg.node_count() as u64)),
                ("edges", Json::UInt(e.canonical.cfg.edge_count() as u64)),
                (
                    "repairs",
                    Json::obj([
                        (
                            "pruned_unreachable",
                            Json::UInt(counts.pruned_unreachable as u64),
                        ),
                        (
                            "tethered_unreachable",
                            Json::UInt(counts.tethered_unreachable as u64),
                        ),
                        (
                            "synthetic_entries",
                            Json::UInt(counts.synthetic_entries as u64),
                        ),
                        ("synthetic_exits", Json::UInt(counts.synthetic_exits as u64)),
                        ("merged_exits", Json::UInt(counts.merged_exits as u64)),
                        (
                            "virtual_loop_exits",
                            Json::UInt(counts.virtual_loop_exits as u64),
                        ),
                        (
                            "split_self_loops",
                            Json::UInt(counts.split_self_loops as u64),
                        ),
                    ]),
                ),
                ("report", Json::Str(e.canonical.report.to_string())),
            ]))
        }
        (UnitData::Edges(_), Method::Ssa | Method::Dataflow) => Err((
            ErrorCode::Unsupported,
            format!(
                "`{}` needs a mini-language unit with variables; this unit is a raw edge list",
                method.name()
            ),
        )),
        (_, Method::Stats | Method::Metrics | Method::Slowlog | Method::Drain | Method::Shutdown) => {
            unreachable!("unit-less methods are dispatched before unit resolution")
        }
    }
}

fn mini_pst_json(fa: &mut FnArtifacts) -> Json {
    let name = fa.f.name.clone();
    let blocks = fa.f.cfg.node_count();
    let edges = fa.f.cfg.edge_count();
    let statements = fa.f.statement_count();
    let pst = fa.pst();
    let stats = PstStats::of(pst);
    Json::obj([
        ("name", Json::Str(name)),
        ("blocks", Json::UInt(blocks as u64)),
        ("edges", Json::UInt(edges as u64)),
        ("statements", Json::UInt(statements as u64)),
        ("regions", Json::UInt(stats.region_count as u64)),
        ("max_depth", Json::UInt(stats.max_depth as u64)),
        ("average_depth", Json::Float(stats.average_depth())),
        (
            "max_collapsed_size",
            Json::UInt(stats.max_collapsed_size as u64),
        ),
        ("tree", Json::Str(pst.render())),
    ])
}

fn control_regions_json(name: &str, cfg: &pst_cfg::Cfg) -> Json {
    let cr = ControlRegions::compute(cfg);
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("classes", Json::UInt(cr.num_classes() as u64)),
        (
            "groups",
            Json::Arr(
                cr.groups()
                    .iter()
                    .map(|nodes| {
                        Json::Arr(
                            nodes
                                .iter()
                                .map(|n| Json::Str(n.to_string()))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders one unit's strong-control-dependence summary: relation sizes,
/// DOD witnesses, the strong-region partition, and — when the classic
/// relation is available — the termination-sensitive surplus per branch.
fn controldep_json(name: &str, strong: &pst_controldep::StrongControlDeps) -> Json {
    let ntscd = strong.ntscd();
    let dod = strong.dod();
    let regions = strong.regions();
    let mut fields: Vec<(String, Json)> = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        (
            "ntscd_deps".to_string(),
            Json::UInt(ntscd.relation_size() as u64),
        ),
        (
            "dod_witnesses".to_string(),
            Json::Arr(
                dod.witnesses()
                    .iter()
                    .map(|w| {
                        Json::Arr(vec![
                            Json::UInt(w.branch.index() as u64),
                            Json::UInt(w.first.index() as u64),
                            Json::UInt(w.second.index() as u64),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dod_complete".to_string(), Json::Bool(dod.is_complete())),
        (
            "strong_regions".to_string(),
            Json::UInt(regions.num_classes() as u64),
        ),
    ];
    if let Some(classic) = strong.classic() {
        fields.push((
            "classic_deps".to_string(),
            Json::UInt(classic.relation_size() as u64),
        ));
        let mut sensitive = Vec::new();
        for i in 0..ntscd.node_count() {
            let branch = NodeId::from_index(i);
            let extra = strong.termination_sensitive_deps(branch);
            if !extra.is_empty() {
                sensitive.push(Json::obj([
                    ("branch", Json::UInt(i as u64)),
                    (
                        "nodes",
                        Json::Arr(
                            extra
                                .iter()
                                .map(|n| Json::UInt(n.index() as u64))
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
        fields.push(("termination_sensitive".to_string(), Json::Arr(sensitive)));
    }
    Json::Obj(fields)
}

fn mini_ssa_json(fa: &mut FnArtifacts) -> Result<Json, MethodError> {
    let analysis = |msg: String| (ErrorCode::AnalysisError, msg);
    let name = fa.f.name.clone();
    let pst = fa.pst().clone();
    let collapsed = collapse_all(&fa.f.cfg, &pst);
    let sparse = place_phis_pst(&fa.f, &pst, &collapsed)
        .map_err(|e| analysis(format!("fn {name}: {e}")))?;
    let form = rename(&fa.f, &sparse.placement)
        .map_err(|e| analysis(format!("fn {name}: {e}")))?;
    let mut per_var = vec![0u64; fa.f.var_count()];
    for phis in &form.phi_nodes {
        for phi in phis {
            per_var[phi.var.index()] += 1;
        }
    }
    Ok(Json::obj([
        ("name", Json::Str(name)),
        ("phis", Json::UInt(form.total_phis() as u64)),
        (
            "phis_per_var",
            Json::obj(
                (0..fa.f.var_count())
                    .map(|v| (fa.f.var_name(VarId::from_index(v)).to_string(), Json::UInt(per_var[v]))),
            ),
        ),
    ]))
}

fn mini_dataflow_json(fa: &mut FnArtifacts) -> Result<Json, MethodError> {
    let name = fa.f.name.clone();
    let qpg_failure =
        |e: pst_dataflow::QpgError| (ErrorCode::AnalysisError, format!("fn {name}: QPG error: {e}"));
    let pst = fa.pst().clone();
    let ctx = QpgContext::new(&fa.f.cfg, &pst).map_err(qpg_failure)?;
    let mut vars = Vec::new();
    for v in 0..fa.f.var_count() {
        let var = VarId::from_index(v);
        let problem = SingleVariableReachingDefs::new(&fa.f, var);
        let qpg = ctx.build_from_sites(problem.sites()).map_err(qpg_failure)?;
        let sparse = ctx.solve(&qpg, &problem).map_err(qpg_failure)?;
        let full = solve_iterative(&fa.f.cfg, &problem);
        let exit_defs: Vec<Json> = sparse
            .value_in(fa.f.cfg.exit())
            .iter()
            .map(|i| Json::Str(format!("{}", problem.sites()[i])))
            .collect();
        vars.push(Json::obj([
            ("var", Json::Str(fa.f.var_name(var).to_string())),
            ("qpg_nodes", Json::UInt(qpg.node_count() as u64)),
            ("cfg_nodes", Json::UInt(fa.f.cfg.node_count() as u64)),
            ("exit_defs", Json::Arr(exit_defs)),
            ("agrees", Json::Bool(sparse == full)),
        ]));
    }
    Ok(Json::obj([
        ("name", Json::Str(fa.f.name.clone())),
        ("vars", Json::Arr(vars)),
    ]))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const MINI: &str = "fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }";

    fn request(json: &str) -> String {
        json.to_string()
    }

    fn parsed(reply: &Reply) -> Json {
        Json::parse(&reply.line).expect("reply must be valid JSON")
    }

    fn session() -> Session {
        Session::new(ServeConfig::default())
    }

    #[test]
    fn pst_round_trip_hits_the_cache_on_repeat() {
        let mut s = session();
        let line = request(&format!(
            r#"{{"id": 1, "method": "pst", "source": {}}}"#,
            Json::Str(MINI.to_string())
        ));
        let first = parsed(&s.handle_line(&line));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let unit = match first.get("unit") {
            Some(Json::Str(u)) => u.clone(),
            other => panic!("no unit in reply: {other:?}"),
        };
        // Repeat inline: stage memo hit.
        let second = parsed(&s.handle_line(&line));
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(second.get("result"), first.get("result"));
        // Query by unit id: same memo.
        let by_unit = parsed(&s.handle_line(&request(&format!(
            r#"{{"id": 2, "method": "pst", "unit": "{unit}"}}"#
        ))));
        assert_eq!(by_unit.get("cached"), Some(&Json::Bool(true)));
        // A *different* method on the same unit is a unit hit, stage miss.
        let lint = parsed(&s.handle_line(&request(&format!(
            r#"{{"id": 3, "method": "lint", "unit": "{unit}"}}"#
        ))));
        assert_eq!(lint.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lint.get("cached"), Some(&Json::Bool(false)));
        // Stats must show 3 unit hits (repeat, by-unit, lint), 1 miss.
        let stats = parsed(&s.handle_line(r#"{"method": "stats"}"#));
        let cache = stats.get("result").and_then(|r| r.get("cache")).unwrap();
        assert_eq!(cache.get("hits"), Some(&Json::UInt(3)));
        assert_eq!(cache.get("misses"), Some(&Json::UInt(1)));
    }

    #[test]
    fn all_methods_answer_on_both_unit_kinds() {
        let mut s = session();
        let mini = Json::Str(MINI.to_string());
        for method in ["pst", "control_regions", "controldep", "lint", "ssa", "dataflow"] {
            let r = parsed(&s.handle_line(&format!(
                r#"{{"method": "{method}", "source": {mini}}}"#
            )));
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "mini {method}");
        }
        let edges = Json::Str("0->1\n1->2\n0->2\n".to_string());
        for method in ["pst", "control_regions", "controldep", "lint", "canonicalize"] {
            let r = parsed(&s.handle_line(&format!(
                r#"{{"method": "{method}", "edges": {edges}}}"#
            )));
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "edges {method}");
        }
        // Kind mismatches are typed `unsupported` errors.
        for (method, field, input) in [
            ("canonicalize", "source", &mini),
            ("ssa", "edges", &edges),
            ("dataflow", "edges", &edges),
        ] {
            let r = parsed(&s.handle_line(&format!(
                r#"{{"method": "{method}", "{field}": {input}}}"#
            )));
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{method}");
            assert_eq!(
                r.get("error").and_then(|e| e.get("code")),
                Some(&Json::Str("unsupported".into()))
            );
        }
    }

    #[test]
    fn errors_are_structured_and_do_not_stop_the_session() {
        let mut s = session();
        let code_of = |r: &Json| {
            r.get("error")
                .and_then(|e| e.get("code"))
                .cloned()
                .expect("error envelope")
        };
        let r = parsed(&s.handle_line("{ not json"));
        assert_eq!(code_of(&r), Json::Str("parse_error".into()));
        let r = parsed(&s.handle_line(r#"{"method": "pst", "unit": "00000000000000aa"}"#));
        assert_eq!(code_of(&r), Json::Str("unknown_unit".into()));
        let r = parsed(&s.handle_line(r#"{"method": "pst"}"#));
        assert_eq!(code_of(&r), Json::Str("invalid_request".into()));
        let r = parsed(&s.handle_line(r#"{"method": "pst", "source": "fn ("}"#));
        assert_eq!(code_of(&r), Json::Str("analysis_error".into()));
        // ...and a well-formed request still succeeds afterwards.
        let ok = parsed(&s.handle_line(&format!(
            r#"{{"method": "pst", "source": {}}}"#,
            Json::Str(MINI.to_string())
        )));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn drain_acknowledges_then_flags_the_loop() {
        let mut s = session();
        let reply = s.handle_line(r#"{"id": "d", "method": "drain"}"#);
        assert!(reply.shutdown);
        let r = parsed(&reply);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            r.get("result").and_then(|x| x.get("draining")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn stats_reports_saturation_fields() {
        let mut s = session();
        let _ = s.handle_line(&format!(
            r#"{{"method": "pst", "source": {}}}"#,
            Json::Str(MINI.to_string())
        ));
        let r = parsed(&s.handle_line(r#"{"method": "stats"}"#));
        let result = r.get("result").unwrap();
        assert_eq!(result.get("workers"), Some(&Json::UInt(1)));
        assert_eq!(result.get("in_flight"), Some(&Json::UInt(0)));
        assert_eq!(result.get("quarantined_units"), Some(&Json::UInt(0)));
        let ticks = result.get("uptime_ticks").and_then(Json::as_u64).unwrap();
        assert!(ticks >= 1, "uptime_ticks = {ticks}");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn slow_injection_with_a_tight_budget_exceeds_the_deadline() {
        let mut s = Session::new(ServeConfig {
            request_timeout_ms: 5,
            ..ServeConfig::default()
        });
        let mini = Json::Str(MINI.to_string());
        let r = parsed(&s.handle_line(&format!(
            r#"{{"id": 1, "method": "pst", "source": {mini}, "inject": "slow"}}"#
        )));
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            r.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        // Without the slow fault the same budget is plenty.
        let ok = parsed(&s.handle_line(&format!(r#"{{"method": "pst", "source": {mini}}}"#)));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn shutdown_acknowledges_then_flags_the_loop() {
        let mut s = session();
        let reply = s.handle_line(r#"{"id": "bye", "method": "shutdown"}"#);
        assert!(reply.shutdown);
        let r = Json::parse(&reply.line).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("id"), Some(&Json::Str("bye".into())));
    }

    #[test]
    fn eviction_under_a_tiny_budget_forgets_old_units() {
        let mut s = Session::new(ServeConfig {
            cache: CacheConfig {
                max_entries: 1,
                max_bytes: 0,
            },
            ..ServeConfig::default()
        });
        let a = format!(r#"{{"method": "pst", "source": {}}}"#, Json::Str(MINI.into()));
        let b = r#"{"method": "pst", "edges": "0->1\n"}"#.to_string();
        let first = parsed(&s.handle_line(&a));
        let unit_a = match first.get("unit") {
            Some(Json::Str(u)) => u.clone(),
            _ => unreachable!(),
        };
        let _ = s.handle_line(&b); // evicts unit a
        let r = parsed(&s.handle_line(&format!(r#"{{"method": "pst", "unit": "{unit_a}"}}"#)));
        assert_eq!(
            r.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("unknown_unit".into()))
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panic_is_contained_and_quarantines_the_unit() {
        let mut s = session();
        let mini = Json::Str(MINI.to_string());
        let ok = parsed(&s.handle_line(&format!(r#"{{"method": "pst", "source": {mini}}}"#)));
        assert_eq!(ok.get("cached"), Some(&Json::Bool(false)));
        let boom = parsed(&s.handle_line(&format!(
            r#"{{"id": 9, "method": "pst", "source": {mini}, "inject": "panic"}}"#
        )));
        assert_eq!(boom.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            boom.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("panic".into()))
        );
        assert_eq!(boom.get("id"), Some(&Json::UInt(9)));
        // The unit was quarantined: the same query recomputes from scratch
        // (cached=false), and the daemon is still healthy.
        let again = parsed(&s.handle_line(&format!(r#"{{"method": "pst", "source": {mini}}}"#)));
        assert_eq!(again.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(again.get("cached"), Some(&Json::Bool(false)));
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn inject_is_refused_without_the_feature() {
        let mut s = session();
        let r = parsed(&s.handle_line(&format!(
            r#"{{"method": "pst", "source": {}, "inject": "panic"}}"#,
            Json::Str(MINI.to_string())
        )));
        assert_eq!(
            r.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("unsupported".into()))
        );
    }
}
