//! The concurrent daemon front-end: shards, admission, drain, snapshots.
//!
//! [`SharedSession`] wraps N [`Session`] shards (N = `--workers`), each
//! behind its own poison-recovering `Mutex`. Requests route to a shard
//! by content-hash key, so concurrent requests for *different* units
//! proceed in parallel while requests for the *same* unit serialize on
//! its shard — which is exactly the ordering the per-unit memo wants.
//! Unit-less control methods (`stats`, `drain`, `shutdown`) and the
//! admission gate are handled here, above the shards.
//!
//! Lifecycle flags are monotone (`draining`, `stopping` only ever go
//! false→true), so workers can read them lock-free at loop boundaries:
//!
//! * **admitting** — the normal state; analysis requests pass the
//!   in-flight gate or are shed with an `overloaded` envelope.
//! * **draining** — after `drain` or `shutdown`: no new work admitted,
//!   in-flight requests finish and their replies are written, then the
//!   process flushes (snapshot, journal, metrics) and exits.
//!
//! Shard budgets: the configured cache budgets are *totals*; each shard
//! gets an even share so `--cache-entries 256 --workers 4` still caps
//! the daemon at ~256 resident units.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use pst_obs::json::Json;

use crate::hash::content_hash;
use crate::metrics::LiveMetrics;
use crate::proto::{
    error_response, ok_response, overloaded_response, ErrorCode, Method, Request, RequestInput,
};
use crate::session::{ServeConfig, ServeFault, Session, KIND_EDGES, KIND_MINI};
use crate::snapshot::{self, SnapshotError};

/// Decrements the in-flight gauge however the request ends (including
/// by panic containment inside the shard).
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared daemon state: session shards plus the cross-cutting gauges
/// and lifecycle flags. One instance serves all connections.
pub struct SharedSession {
    shards: Vec<Mutex<Session>>,
    config: ServeConfig,
    /// All requests seen (any method, malformed included).
    requests: AtomicU64,
    /// Analysis requests admitted past the gate (snapshot cadence).
    admitted: AtomicU64,
    /// Logical uptime: one tick per request plus one per accepted
    /// connection. Deterministic for a given traffic sequence, unlike
    /// wall-clock.
    ticks: AtomicU64,
    /// Analysis requests currently inside a shard.
    in_flight: AtomicUsize,
    /// Requests shed by the admission gate.
    shed: AtomicU64,
    /// Failed accepts / mid-stream connection I/O errors.
    conn_errors: AtomicU64,
    /// Units restored from the startup snapshot (warm-restart gauge).
    restored: u64,
    /// Monotone false→true; `shutdown` and `drain` both set it. Workers
    /// and the accept loop read it lock-free at loop boundaries.
    draining: AtomicBool,
    /// Serializes snapshot writes and provides unique tmp suffixes.
    snapshot_seq: Mutex<u64>,
    /// Windowed per-method/per-shard series and the slowlog ring;
    /// `None` when `--metrics-window-ms 0` disabled live telemetry.
    live: Option<Mutex<LiveMetrics>>,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Poison recovery, per docs/SERVING.md § Locking: a panic inside a
    // shard is already contained and reported as an envelope; the data
    // is a unit cache, safe to keep serving.
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Splits a total budget evenly across shards, rounding up, preserving
/// 0 = unlimited.
fn share(total: usize, shards: usize) -> usize {
    if total == 0 {
        0
    } else {
        total.div_ceil(shards)
    }
}

impl SharedSession {
    /// Builds the shard set and, when `--cache-snapshot` names a file,
    /// warm-restores it (tolerating every defect by starting cold).
    pub fn new(config: ServeConfig) -> SharedSession {
        let shard_count = config.workers.max(1);
        let mut shard_config = config.clone();
        shard_config.cache.max_entries = share(config.cache.max_entries, shard_count);
        shard_config.cache.max_bytes = share(config.cache.max_bytes, shard_count);
        let shards = (0..shard_count)
            .map(|_| Mutex::new(Session::new(shard_config.clone())))
            .collect();
        let live = (config.metrics_window_ms > 0).then(|| {
            Mutex::new(LiveMetrics::new(
                config.metrics_window_ms,
                config.metrics_windows,
                config.slowlog_capacity,
                shard_count,
            ))
        });
        let mut shared = SharedSession {
            shards,
            config,
            requests: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
            restored: 0,
            draining: AtomicBool::new(false),
            snapshot_seq: Mutex::new(0),
            live,
        };
        shared.restore_snapshot();
        shared
    }

    /// The active configuration (with the *total* cache budgets, not
    /// the per-shard share).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// True once `drain` or `shutdown` was acknowledged: stop admitting
    /// and stop reading; finish what is in flight.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Analysis requests currently inside shards.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Units restored from the startup snapshot.
    pub fn restored_units(&self) -> u64 {
        self.restored
    }

    /// Counts an accepted connection (one uptime tick).
    pub fn note_connection(&self) {
        self.ticks.fetch_add(1, Ordering::SeqCst);
        pst_obs::counter!("serve_connections");
    }

    /// Counts a failed `accept()` or a mid-stream connection I/O error.
    /// Connection trouble is the *client's* problem; the daemon logs a
    /// counter and keeps serving everyone else.
    pub fn note_conn_error(&self) {
        self.conn_errors.fetch_add(1, Ordering::SeqCst);
        pst_obs::counter!("serve_conn_errors");
    }

    fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::SeqCst);
        self.ticks.fetch_add(1, Ordering::SeqCst);
        pst_obs::counter!("serve_requests");
    }

    fn error_reply(&self, id: &Json, code: ErrorCode, message: &str) -> crate::session::Reply {
        pst_obs::counter!("serve_errors");
        crate::session::Reply {
            line: error_response(id, code, message).to_string(),
            shutdown: false,
            drop_conn: false,
            outcome: None,
        }
    }

    /// The envelope for a line exceeding `--max-request-bytes`.
    pub fn oversized_reply(&self, actual: usize) -> crate::session::Reply {
        self.count_request();
        self.error_reply(
            &Json::Null,
            ErrorCode::OversizedRequest,
            &format!(
                "request line is {actual} bytes; the limit is {} (--max-request-bytes)",
                self.config.max_request_bytes
            ),
        )
    }

    /// The envelope for a non-UTF-8 request line.
    pub fn invalid_utf8_reply(&self, valid_up_to: usize) -> crate::session::Reply {
        self.count_request();
        self.error_reply(
            &Json::Null,
            ErrorCode::InvalidUtf8,
            &format!("request line is not valid UTF-8 (first invalid byte at offset {valid_up_to})"),
        )
    }

    /// Answers one request line from any worker thread. Control methods
    /// are handled here; analysis requests pass the admission gate and
    /// route to a shard by content key.
    pub fn handle_line(&self, line: &str) -> crate::session::Reply {
        let started = Instant::now();
        self.count_request();
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return self.error_reply(&e.id, e.code, &e.message),
        };
        match req.method {
            Method::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                let nanos = started.elapsed().as_nanos() as u64;
                let result = Json::obj([("stopping", Json::Bool(true))]);
                crate::session::Reply {
                    line: ok_response(&req.id, None, None, nanos, result).to_string(),
                    shutdown: true,
                    drop_conn: false,
                    outcome: None,
                }
            }
            Method::Drain => {
                self.draining.store(true, Ordering::SeqCst);
                pst_obs::counter!("serve_drains");
                let nanos = started.elapsed().as_nanos() as u64;
                let result = Json::obj([
                    ("draining", Json::Bool(true)),
                    ("in_flight", Json::UInt(self.in_flight() as u64)),
                ]);
                crate::session::Reply {
                    line: ok_response(&req.id, None, None, nanos, result).to_string(),
                    shutdown: true,
                    drop_conn: false,
                    outcome: None,
                }
            }
            Method::Stats => {
                let nanos = started.elapsed().as_nanos() as u64;
                crate::session::Reply {
                    line: ok_response(&req.id, None, None, nanos, self.stats_json()).to_string(),
                    shutdown: false,
                    drop_conn: false,
                    outcome: None,
                }
            }
            Method::Metrics => self.metrics_reply(&req, started),
            Method::Slowlog => self.slowlog_reply(&req, started),
            _ => self.handle_analysis(&req, started),
        }
    }

    /// The `metrics` RPC: windowed JSON by default, Prometheus-style
    /// text (as a `body` string field) on `"format": "text"`.
    fn metrics_reply(&self, req: &Request, started: Instant) -> crate::session::Reply {
        let Some(live) = &self.live else {
            return self.error_reply(
                &req.id,
                ErrorCode::Unsupported,
                "live telemetry is disabled (--metrics-window-ms 0)",
            );
        };
        let result = match req.format.as_deref() {
            None | Some("json") => lock(live).to_json(),
            Some("text") => Json::obj([
                ("format", Json::Str("text".to_string())),
                ("body", Json::Str(self.render_metrics_text())),
            ]),
            Some(other) => {
                return self.error_reply(
                    &req.id,
                    ErrorCode::InvalidRequest,
                    &format!("unknown metrics format `{other}` (expected `json` or `text`)"),
                )
            }
        };
        let nanos = started.elapsed().as_nanos() as u64;
        crate::session::Reply {
            line: ok_response(&req.id, None, None, nanos, result).to_string(),
            shutdown: false,
            drop_conn: false,
            outcome: None,
        }
    }

    /// The `slowlog` RPC: the top-K slowest requests, phase-attributed.
    fn slowlog_reply(&self, req: &Request, started: Instant) -> crate::session::Reply {
        let Some(live) = &self.live else {
            return self.error_reply(
                &req.id,
                ErrorCode::Unsupported,
                "live telemetry is disabled (--metrics-window-ms 0)",
            );
        };
        let result = lock(live).slowlog_json();
        let nanos = started.elapsed().as_nanos() as u64;
        crate::session::Reply {
            line: ok_response(&req.id, None, None, nanos, result).to_string(),
            shutdown: false,
            drop_conn: false,
            outcome: None,
        }
    }

    /// The one-shot HTTP responder's body (`--metrics-listen`): every
    /// live family plus the daemon-wide counters and gauges. Works —
    /// reduced to the daemon-wide families — even when live telemetry
    /// is disabled.
    pub fn render_metrics_text(&self) -> String {
        let counters = [
            ("pst_serve_shed_total", self.shed.load(Ordering::SeqCst)),
            (
                "pst_serve_conn_errors_total",
                self.conn_errors.load(Ordering::SeqCst),
            ),
        ];
        let gauges = [
            ("pst_serve_in_flight", self.in_flight() as u64),
            ("pst_serve_workers", self.shards.len() as u64),
            ("pst_serve_draining", u64::from(self.is_draining())),
        ];
        match &self.live {
            Some(live) => lock(live).render_text(&counters, &gauges),
            None => crate::metrics::render_extra_only(&counters, &gauges),
        }
    }

    fn handle_analysis(&self, req: &Request, started: Instant) -> crate::session::Reply {
        if self.is_draining() {
            self.shed.fetch_add(1, Ordering::SeqCst);
            pst_obs::counter!("serve_shed");
            return crate::session::Reply {
                line: overloaded_response(
                    &req.id,
                    "daemon is draining; no new work is admitted — retry against a fresh instance",
                    0,
                )
                .to_string(),
                shutdown: false,
                drop_conn: false,
                outcome: None,
            };
        }
        // Admission gate: claim a slot optimistically, release and shed
        // if that claim overshot the bound.
        let occupied = self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.config.max_inflight > 0 && occupied >= self.config.max_inflight {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.shed.fetch_add(1, Ordering::SeqCst);
            pst_obs::counter!("serve_shed");
            // Hint scales with saturation so a thundering herd spreads
            // out; the bench client adds jitter on top.
            let retry_after_ms = 10 + 5 * (occupied.min(100) as u64);
            return crate::session::Reply {
                line: overloaded_response(
                    &req.id,
                    &format!(
                        "daemon is at its in-flight limit ({}; --max-inflight); retry after the hint",
                        self.config.max_inflight
                    ),
                    retry_after_ms,
                )
                .to_string(),
                shutdown: false,
                drop_conn: false,
                outcome: None,
            };
        }
        let _slot = InFlightGuard(&self.in_flight);
        let shard = self.shard_of(&req.input);
        let reply = lock(&self.shards[shard]).handle_request(req, started);

        // Fold the request into the live series (and, past the
        // threshold, the journal) before the reply leaves the daemon.
        if let (Some(live), Some(outcome)) = (&self.live, reply.outcome.as_ref()) {
            lock(live).record(outcome, shard);
            let threshold_nanos = self.config.slowlog_ms.saturating_mul(1_000_000);
            if self.config.slowlog_ms > 0 && outcome.total_nanos >= threshold_nanos {
                pst_obs::counter!("serve_slow_requests");
                pst_obs::journal::emit(pst_obs::journal::Event::SlowRequest {
                    method: outcome.method.to_string(),
                    unit: outcome.unit.clone(),
                    total_nanos: outcome.total_nanos,
                    compute_nanos: outcome.compute_nanos,
                });
            }
        }

        let admitted = self.admitted.fetch_add(1, Ordering::SeqCst) + 1;
        if self.config.snapshot_every > 0 && admitted.is_multiple_of(self.config.snapshot_every) {
            self.save_snapshot();
        }
        reply
    }

    /// Routes an input to its shard: same content, same shard, always.
    fn shard_of(&self, input: &RequestInput) -> usize {
        let key = match input {
            RequestInput::MiniSource(s) => content_hash(KIND_MINI, s.as_bytes()),
            RequestInput::EdgeList(s) => content_hash(KIND_EDGES, s.as_bytes()),
            RequestInput::Unit(k) => *k,
            // Input-less analysis requests error inside any shard.
            RequestInput::None => 0,
        };
        (key % self.shards.len() as u64) as usize
    }

    /// Aggregated `stats` reply across all shards.
    fn stats_json(&self) -> Json {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        let mut panics = 0u64;
        let mut quarantined = 0u64;
        let mut stats = crate::cache::CacheStats::default();
        let mut hot = pst_obs::Histogram::new();
        let mut cold = pst_obs::Histogram::new();
        for shard in &self.shards {
            let s = lock(shard);
            let (e, b, _tick, cs) = s.cache_snapshot_stats();
            entries += e as u64;
            bytes += b as u64;
            stats.hits += cs.hits;
            stats.misses += cs.misses;
            stats.evictions += cs.evictions;
            stats.insertions += cs.insertions;
            panics += s.contained_panics();
            quarantined += s.quarantined_units();
            s.merge_latency_into(&mut hot, &mut cold);
        }
        let cfg = self.config.cache;
        Json::obj([
            ("requests", Json::UInt(self.requests.load(Ordering::SeqCst))),
            ("contained_panics", Json::UInt(panics)),
            ("quarantined_units", Json::UInt(quarantined)),
            ("uptime_ticks", Json::UInt(self.ticks.load(Ordering::SeqCst))),
            ("in_flight", Json::UInt(self.in_flight() as u64)),
            ("workers", Json::UInt(self.shards.len() as u64)),
            ("draining", Json::Bool(self.is_draining())),
            ("shed", Json::UInt(self.shed.load(Ordering::SeqCst))),
            (
                "conn_errors",
                Json::UInt(self.conn_errors.load(Ordering::SeqCst)),
            ),
            ("snapshot_restored_units", Json::UInt(self.restored)),
            (
                "max_request_bytes",
                Json::UInt(self.config.max_request_bytes as u64),
            ),
            ("serve_hot_p50_nanos", Json::UInt(hot.quantile(0.5))),
            ("serve_hot_p99_nanos", Json::UInt(hot.quantile(0.99))),
            ("serve_cold_p50_nanos", Json::UInt(cold.quantile(0.5))),
            ("serve_cold_p99_nanos", Json::UInt(cold.quantile(0.99))),
            (
                "cache",
                Json::obj([
                    ("entries", Json::UInt(entries)),
                    ("bytes", Json::UInt(bytes)),
                    ("max_entries", Json::UInt(cfg.max_entries as u64)),
                    ("max_bytes", Json::UInt(cfg.max_bytes as u64)),
                    ("hits", Json::UInt(stats.hits)),
                    ("misses", Json::UInt(stats.misses)),
                    ("evictions", Json::UInt(stats.evictions)),
                    ("insertions", Json::UInt(stats.insertions)),
                ]),
            ),
        ])
    }

    /// Loads the startup snapshot, if configured. Every defect — missing
    /// file, truncation, checksum mismatch, version skew, an entry that
    /// no longer parses — degrades to a cold (or partial) start with a
    /// log line; a snapshot is never a boot dependency.
    fn restore_snapshot(&mut self) {
        let Some(path) = self.config.snapshot_path.clone() else {
            return;
        };
        let entries = match snapshot::load(&path) {
            Ok(entries) => entries,
            Err(SnapshotError::Missing) => {
                eprintln!("pst serve: no cache snapshot at {path}; starting cold");
                return;
            }
            Err(e) => {
                eprintln!("pst serve: {e}; starting cold");
                pst_obs::counter!("serve_snapshot_load_failed");
                return;
            }
        };
        let mut restored = 0u64;
        for entry in &entries {
            let shard = self.shard_of(&RequestInput::Unit(content_hash(
                entry.kind,
                entry.source.as_bytes(),
            )));
            let outcome =
                lock(&self.shards[shard]).restore_unit(entry.kind, &entry.source, &entry.results);
            match outcome {
                Ok(()) => restored += 1,
                Err((_, message)) => {
                    eprintln!("pst serve: snapshot entry skipped: {message}");
                }
            }
        }
        self.restored = restored;
        pst_obs::counter!("serve_snapshot_restored", restored);
        eprintln!(
            "pst serve: restored {restored} of {} snapshot unit(s) from {path}",
            entries.len()
        );
    }

    /// Writes the cache snapshot, if configured. Atomic (write tmp,
    /// rename) and serialized across callers; failures are logged and
    /// counted, never fatal.
    pub fn save_snapshot(&self) {
        let Some(path) = &self.config.snapshot_path else {
            return;
        };
        let mut seq = lock(&self.snapshot_seq);
        *seq += 1;
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(lock(shard).export_units());
        }
        let corrupt = cfg!(feature = "fault-inject")
            && self.config.inject_fault == Some(ServeFault::CorruptSnapshot);
        if corrupt {
            pst_obs::counter!("serve_injected_faults");
        }
        match snapshot::save(path, *seq, &entries, corrupt) {
            Ok(()) => {
                pst_obs::counter!("serve_snapshot_saved");
            }
            Err(e) => {
                eprintln!("pst serve: snapshot write to {path} failed: {e}");
                pst_obs::counter!("serve_snapshot_save_failed");
            }
        }
    }

    /// Drain epilogue, run once by the owning thread after the serving
    /// loops stop: persist the cache and push telemetry out.
    pub fn finish(&self) {
        self.save_snapshot();
        pst_obs::journal::flush();
        pst_obs::flush_thread();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    const MINI: &str = "fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }";

    fn config(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    fn parsed(reply: &crate::session::Reply) -> Json {
        Json::parse(&reply.line).unwrap()
    }

    fn pst_line(source: &str) -> String {
        format!(
            r#"{{"method": "pst", "source": {}}}"#,
            Json::Str(source.to_string())
        )
    }

    #[test]
    fn routes_repeat_content_to_the_same_shard_for_a_memo_hit() {
        let shared = SharedSession::new(config(4));
        let first = parsed(&shared.handle_line(&pst_line(MINI)));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let second = parsed(&shared.handle_line(&pst_line(MINI)));
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_aggregates_shards_and_reports_saturation() {
        let shared = SharedSession::new(config(3));
        for i in 0..4 {
            let src = format!("fn f{i}(n) {{ return n; }}");
            let r = parsed(&shared.handle_line(&pst_line(&src)));
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "unit {i}");
        }
        let stats = parsed(&shared.handle_line(r#"{"method": "stats"}"#));
        let result = stats.get("result").unwrap();
        assert_eq!(result.get("requests"), Some(&Json::UInt(5)));
        assert_eq!(result.get("workers"), Some(&Json::UInt(3)));
        assert_eq!(result.get("in_flight"), Some(&Json::UInt(0)));
        assert_eq!(result.get("draining"), Some(&Json::Bool(false)));
        let cache = result.get("cache").unwrap();
        assert_eq!(cache.get("misses"), Some(&Json::UInt(4)));
        assert_eq!(cache.get("entries"), Some(&Json::UInt(4)));
    }

    #[test]
    fn drain_stops_admitting_but_still_answers_stats() {
        let shared = SharedSession::new(config(2));
        let drain = shared.handle_line(r#"{"id": 1, "method": "drain"}"#);
        assert!(drain.shutdown);
        let r = parsed(&drain);
        assert_eq!(
            r.get("result").and_then(|x| x.get("draining")),
            Some(&Json::Bool(true))
        );
        let shed = parsed(&shared.handle_line(&pst_line(MINI)));
        assert_eq!(shed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            shed.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str("overloaded".into()))
        );
        // Control-plane methods still work while draining.
        let stats = parsed(&shared.handle_line(r#"{"method": "stats"}"#));
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            stats.get("result").and_then(|x| x.get("draining")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn zero_max_inflight_admits_everything() {
        let shared = SharedSession::new(ServeConfig {
            max_inflight: 0,
            ..config(2)
        });
        let r = parsed(&shared.handle_line(&pst_line(MINI)));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn shard_budget_share_rounds_up_and_preserves_unlimited() {
        assert_eq!(share(0, 4), 0);
        assert_eq!(share(256, 4), 64);
        assert_eq!(share(10, 3), 4);
        assert_eq!(share(1, 8), 1);
    }

    #[test]
    fn snapshot_round_trip_warms_the_restarted_daemon() {
        let dir = std::env::temp_dir().join(format!("pst-shared-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot").to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&path);
        let cfg = ServeConfig {
            snapshot_path: Some(path.clone()),
            snapshot_every: 0, // only on drain
            cache: CacheConfig::default(),
            ..config(2)
        };
        let first = SharedSession::new(cfg.clone());
        let cold = parsed(&first.handle_line(&pst_line(MINI)));
        assert_eq!(cold.get("cached"), Some(&Json::Bool(false)));
        first.finish();
        assert_eq!(first.restored_units(), 0);

        let second = SharedSession::new(cfg);
        assert_eq!(second.restored_units(), 1);
        let warm = parsed(&second.handle_line(&pst_line(MINI)));
        assert_eq!(warm.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(warm.get("cached"), Some(&Json::Bool(true)));
        let _ = std::fs::remove_file(&path);
    }
}
