//! Live daemon telemetry: per-method and per-shard windowed series, the
//! slow-request ring, and Prometheus-style text exposition.
//!
//! [`LiveMetrics`] sits behind one mutex in the shared front-end and is
//! fed one [`RequestOutcome`] per analysis request. Time is quantized
//! into ticks of `--metrics-window-ms` each (the injectable tick clock
//! of [`pst_obs::WindowedHistogram`]): quantiles and rates answer "over
//! the last few windows", while the lifetime histograms and the
//! monotone [`pst_obs::RollingCounter`] totals feed the exposition
//! format, whose counters must never decrease.
//!
//! The slowlog is a bounded ring of the top-K slowest requests seen so
//! far, each carrying the per-phase breakdown measured inside the
//! session (`register` / `inject` / `compute`), so a chaos-injected
//! stall is attributable to its phase rather than a mystery total.
//!
//! The text exposition is deliberately minimal Prometheus 0.0.4: one
//! `# TYPE` comment per family, `name{label="value"} n` samples, no
//! dependencies. `docs/OBSERVABILITY.md` § Exposition documents the
//! grammar subset and every exported family.

use std::time::Instant;

use pst_obs::json::Json;
use pst_obs::{Histogram, RollingCounter, WindowedHistogram};

/// What one finished analysis request looked like, as recorded by the
/// session and attached to its [`crate::session::Reply`]. This is the
/// only thing the live-metrics layer ever sees — it never re-parses
/// response JSON.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Wire name of the method (`"pst"`, `"lint"`, ...).
    pub method: &'static str,
    /// The touched unit's hex id, when the request got that far.
    pub unit: Option<String>,
    /// True when the reply was an `ok` envelope.
    pub ok: bool,
    /// True when the result came out of the per-method memo.
    pub cached: bool,
    /// End-to-end latency as the reply was built.
    pub total_nanos: u64,
    /// Time resolving/registering the unit (parse + canonicalize on a
    /// cache miss, a lookup on a hit).
    pub register_nanos: u64,
    /// Time inside fault injection (absorbs an injected `slow` stall,
    /// so chaos latency is attributed to this phase, not `compute`).
    pub inject_nanos: u64,
    /// Time computing the method result (0 on a memo hit).
    pub compute_nanos: u64,
}

/// One retained slowlog entry: an outcome plus its admission sequence
/// number (so equal-latency entries keep a stable order).
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Monotone per-daemon sequence number of the recorded request.
    pub seq: u64,
    /// The recorded outcome.
    pub outcome: RequestOutcome,
}

/// The windowed series of one method.
struct MethodSeries {
    latency: WindowedHistogram,
    /// Lifetime latency (never expires): feeds the exposition summary's
    /// monotone `_sum` / `_count`.
    lifetime: Histogram,
    requests: RollingCounter,
    errors: RollingCounter,
    cache_hits: RollingCounter,
}

impl MethodSeries {
    fn new(windows: usize) -> MethodSeries {
        MethodSeries {
            latency: WindowedHistogram::new(windows),
            lifetime: Histogram::new(),
            requests: RollingCounter::new(windows),
            errors: RollingCounter::new(windows),
            cache_hits: RollingCounter::new(windows),
        }
    }
}

/// The windowed series of one session shard.
struct ShardSeries {
    requests: RollingCounter,
    errors: RollingCounter,
}

/// All live telemetry of one daemon. Constructed only when
/// `--metrics-window-ms` is non-zero; the perf harness measures the
/// disabled configuration against this one to price the overhead.
pub struct LiveMetrics {
    window_ms: u64,
    windows: usize,
    started: Instant,
    /// `(wire name, series)`, insertion-ordered by first sighting.
    methods: Vec<(&'static str, MethodSeries)>,
    shards: Vec<ShardSeries>,
    /// Sorted by `total_nanos` descending; never longer than
    /// `slowlog_capacity`.
    slowlog: Vec<SlowEntry>,
    slowlog_capacity: usize,
    seq: u64,
}

impl LiveMetrics {
    /// Fresh telemetry for a daemon with `shards` session shards.
    /// `window_ms` must be non-zero (the caller gates the disabled
    /// configuration); `windows` and `slowlog_capacity` are clamped to
    /// at least 1.
    pub fn new(
        window_ms: u64,
        windows: usize,
        slowlog_capacity: usize,
        shards: usize,
    ) -> LiveMetrics {
        let windows = windows.max(1);
        LiveMetrics {
            window_ms: window_ms.max(1),
            windows,
            started: Instant::now(),
            methods: Vec::new(),
            shards: (0..shards.max(1))
                .map(|_| ShardSeries {
                    requests: RollingCounter::new(windows),
                    errors: RollingCounter::new(windows),
                })
                .collect(),
            slowlog: Vec::new(),
            slowlog_capacity: slowlog_capacity.max(1),
            seq: 0,
        }
    }

    /// The current tick of the injectable clock: wall-time quantized by
    /// the window width. This is the only place the live layer reads
    /// `Instant`; everything below it is pure tick arithmetic.
    fn tick(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64) / self.window_ms
    }

    fn series_mut(&mut self, method: &'static str) -> &mut MethodSeries {
        if let Some(i) = self.methods.iter().position(|(m, _)| *m == method) {
            return &mut self.methods[i].1;
        }
        self.methods.push((method, MethodSeries::new(self.windows)));
        let last = self.methods.len() - 1;
        &mut self.methods[last].1
    }

    /// Folds one finished request into every series and, when it ranks,
    /// into the slowlog ring.
    pub fn record(&mut self, outcome: &RequestOutcome, shard: usize) {
        let tick = self.tick();
        self.seq += 1;
        let seq = self.seq;
        let series = self.series_mut(outcome.method);
        series.latency.record_at(tick, outcome.total_nanos);
        series.lifetime.record(outcome.total_nanos);
        series.requests.add_at(tick, 1);
        if !outcome.ok {
            series.errors.add_at(tick, 1);
        }
        if outcome.cached {
            series.cache_hits.add_at(tick, 1);
        }
        if let Some(s) = self.shards.get_mut(shard) {
            s.requests.add_at(tick, 1);
            if !outcome.ok {
                s.errors.add_at(tick, 1);
            }
        }
        // Slowlog admission: rank by total latency, keep top-K. The ring
        // captures regardless of --slowlog-ms; the threshold only gates
        // journal events (decided by the caller).
        let ranks = self.slowlog.len() < self.slowlog_capacity
            || self
                .slowlog
                .last()
                .is_some_and(|worst| outcome.total_nanos > worst.outcome.total_nanos);
        if ranks {
            let entry = SlowEntry {
                seq,
                outcome: outcome.clone(),
            };
            let at = self
                .slowlog
                .partition_point(|e| e.outcome.total_nanos >= entry.outcome.total_nanos);
            self.slowlog.insert(at, entry);
            self.slowlog.truncate(self.slowlog_capacity);
        }
    }

    /// The `metrics` RPC result (JSON form). Advances every series to
    /// the current tick first, so idle windows expire before they are
    /// read.
    pub fn to_json(&mut self) -> Json {
        let tick = self.tick();
        let windows = self.windows;
        let mut methods = Vec::with_capacity(self.methods.len());
        for (name, series) in &mut self.methods {
            series.latency.advance(tick);
            series.requests.advance(tick);
            series.errors.advance(tick);
            series.cache_hits.advance(tick);
            let merged = series.latency.merged(windows);
            methods.push((
                name.to_string(),
                Json::obj([
                    ("requests_total", Json::UInt(series.requests.total())),
                    ("errors_total", Json::UInt(series.errors.total())),
                    ("cache_hits_total", Json::UInt(series.cache_hits.total())),
                    (
                        "window",
                        Json::obj([
                            ("requests", Json::UInt(series.requests.sum(windows))),
                            ("errors", Json::UInt(series.errors.sum(windows))),
                            ("cache_hits", Json::UInt(series.cache_hits.sum(windows))),
                            ("count", Json::UInt(merged.count())),
                            ("p50_nanos", Json::UInt(merged.quantile(0.5))),
                            ("p99_nanos", Json::UInt(merged.quantile(0.99))),
                            ("max_nanos", Json::UInt(merged.max())),
                        ]),
                    ),
                ]),
            ));
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &mut self.shards {
            s.requests.advance(tick);
            s.errors.advance(tick);
            shards.push(Json::obj([
                ("requests_total", Json::UInt(s.requests.total())),
                ("errors_total", Json::UInt(s.errors.total())),
                ("window_requests", Json::UInt(s.requests.sum(windows))),
            ]));
        }
        Json::obj([
            ("window_ms", Json::UInt(self.window_ms)),
            ("windows", Json::UInt(self.windows as u64)),
            ("tick", Json::UInt(tick)),
            ("methods", Json::Obj(methods)),
            ("shards", Json::Arr(shards)),
            ("slowlog_entries", Json::UInt(self.slowlog.len() as u64)),
        ])
    }

    /// The `slowlog` RPC result: slowest-first entries with their phase
    /// breakdowns.
    pub fn slowlog_json(&self) -> Json {
        Json::obj([
            ("capacity", Json::UInt(self.slowlog_capacity as u64)),
            (
                "entries",
                Json::Arr(
                    self.slowlog
                        .iter()
                        .map(|e| {
                            let o = &e.outcome;
                            Json::obj([
                                ("seq", Json::UInt(e.seq)),
                                ("method", Json::Str(o.method.to_string())),
                                (
                                    "unit",
                                    o.unit
                                        .as_ref()
                                        .map_or(Json::Null, |u| Json::Str(u.clone())),
                                ),
                                ("ok", Json::Bool(o.ok)),
                                ("cached", Json::Bool(o.cached)),
                                ("total_nanos", Json::UInt(o.total_nanos)),
                                (
                                    "phases",
                                    Json::obj([
                                        ("register_nanos", Json::UInt(o.register_nanos)),
                                        ("inject_nanos", Json::UInt(o.inject_nanos)),
                                        ("compute_nanos", Json::UInt(o.compute_nanos)),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Prometheus-style text exposition of every live family plus the
    /// caller's daemon-wide counters and gauges.
    pub fn render_text(
        &mut self,
        extra_counters: &[(&str, u64)],
        extra_gauges: &[(&str, u64)],
    ) -> String {
        let tick = self.tick();
        let windows = self.windows;
        let mut out = String::new();
        family(&mut out, "pst_serve_requests_total", "counter");
        for (name, series) in &mut self.methods {
            series.requests.advance(tick);
            sample(&mut out, "pst_serve_requests_total", name, None, series.requests.total());
        }
        family(&mut out, "pst_serve_errors_total", "counter");
        for (name, series) in &mut self.methods {
            series.errors.advance(tick);
            sample(&mut out, "pst_serve_errors_total", name, None, series.errors.total());
        }
        family(&mut out, "pst_serve_cache_hits_total", "counter");
        for (name, series) in &mut self.methods {
            series.cache_hits.advance(tick);
            sample(&mut out, "pst_serve_cache_hits_total", name, None, series.cache_hits.total());
        }
        // Summary family: live quantiles from the windowed ring, monotone
        // _sum/_count from the lifetime histogram.
        family(&mut out, "pst_serve_latency_nanos", "summary");
        for (name, series) in &mut self.methods {
            series.latency.advance(tick);
            let merged = series.latency.merged(windows);
            sample(&mut out, "pst_serve_latency_nanos", name, Some("0.5"), merged.quantile(0.5));
            sample(&mut out, "pst_serve_latency_nanos", name, Some("0.99"), merged.quantile(0.99));
            sample(&mut out, "pst_serve_latency_nanos_sum", name, None, series.lifetime.sum());
            sample(&mut out, "pst_serve_latency_nanos_count", name, None, series.lifetime.count());
        }
        family(&mut out, "pst_serve_shard_requests_total", "counter");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "pst_serve_shard_requests_total{{shard=\"{i}\"}} {}\n",
                s.requests.total()
            ));
        }
        render_extra(&mut out, extra_counters, extra_gauges);
        out
    }
}

/// Exposition for a daemon whose live telemetry is disabled
/// (`--metrics-window-ms 0`): only the daemon-wide families.
pub fn render_extra_only(extra_counters: &[(&str, u64)], extra_gauges: &[(&str, u64)]) -> String {
    let mut out = String::new();
    render_extra(&mut out, extra_counters, extra_gauges);
    out
}

fn render_extra(out: &mut String, extra_counters: &[(&str, u64)], extra_gauges: &[(&str, u64)]) {
    for (name, value) in extra_counters {
        family(out, name, "counter");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, value) in extra_gauges {
        family(out, name, "gauge");
        out.push_str(&format!("{name} {value}\n"));
    }
}

fn family(out: &mut String, name: &str, kind: &str) {
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn sample(out: &mut String, name: &str, method: &str, quantile: Option<&str>, value: u64) {
    match quantile {
        Some(q) => out.push_str(&format!(
            "{name}{{method=\"{method}\",quantile=\"{q}\"}} {value}\n"
        )),
        None => out.push_str(&format!("{name}{{method=\"{method}\"}} {value}\n")),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn outcome(method: &'static str, nanos: u64, ok: bool, cached: bool) -> RequestOutcome {
        RequestOutcome {
            method,
            unit: Some("00000000000000aa".to_string()),
            ok,
            cached,
            total_nanos: nanos,
            register_nanos: nanos / 4,
            inject_nanos: 0,
            compute_nanos: nanos / 2,
        }
    }

    #[test]
    fn records_fold_into_method_and_shard_series() {
        let mut live = LiveMetrics::new(1000, 4, 8, 2);
        live.record(&outcome("pst", 1_000, true, false), 0);
        live.record(&outcome("pst", 3_000, true, true), 0);
        live.record(&outcome("lint", 9_000, false, false), 1);
        let j = live.to_json();
        let pst = j.get("methods").and_then(|m| m.get("pst")).unwrap();
        assert_eq!(pst.get("requests_total"), Some(&Json::UInt(2)));
        assert_eq!(pst.get("cache_hits_total"), Some(&Json::UInt(1)));
        assert_eq!(pst.get("errors_total"), Some(&Json::UInt(0)));
        let lint = j.get("methods").and_then(|m| m.get("lint")).unwrap();
        assert_eq!(lint.get("errors_total"), Some(&Json::UInt(1)));
        let window = pst.get("window").unwrap();
        assert_eq!(window.get("count"), Some(&Json::UInt(2)));
        assert_eq!(window.get("max_nanos"), Some(&Json::UInt(3_000)));
        let Json::Arr(shards) = j.get("shards").unwrap() else {
            panic!("shards must be an array")
        };
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("requests_total"), Some(&Json::UInt(2)));
        assert_eq!(shards[1].get("errors_total"), Some(&Json::UInt(1)));
    }

    #[test]
    fn slowlog_keeps_the_top_k_slowest_in_order() {
        let mut live = LiveMetrics::new(1000, 4, 3, 1);
        for nanos in [5_000u64, 1_000, 9_000, 3_000, 7_000] {
            live.record(&outcome("pst", nanos, true, false), 0);
        }
        let j = live.slowlog_json();
        let Json::Arr(entries) = j.get("entries").unwrap() else {
            panic!("entries must be an array")
        };
        let totals: Vec<u64> = entries
            .iter()
            .map(|e| e.get("total_nanos").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(totals, vec![9_000, 7_000, 5_000]);
        // Phase breakdowns ride along.
        assert_eq!(
            entries[0].get("phases").and_then(|p| p.get("compute_nanos")),
            Some(&Json::UInt(4_500))
        );
    }

    #[test]
    fn text_exposition_is_parseable_and_counters_are_monotone() {
        let mut live = LiveMetrics::new(1000, 4, 8, 1);
        live.record(&outcome("pst", 2_000, true, false), 0);
        let first = live.render_text(&[("pst_serve_shed_total", 0)], &[("pst_serve_in_flight", 0)]);
        live.record(&outcome("pst", 4_000, true, true), 0);
        let second = live.render_text(&[("pst_serve_shed_total", 1)], &[("pst_serve_in_flight", 2)]);
        for text in [&first, &second] {
            for line in text.lines() {
                assert!(
                    line.starts_with("# TYPE ") || line.contains(' '),
                    "unparseable line: {line}"
                );
            }
        }
        let total = |text: &str, prefix: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let p = "pst_serve_requests_total{method=\"pst\"}";
        assert_eq!(total(&first, p), 1);
        assert_eq!(total(&second, p), 2);
        assert!(first.contains("# TYPE pst_serve_latency_nanos summary"));
        assert!(first.contains("quantile=\"0.99\""));
        assert!(second.contains("pst_serve_in_flight 2"));
    }

    #[test]
    fn disabled_daemons_still_expose_the_daemon_wide_families() {
        let text = render_extra_only(&[("pst_serve_shed_total", 3)], &[("pst_serve_workers", 4)]);
        assert!(text.contains("# TYPE pst_serve_shed_total counter"));
        assert!(text.contains("pst_serve_shed_total 3"));
        assert!(text.contains("pst_serve_workers 4"));
    }
}
