//! `pst-serve` — the long-lived analysis daemon behind `pst serve`.
//!
//! The paper frames the Program Structure Tree as a *reusable* artifact:
//! build it once, answer region queries repeatedly (§5's control-region
//! partition, §6's φ-placement and dataflow consumers). The one-shot CLI
//! throws that reuse away — every invocation re-parses and recomputes
//! the whole pipeline. This crate keeps the artifacts alive: a session
//! holds an LRU cache keyed by content hash that interns parsed units,
//! canonicalized CFGs, and per-stage pipeline results, so a repeat query
//! at any stage is a lookup, not a recompute.
//!
//! The wire protocol is newline-delimited JSON-RPC over stdin/stdout or
//! TCP (std::net only, zero dependencies) — see [`proto`] and
//! `docs/SERVING.md`. Every request is fault-isolated: malformed JSON,
//! invalid graphs, and contained panics come back as structured error
//! envelopes while the daemon keeps serving.
//!
//! The daemon is built to survive fleets, not demos: a bounded worker
//! pool serves concurrent TCP connections against sharded sessions
//! ([`shared`]), cooperative per-request deadlines and an in-flight
//! admission gate bound tail latency under overload (`deadline_exceeded`
//! / `overloaded` envelopes), `drain`/`shutdown` finish in-flight work
//! before exiting, and the cache persists across restarts through
//! crash-safe snapshots (the private `snapshot` module).
//!
//! Module map:
//! - [`hash`] — SplitMix64 content hashing for unit ids
//! - [`proto`] — request/response envelopes and error codes
//! - [`cache`] — the budgeted LRU unit cache
//! - [`session`] — artifact interning, dispatch, panic containment
//! - [`shared`] — sharded concurrent front-end: admission, drain,
//!   snapshot lifecycle, aggregated stats
//! - [`metrics`] — live telemetry: windowed per-method/per-shard
//!   series, the slow-request ring, Prometheus-style text exposition
//! - `snapshot` — versioned, checksummed, atomically-written cache
//!   snapshots (internal; driven by [`shared`])
//! - [`server`] — bounded line reader, worker pool, stdio/TCP loops
//!
//! Telemetry: `serve_*` counters (requests, errors, panics, cache
//! hit/miss/eviction/quarantine, stage hit/miss, shed, conn_errors,
//! deadline_exceeded, snapshot saves/restores), `serve_request_nanos`
//! plus cold/hot latency histograms, a `UnitScope` per request, and —
//! when a journal is installed — one `unit_summary` event per request
//! plus `slow_request` events past the `--slowlog-ms` threshold. The
//! `metrics` and `slowlog` methods (and the `--metrics-listen` HTTP
//! responder) expose the live windowed view; see [`metrics`].

// The daemon's request path must never panic on user input; unwrap and
// expect are banned outside test modules (each test module opts back in
// explicitly). verify.sh runs clippy with these as hard errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod hash;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;
pub mod shared;
mod snapshot;

pub use cache::{CacheConfig, CacheStats, LruCache};
pub use metrics::{LiveMetrics, RequestOutcome};
pub use proto::{ErrorCode, Method, Request, RequestInput};
pub use server::{serve_listener, serve_stdio, serve_stream, serve_tcp};
pub use session::{Reply, ServeConfig, ServeFault, Session};
pub use shared::SharedSession;
