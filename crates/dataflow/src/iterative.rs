//! The classical worklist (iterative) solver.

use pst_cfg::{Cfg, Dfs, NodeId};

use crate::{Confluence, DataflowProblem, Flow, Solution};

/// Solves `problem` over `cfg` by worklist iteration to the least (union)
/// or greatest (intersection) fixed point.
///
/// Nodes are seeded in reverse postorder of the flow direction, the order
/// that minimizes iteration count on reducible graphs.
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_dataflow::{solve_iterative, ReachingDefinitions};
/// let p = parse_program("fn f(n) { x = 1; if (n) { x = 2; } return x; }").unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let rd = ReachingDefinitions::new(&l);
/// let sol = solve_iterative(&l.cfg, &rd);
/// // Both definitions of x reach the exit block's entry.
/// let x = l.var_id("x").unwrap();
/// let reaching = rd.reaching_defs_of_var(sol.value_in(l.cfg.exit()), x);
/// assert_eq!(reaching.len(), 2);
/// ```
pub fn solve_iterative(cfg: &Cfg, problem: &impl DataflowProblem) -> Solution {
    let _span = pst_obs::Span::enter("dataflow_iterative");
    let graph = cfg.graph();
    let n = graph.node_count();
    type FlowPreds = fn(&pst_cfg::Graph, NodeId) -> Vec<NodeId>;
    let (root, flow_preds): (NodeId, FlowPreds) =
        match problem.flow() {
            Flow::Forward => (cfg.entry(), |g, v| g.predecessors(v).collect()),
            Flow::Backward => (cfg.exit(), |g, v| g.successors(v).collect()),
        };

    let mut inp: Vec<_> = (0..n).map(|_| problem.top()).collect();
    let mut out: Vec<_> = (0..n).map(|_| problem.top()).collect();
    inp[root.index()] = problem.boundary();
    {
        let mut v = problem.boundary();
        problem.transfer(root).apply(&mut v);
        out[root.index()] = v;
    }

    // Iteration order: reverse postorder in flow direction.
    let order: Vec<NodeId> = match problem.flow() {
        Flow::Forward => Dfs::new(graph, cfg.entry()).reverse_postorder(),
        Flow::Backward => {
            let mut o = Dfs::new(&graph.reversed(), cfg.exit()).reverse_postorder();
            if o.len() != n {
                // Defensive: a valid Cfg always reaches everything.
                o = graph.nodes().collect();
            }
            o
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            if node == root {
                continue;
            }
            pst_obs::counter!("dataflow_node_visits");
            let preds = flow_preds(graph, node);
            let mut meet = match problem.confluence() {
                Confluence::Union => {
                    let mut m = crate::BitSet::new(problem.universe());
                    for p in &preds {
                        m.union(&out[p.index()]);
                    }
                    m
                }
                Confluence::Intersection => {
                    let mut m = problem.top();
                    for p in &preds {
                        m.intersect(&out[p.index()]);
                    }
                    m
                }
            };
            if meet != inp[node.index()] {
                inp[node.index()] = meet.clone();
                changed = true;
            }
            problem.transfer(node).apply(&mut meet);
            if meet != out[node.index()] {
                out[node.index()] = meet;
                changed = true;
            }
        }
    }
    Solution { inp, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitSet, GenKill};
    use pst_cfg::parse_edge_list;

    /// A toy forward union problem with explicit transfer table.
    struct Toy {
        transfers: Vec<GenKill>,
        universe: usize,
        flow: Flow,
        confluence: Confluence,
        boundary: BitSet,
    }

    impl DataflowProblem for Toy {
        fn flow(&self) -> Flow {
            self.flow
        }
        fn confluence(&self) -> Confluence {
            self.confluence
        }
        fn universe(&self) -> usize {
            self.universe
        }
        fn boundary(&self) -> BitSet {
            self.boundary.clone()
        }
        fn transfer(&self, node: NodeId) -> &GenKill {
            &self.transfers[node.index()]
        }
    }

    fn toy(
        cfg_desc: &str,
        gens: &[(usize, usize)],
        kills: &[(usize, usize)],
    ) -> (pst_cfg::Cfg, Toy) {
        let cfg = parse_edge_list(cfg_desc).unwrap();
        let u = 8;
        let mut transfers: Vec<GenKill> = (0..cfg.node_count())
            .map(|_| GenKill::identity(u))
            .collect();
        for &(n, b) in gens {
            transfers[n].gen.insert(b);
        }
        for &(n, b) in kills {
            transfers[n].kill.insert(b);
        }
        let toy = Toy {
            transfers,
            universe: u,
            flow: Flow::Forward,
            confluence: Confluence::Union,
            boundary: BitSet::new(u),
        };
        (cfg, toy)
    }

    #[test]
    fn facts_flow_down_a_chain() {
        let (cfg, p) = toy("0->1 1->2", &[(0, 3)], &[]);
        let sol = solve_iterative(&cfg, &p);
        assert!(sol.value_in(NodeId::from_index(2)).contains(3));
    }

    #[test]
    fn kill_stops_a_fact() {
        let (cfg, p) = toy("0->1 1->2", &[(0, 3)], &[(1, 3)]);
        let sol = solve_iterative(&cfg, &p);
        assert!(sol.value_in(NodeId::from_index(1)).contains(3));
        assert!(!sol.value_in(NodeId::from_index(2)).contains(3));
    }

    #[test]
    fn union_merges_branches() {
        let (cfg, p) = toy("0->1 0->2 1->3 2->3", &[(1, 1), (2, 2)], &[]);
        let sol = solve_iterative(&cfg, &p);
        let at3 = sol.value_in(NodeId::from_index(3));
        assert!(at3.contains(1) && at3.contains(2));
    }

    #[test]
    fn intersection_requires_both_branches() {
        let (cfg, mut p) = toy(
            "0->1 0->2 1->3 2->3",
            &[(1, 1), (2, 2), (1, 5), (2, 5)],
            &[],
        );
        p.confluence = Confluence::Intersection;
        let sol = solve_iterative(&cfg, &p);
        let at3 = sol.value_in(NodeId::from_index(3));
        assert!(!at3.contains(1) && !at3.contains(2));
        assert!(at3.contains(5));
    }

    #[test]
    fn loop_reaches_fixed_point() {
        let (cfg, p) = toy("0->1 1->2 2->1 1->3", &[(2, 7)], &[]);
        let sol = solve_iterative(&cfg, &p);
        // The fact generated in the loop body reaches the header and exit.
        assert!(sol.value_in(NodeId::from_index(1)).contains(7));
        assert!(sol.value_in(NodeId::from_index(3)).contains(7));
        assert!(!sol.value_in(NodeId::from_index(0)).contains(7));
    }

    #[test]
    fn backward_flow() {
        let (cfg, mut p) = toy("0->1 1->2", &[(2, 4)], &[]);
        p.flow = Flow::Backward;
        let sol = solve_iterative(&cfg, &p);
        // Backward: the fact generated at node 2 flows toward node 0.
        assert!(sol.value_in(NodeId::from_index(0)).contains(4));
    }
}
