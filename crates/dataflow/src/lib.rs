//! Data-flow analysis for the Program Structure Tree workspace.
//!
//! Reproduces the paper's §6.2: a bit-vector monotone framework with three
//! solution strategies whose results are identical (asserted by tests) but
//! whose costs differ:
//!
//! * [`solve_iterative`] — the classical worklist solver (the baseline);
//! * [`solve_elimination`] — two-phase elimination over the PST: regions
//!   are summarized bottom-up into entry→exit transfer functions, then
//!   values propagate top-down (exploiting *global and local structure*);
//! * [`Qpg`] — the quick propagation graph: for sparse problem instances
//!   (e.g. [`SingleVariableReachingDefs`]), SESE regions whose nodes all
//!   have identity transfers are bypassed wholesale, and the tiny residual
//!   graph is solved instead (exploiting *sparsity*; the paper reports
//!   QPGs under 10 % of the CFG's size on average).
//!
//! Problems provided: [`ReachingDefinitions`], [`LiveVariables`],
//! [`DefiniteAssignment`], [`SingleVariableReachingDefs`],
//! [`AvailableExpressions`], [`VeryBusyExpressions`].
//!
//! # Examples
//!
//! ```
//! use pst_lang::{parse_program, lower_function};
//! use pst_core::ProgramStructureTree;
//! use pst_dataflow::{Qpg, SingleVariableReachingDefs, solve_iterative};
//!
//! let p = parse_program(
//!     "fn f(a) { x = 1; while (a) { y = y + 1; a = a - 1; } x = x + y; return x; }"
//! ).unwrap();
//! let l = lower_function(&p.functions[0]).unwrap();
//! let pst = ProgramStructureTree::build(&l.cfg);
//! let x = l.var_id("x").unwrap();
//! let problem = SingleVariableReachingDefs::new(&l, x);
//! let qpg = Qpg::build(&l.cfg, &pst, &problem).unwrap();
//! assert!(qpg.node_count() < l.cfg.node_count()); // the loop is bypassed
//! assert_eq!(qpg.solve(&l.cfg, &pst, &problem).unwrap(), solve_iterative(&l.cfg, &problem));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod elimination;
mod expressions;
mod framework;
mod intervals;
mod iterative;
mod problems;
mod qpg;
mod seg;

pub use bitset::BitSet;
pub use elimination::{solve_elimination, solve_elimination_unchecked};
pub use expressions::{AvailableExpressions, ExpressionTable, VeryBusyExpressions};
pub use framework::{Confluence, DataflowProblem, Flow, GenKill, Solution, SolverError};
pub use intervals::{derived_sequence, solve_intervals, solve_intervals_unchecked, DerivedSequence};
pub use iterative::solve_iterative;
pub use problems::{
    DefSite, DefiniteAssignment, LiveVariables, ReachingDefinitions, SingleVariableReachingDefs,
};
pub use qpg::{Qpg, QpgContext, QpgError};
pub use seg::Seg;
