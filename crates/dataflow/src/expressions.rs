//! Expression-level data-flow problems: available expressions (forward
//! must) and very busy expressions (backward must).
//!
//! Facts are the *pure, non-trivial* right-hand sides of the program,
//! identified by their canonical rendering
//! ([`pst_lang::StmtInfo::expr_key`]). These are the classical
//! intersection problems of optimizing compilers (common-subexpression
//! elimination and code hoisting), and they exercise the
//! [`Confluence::Intersection`] paths of all three solvers.

use std::collections::HashMap;

use pst_cfg::NodeId;
use pst_lang::{LoweredFunction, VarId};

use crate::{BitSet, Confluence, DataflowProblem, Flow, GenKill};

/// The expression universe of a function: canonical keys plus, per
/// expression, the set of operand variables.
#[derive(Clone, Debug)]
pub struct ExpressionTable {
    keys: Vec<String>,
    index: HashMap<String, usize>,
    /// `operands[e]` = variables the expression reads.
    operands: Vec<Vec<VarId>>,
    /// `using[v]` = expressions that read variable `v`, as a bit set.
    using: Vec<BitSet>,
}

impl ExpressionTable {
    /// Collects every keyed expression of `function`.
    pub fn new(function: &LoweredFunction) -> Self {
        let mut keys: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut operands: Vec<Vec<VarId>> = Vec::new();
        for block in &function.blocks {
            for s in &block.stmts {
                let Some(key) = &s.expr_key else { continue };
                if !index.contains_key(key) {
                    index.insert(key.clone(), keys.len());
                    keys.push(key.clone());
                    operands.push(s.uses.clone());
                }
            }
        }
        let universe = keys.len();
        let mut using: Vec<BitSet> = (0..function.var_count())
            .map(|_| BitSet::new(universe))
            .collect();
        for (e, ops) in operands.iter().enumerate() {
            for &v in ops {
                using[v.index()].insert(e);
            }
        }
        ExpressionTable {
            keys,
            index,
            operands,
            using,
        }
    }

    /// Number of distinct expressions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the function has no keyed expressions.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Canonical key of fact `e`.
    pub fn key(&self, e: usize) -> &str {
        &self.keys[e]
    }

    /// Fact id of a canonical key.
    pub fn fact_of(&self, key: &str) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Operand variables of fact `e`.
    pub fn operands(&self, e: usize) -> &[VarId] {
        &self.operands[e]
    }
}

/// Available expressions: `e` is available at a point iff every path from
/// the entry evaluates `e` after the last definition of any of its
/// operands.
#[derive(Clone, Debug)]
pub struct AvailableExpressions {
    table: ExpressionTable,
    transfers: Vec<GenKill>,
}

impl AvailableExpressions {
    /// Builds the problem for `function`.
    pub fn new(function: &LoweredFunction) -> Self {
        let table = ExpressionTable::new(function);
        let universe = table.len();
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                for s in &function.blocks[node.index()].stmts {
                    // The RHS is evaluated first…
                    if let Some(key) = &s.expr_key {
                        let e = table.fact_of(key).expect("expression interned");
                        gen.insert(e);
                        kill.remove(e);
                    }
                    // …then the definition takes effect, invalidating
                    // every expression reading the defined variable.
                    if let Some(d) = s.def {
                        let invalidated = &table.using[d.index()];
                        gen.subtract(invalidated);
                        kill.union(invalidated);
                    }
                }
                GenKill { gen, kill }
            })
            .collect();
        AvailableExpressions { table, transfers }
    }

    /// The expression universe.
    pub fn table(&self) -> &ExpressionTable {
        &self.table
    }
}

impl DataflowProblem for AvailableExpressions {
    fn flow(&self) -> Flow {
        Flow::Forward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Intersection
    }
    fn universe(&self) -> usize {
        self.table.len()
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.table.len()) // nothing available before the entry
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

/// Very busy (anticipated) expressions: `e` is very busy at a point iff
/// every path from it evaluates `e` before any operand is redefined —
/// the enabling analysis for code hoisting.
#[derive(Clone, Debug)]
pub struct VeryBusyExpressions {
    table: ExpressionTable,
    transfers: Vec<GenKill>,
}

impl VeryBusyExpressions {
    /// Builds the problem for `function`.
    pub fn new(function: &LoweredFunction) -> Self {
        let table = ExpressionTable::new(function);
        let universe = table.len();
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                // Reverse scan: a computation earlier in the block
                // anticipates the expression even if a later statement
                // redefines an operand.
                for s in function.blocks[node.index()].stmts.iter().rev() {
                    if let Some(d) = s.def {
                        let invalidated = &table.using[d.index()];
                        gen.subtract(invalidated);
                        kill.union(invalidated);
                    }
                    if let Some(key) = &s.expr_key {
                        let e = table.fact_of(key).expect("expression interned");
                        gen.insert(e);
                    }
                }
                GenKill { gen, kill }
            })
            .collect();
        VeryBusyExpressions { table, transfers }
    }

    /// The expression universe.
    pub fn table(&self) -> &ExpressionTable {
        &self.table
    }
}

impl DataflowProblem for VeryBusyExpressions {
    fn flow(&self) -> Flow {
        Flow::Backward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Intersection
    }
    fn universe(&self) -> usize {
        self.table.len()
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.table.len()) // nothing anticipated after the exit
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_iterative;
    use pst_lang::{lower_function, parse_function_body};

    fn lowered(src: &str) -> LoweredFunction {
        lower_function(&parse_function_body(src).unwrap()).unwrap()
    }

    fn fact(table: &ExpressionTable, key: &str) -> usize {
        table
            .fact_of(key)
            .unwrap_or_else(|| panic!("no fact `{key}`"))
    }

    #[test]
    fn expression_on_both_arms_is_available_at_join() {
        let l = lowered("if (c) { x = a + b; } else { y = a + b; } z = a + b; return z;");
        let avail = AvailableExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &avail);
        let e = fact(avail.table(), "a + b");
        // The block computing z (after the join) sees a + b available.
        let z_block = l
            .cfg
            .graph()
            .nodes()
            .find(|&n| l.block_defines(n, l.var_id("z").unwrap()))
            .unwrap();
        assert!(sol.value_in(z_block).contains(e));
    }

    #[test]
    fn expression_on_one_arm_is_not_available() {
        let l = lowered("if (c) { x = a + b; } z = a + b; return z;");
        let avail = AvailableExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &avail);
        let e = fact(avail.table(), "a + b");
        let z_block = l
            .cfg
            .graph()
            .nodes()
            .find(|&n| l.block_defines(n, l.var_id("z").unwrap()))
            .unwrap();
        assert!(!sol.value_in(z_block).contains(e));
    }

    #[test]
    fn operand_redefinition_kills_availability() {
        let l = lowered("x = a + b; a = 1; z = a + b; return z;");
        let avail = AvailableExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &avail);
        let e = fact(avail.table(), "a + b");
        // Everything is one block: check the transfer directly — the
        // final computation re-generates availability at the block exit,
        // but the kill of `a = 1` is recorded.
        let t = avail.transfer(l.cfg.entry());
        assert!(t.gen.contains(e), "last computation wins");
        let l2 = lowered("x = a + b; a = 1; return a;");
        let avail2 = AvailableExpressions::new(&l2);
        let sol2 = solve_iterative(&l2.cfg, &avail2);
        let e2 = fact(avail2.table(), "a + b");
        assert!(!sol2.value_in(l2.cfg.exit()).contains(e2));
        let _ = sol;
    }

    #[test]
    fn loop_invariant_expression_is_available_in_loop() {
        let l = lowered("x = a + b; while (n > 0) { y = a + b; n = n - 1; } return y;");
        let avail = AvailableExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &avail);
        let e = fact(avail.table(), "a + b");
        // Available at the exit: computed before the loop, never killed.
        assert!(sol.value_in(l.cfg.exit()).contains(e));
    }

    #[test]
    fn very_busy_expression_on_both_arms() {
        // Classic hoisting example: both arms evaluate b - a.
        let l = lowered("if (c) { x = b - a; } else { y = b - a; } return x + y;");
        let vb = VeryBusyExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &vb);
        let e = fact(vb.table(), "b - a");
        // Very busy at the entry (the branch precedes both evaluations).
        assert!(sol.value_in(l.cfg.entry()).contains(e));
    }

    #[test]
    fn redefinition_blocks_anticipation() {
        let l = lowered("if (c) { a = 1; x = b - a; } else { y = b - a; } return x + y;");
        let vb = VeryBusyExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &vb);
        let e = fact(vb.table(), "b - a");
        // On the then-arm, `a` is redefined before the evaluation.
        assert!(!sol.value_in(l.cfg.entry()).contains(e));
    }

    #[test]
    fn computation_before_redefinition_still_anticipates() {
        let l = lowered("x = b - a; a = 1; return x;");
        let vb = VeryBusyExpressions::new(&l);
        let sol = solve_iterative(&l.cfg, &vb);
        let e = fact(vb.table(), "b - a");
        // Backward problem: the value at the block's *start* (CFG order)
        // is the flow-order out value.
        assert!(sol.value_out(l.cfg.entry()).contains(e));
        // …and at the block's end the redefinition has made it cold.
        assert!(!sol.value_in(l.cfg.entry()).contains(e));
    }

    #[test]
    fn empty_table_is_fine() {
        let l = lowered("x = 1; y = f(x); return y;");
        let avail = AvailableExpressions::new(&l);
        assert!(avail.table().is_empty());
        let sol = solve_iterative(&l.cfg, &avail);
        assert!(sol.value_in(l.cfg.exit()).is_empty());
    }
}
