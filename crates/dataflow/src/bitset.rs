//! A fixed-universe bit set for bit-vector data-flow analysis.

/// A set over a fixed universe `0..len`, packed 64 facts per word.
///
/// # Examples
///
/// ```
/// use pst_dataflow::BitSet;
/// let mut a = BitSet::new(130);
/// a.insert(0);
/// a.insert(129);
/// let mut b = BitSet::new(130);
/// b.insert(129);
/// assert!(a.is_superset(&b));
/// a.subtract(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a full set over the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Adds `bit`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} outside universe {}", self.len);
        let w = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `bit`.
    pub fn remove(&mut self, bit: usize) {
        assert!(bit < self.len);
        self.words[bit / 64] &= !(1u64 << (bit % 64));
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.len && self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`; returns whether `self` changed.
    pub fn union(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns whether `self` changed.
    pub fn intersect(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∖= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Applies a gen/kill transfer: `self = gen ∪ (self ∖ kill)`.
    pub fn apply(&mut self, gen: &BitSet, kill: &BitSet) {
        self.subtract(kill);
        self.union(gen);
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects bits into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(63));
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(65));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_respects_universe_boundary() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(!s.contains(70));
        let e = BitSet::full(0);
        assert!(e.is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1usize, 3, 5].into_iter().collect();
        // Align universes manually.
        let mut b = BitSet::new(6);
        b.insert(3);
        b.insert(4);
        let mut u = a.clone();
        assert!(u.union(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        assert!(!u.union(&b));
        let mut i = a.clone();
        assert!(i.intersect(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn superset() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect();
        let mut b = BitSet::new(4);
        b.insert(2);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert!(a.is_superset(&a.clone()));
    }

    #[test]
    fn gen_kill_application() {
        let mut x: BitSet = [0usize, 1, 2].into_iter().collect();
        let mut gen = BitSet::new(3);
        gen.insert(1);
        let mut kill = BitSet::new(3);
        kill.insert(0);
        kill.insert(1);
        x.apply(&gen, &kill);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }
}
