//! Quick propagation graphs (paper §6.2): sparse data-flow analysis by
//! bypassing transparent SESE regions.
//!
//! For a given problem instance, a SESE region is *transparent* when every
//! node inside has the identity transfer function. Bypassing such regions
//! cannot change the solution: all flow enters through the single entry
//! edge and leaves through the single exit edge unchanged. The QPG keeps
//! only the nodes outside maximal transparent regions and replaces each
//! bypassed stretch with a single edge labelled by its `(first, last)` CFG
//! edge pair; the paper reports QPGs averaging under 10 % of the
//! statement-level CFG.

use std::collections::HashMap;

use pst_cfg::{Cfg, EdgeId, Graph, NodeId, ValidateCfgError};
use pst_core::{ProgramStructureTree, RegionId};

use crate::{solve_iterative, Confluence, DataflowProblem, Flow, GenKill, Solution};

/// Why QPG construction or solving failed.
///
/// Every variant indicates an inconsistency between the CFG and the PST
/// it was allegedly built from (or corrupted QPG bookkeeping) — not bad
/// user input per se, but conditions a driver should report rather than
/// die on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QpgError {
    /// A canonical region of the PST is missing its boundary edges — the
    /// tree does not belong to this CFG.
    MissingRegionBounds(RegionId),
    /// Traversal bookkeeping lost a node it should have kept (e.g. the
    /// CFG exit resolved to no QPG node).
    DetachedNode(NodeId),
    /// The bypassed graph failed CFG validation.
    InvalidQpg(ValidateCfgError),
}

impl std::fmt::Display for QpgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpgError::MissingRegionBounds(r) => {
                write!(f, "PST region {r} has no boundary edges in this CFG")
            }
            QpgError::DetachedNode(n) => {
                write!(f, "CFG node {} has no QPG counterpart", n.index())
            }
            QpgError::InvalidQpg(e) => write!(f, "bypassed graph is not a valid CFG: {e}"),
        }
    }
}

impl std::error::Error for QpgError {}

/// A quick propagation graph for one problem instance.
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_core::ProgramStructureTree;
/// use pst_dataflow::{Qpg, SingleVariableReachingDefs, solve_iterative};
/// let p = parse_program(
///     "fn f(a) { x = 1; while (a) { y = y + 1; } x = x + 1; return x; }"
/// ).unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let pst = ProgramStructureTree::build(&l.cfg);
/// let x = l.var_id("x").unwrap();
/// let problem = SingleVariableReachingDefs::new(&l, x);
/// let qpg = Qpg::build(&l.cfg, &pst, &problem).unwrap();
/// // The loop (which never touches x) is bypassed.
/// assert!(qpg.node_count() < l.cfg.node_count());
/// assert_eq!(
///     qpg.solve(&l.cfg, &pst, &problem).unwrap(),
///     solve_iterative(&l.cfg, &problem),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Qpg {
    graph: Graph,
    entry: NodeId,
    exit: NodeId,
    /// QPG node → CFG node.
    cfg_of: Vec<NodeId>,
    /// CFG node → QPG node (None for bypassed nodes).
    qpg_of: Vec<Option<NodeId>>,
    /// QPG edge → `(first, last)` CFG edge of the stretch it stands for.
    edge_span: Vec<(EdgeId, EdgeId)>,
    /// Bypassed maximal regions with the QPG nodes delimiting them:
    /// `(region, cfg source node, cfg target node)`.
    bypassed: Vec<(RegionId, NodeId, NodeId)>,
}

impl Qpg {
    /// Builds the QPG of `problem` over `cfg` using `pst` for bypassing.
    pub fn build(
        cfg: &Cfg,
        pst: &ProgramStructureTree,
        problem: &impl DataflowProblem,
    ) -> Result<Self, QpgError> {
        Self::build_from_transparency(cfg, pst, &|n| problem.is_transparent(n))
    }

    /// [`build`](Self::build) for hot paths that have already validated
    /// the CFG/PST pair (benchmarks, the pipeline tests).
    ///
    /// # Panics
    ///
    /// Panics where `build` would return an error.
    pub fn build_unchecked(
        cfg: &Cfg,
        pst: &ProgramStructureTree,
        problem: &impl DataflowProblem,
    ) -> Self {
        Self::build(cfg, pst, problem).expect("CFG/PST pair is consistent")
    }

    /// Builds the QPG from an arbitrary transparency predicate.
    pub fn build_from_transparency(
        cfg: &Cfg,
        pst: &ProgramStructureTree,
        transparent: &dyn Fn(NodeId) -> bool,
    ) -> Result<Self, QpgError> {
        let _span = pst_obs::Span::enter("qpg_build");
        let graph = cfg.graph();
        // Mark regions containing a non-transparent node (leaf-up).
        let mut marked = vec![false; pst.region_count()];
        for n in graph.nodes() {
            if !transparent(n) {
                let mut r = Some(pst.region_of_node(n));
                while let Some(region) = r {
                    if marked[region.index()] {
                        break;
                    }
                    marked[region.index()] = true;
                    r = pst.parent(region);
                }
            }
        }
        // Region entered by each edge, if any.
        let mut region_by_entry: HashMap<EdgeId, RegionId> = HashMap::new();
        let mut exit_by_region: Vec<Option<EdgeId>> = vec![None; pst.region_count()];
        for r in pst.regions().skip(1) {
            let b = pst.bounds(r).ok_or(QpgError::MissingRegionBounds(r))?;
            region_by_entry.insert(b.entry, r);
            exit_by_region[r.index()] = Some(b.exit);
        }
        Self::traverse(
            cfg,
            &marked,
            |e| region_by_entry.get(&e).copied(),
            |r| exit_by_region[r.index()].ok_or(QpgError::MissingRegionBounds(r)),
        )
    }

    /// Core traversal: skips maximal unmarked regions.
    fn traverse(
        cfg: &Cfg,
        marked: &[bool],
        region_entered: impl Fn(EdgeId) -> Option<RegionId>,
        exit_edge: impl Fn(RegionId) -> Result<EdgeId, QpgError>,
    ) -> Result<Self, QpgError> {
        let graph = cfg.graph();
        let mut qpg_graph = Graph::new();
        let mut cfg_of: Vec<NodeId> = Vec::new();
        let mut qpg_of: Vec<Option<NodeId>> = vec![None; graph.node_count()];
        let mut edge_span: Vec<(EdgeId, EdgeId)> = Vec::new();
        let mut bypassed: Vec<(RegionId, NodeId, NodeId)> = Vec::new();

        let keep = |n: NodeId,
                    qpg_graph: &mut Graph,
                    cfg_of: &mut Vec<NodeId>,
                    qpg_of: &mut Vec<Option<NodeId>>| {
            if let Some(q) = qpg_of[n.index()] {
                (q, false)
            } else {
                let q = qpg_graph.add_node();
                cfg_of.push(n);
                qpg_of[n.index()] = Some(q);
                (q, true)
            }
        };

        let (entry_q, _) = keep(cfg.entry(), &mut qpg_graph, &mut cfg_of, &mut qpg_of);
        let mut work = vec![cfg.entry()];
        while let Some(u) = work.pop() {
            let uq = qpg_of[u.index()].ok_or(QpgError::DetachedNode(u))?;
            for &e in graph.out_edges(u) {
                let mut last = e;
                let mut hops: Vec<RegionId> = Vec::new();
                while let Some(r) = region_entered(last) {
                    if marked[r.index()] {
                        break;
                    }
                    hops.push(r);
                    last = exit_edge(r)?;
                }
                let target = graph.target(last);
                let (tq, fresh) = keep(target, &mut qpg_graph, &mut cfg_of, &mut qpg_of);
                qpg_graph.add_edge(uq, tq);
                edge_span.push((e, last));
                for r in hops {
                    bypassed.push((r, u, target));
                }
                if fresh {
                    work.push(target);
                }
            }
        }

        let exit_q = qpg_of[cfg.exit().index()].ok_or(QpgError::DetachedNode(cfg.exit()))?;
        Ok(Qpg {
            graph: qpg_graph,
            entry: entry_q,
            exit: exit_q,
            cfg_of,
            qpg_of,
            edge_span,
            bypassed,
        })
    }

    /// Number of QPG nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of QPG edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// QPG size relative to the block-level CFG node count.
    pub fn node_ratio(&self, cfg: &Cfg) -> f64 {
        self.node_count() as f64 / cfg.node_count() as f64
    }

    /// The CFG node a QPG node stands for.
    pub fn cfg_node(&self, q: NodeId) -> NodeId {
        self.cfg_of[q.index()]
    }

    /// The QPG node of a kept CFG node.
    pub fn qpg_node(&self, n: NodeId) -> Option<NodeId> {
        self.qpg_of[n.index()]
    }

    /// The `(first, last)` CFG edges a QPG edge spans.
    pub fn span(&self, e: EdgeId) -> (EdgeId, EdgeId) {
        self.edge_span[e.index()]
    }

    /// The maximal transparent regions that were bypassed.
    pub fn bypassed_regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.bypassed.iter().map(|&(r, _, _)| r)
    }

    /// Solves `problem` on the QPG and projects the solution back onto the
    /// full CFG (paper §6.2, step 4). `pst` must be the tree the QPG was
    /// built from.
    ///
    /// The result equals [`solve_iterative`] on the full graph; the
    /// property tests assert this.
    pub fn solve<P: DataflowProblem>(
        &self,
        cfg: &Cfg,
        pst: &ProgramStructureTree,
        problem: &P,
    ) -> Result<Solution, QpgError> {
        self.solve_with(cfg, problem, &|r| pst.all_nodes(r))
    }

    /// [`solve`](Self::solve) for hot paths that have already validated
    /// the CFG/PST pair.
    ///
    /// # Panics
    ///
    /// Panics where `solve` would return an error.
    pub fn solve_unchecked<P: DataflowProblem>(
        &self,
        cfg: &Cfg,
        pst: &ProgramStructureTree,
        problem: &P,
    ) -> Solution {
        self.solve(cfg, pst, problem)
            .expect("CFG/PST pair is consistent")
    }

    /// Solve with a caller-supplied region-membership provider (used by
    /// [`QpgContext`] to avoid recomputing node lists per instance).
    fn solve_with<P: DataflowProblem>(
        &self,
        cfg: &Cfg,
        problem: &P,
        region_nodes: &dyn Fn(RegionId) -> Vec<NodeId>,
    ) -> Result<Solution, QpgError> {
        // Solve on the QPG viewed as a CFG of its own.
        let qpg_cfg = Cfg::from_graph(self.graph.clone(), self.entry, self.exit)
            .map_err(QpgError::InvalidQpg)?;
        let wrapper = QpgProblem {
            inner: problem,
            cfg_of: &self.cfg_of,
        };
        let qsol = solve_iterative(&qpg_cfg, &wrapper);

        // Project back.
        let n = cfg.node_count();
        let mut inp: Vec<_> = (0..n).map(|_| problem.top()).collect();
        let mut out: Vec<_> = (0..n).map(|_| problem.top()).collect();
        for (qi, &cn) in self.cfg_of.iter().enumerate() {
            inp[cn.index()] = qsol.inp[qi].clone();
            out[cn.index()] = qsol.out[qi].clone();
        }
        // Nodes inside a bypassed region all carry the value of the
        // stretch that jumped over them.
        for &(region, src, dst) in &self.bypassed {
            let value = match problem.flow() {
                Flow::Forward => {
                    let q = self.qpg_of[src.index()].ok_or(QpgError::DetachedNode(src))?;
                    qsol.out[q.index()].clone()
                }
                Flow::Backward => {
                    let q = self.qpg_of[dst.index()].ok_or(QpgError::DetachedNode(dst))?;
                    qsol.inp[q.index()].clone()
                }
            };
            for node in region_nodes(region) {
                inp[node.index()] = value.clone();
                out[node.index()] = value.clone();
            }
        }
        Ok(Solution { inp, out })
    }
}

/// Amortized state for building and solving many QPGs over one CFG/PST
/// pair — the per-variable workload of the paper's §6.2 evaluation.
///
/// Holds the entry-edge → region map and per-region node lists so that a
/// single-variable instance costs time proportional to the QPG, not to the
/// whole CFG (the paper: "the marking step can be done in time
/// proportional to the number of marked regions if we know the location of
/// the non-identity transfer functions").
#[derive(Clone, Debug)]
pub struct QpgContext<'a> {
    cfg: &'a Cfg,
    pst: &'a ProgramStructureTree,
    /// Region entered by each CFG edge, if any.
    region_by_entry: Vec<Option<RegionId>>,
    /// Exit edge per canonical region (`None` for the root).
    exit_by_region: Vec<Option<EdgeId>>,
    /// All nodes (at any depth) per region.
    all_nodes: Vec<Vec<NodeId>>,
}

impl<'a> QpgContext<'a> {
    /// Precomputes the shared lookup tables.
    pub fn new(cfg: &'a Cfg, pst: &'a ProgramStructureTree) -> Result<Self, QpgError> {
        let mut region_by_entry = vec![None; cfg.edge_count()];
        let mut exit_by_region = vec![None; pst.region_count()];
        for r in pst.regions().skip(1) {
            let b = pst.bounds(r).ok_or(QpgError::MissingRegionBounds(r))?;
            region_by_entry[b.entry.index()] = Some(r);
            exit_by_region[r.index()] = Some(b.exit);
        }
        // Per-region node lists, accumulated bottom-up.
        let mut all_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); pst.region_count()];
        for n in cfg.graph().nodes() {
            all_nodes[pst.region_of_node(n).index()].push(n);
        }
        let mut order: Vec<RegionId> = pst.regions().collect();
        order.sort_by_key(|&r| std::cmp::Reverse(pst.depth(r)));
        for r in order {
            if let Some(p) = pst.parent(r) {
                let mine = all_nodes[r.index()].clone();
                all_nodes[p.index()].extend(mine);
            }
        }
        Ok(QpgContext {
            cfg,
            pst,
            region_by_entry,
            exit_by_region,
            all_nodes,
        })
    }

    /// Builds the QPG for an instance whose non-transparent nodes are
    /// exactly `sites`.
    pub fn build_from_sites(&self, sites: &[NodeId]) -> Result<Qpg, QpgError> {
        let _span = pst_obs::Span::enter("qpg_build");
        let mut marked = vec![false; self.pst.region_count()];
        for &n in sites {
            let mut r = Some(self.pst.region_of_node(n));
            while let Some(region) = r {
                if marked[region.index()] {
                    break;
                }
                marked[region.index()] = true;
                r = self.pst.parent(region);
            }
        }
        Qpg::traverse(
            self.cfg,
            &marked,
            |e| self.region_by_entry[e.index()],
            |r| self.exit_by_region[r.index()].ok_or(QpgError::MissingRegionBounds(r)),
        )
    }

    /// Solves `problem` on `qpg` and projects back, using the cached
    /// region-node lists.
    pub fn solve<P: DataflowProblem>(
        &self,
        qpg: &Qpg,
        problem: &P,
    ) -> Result<Solution, QpgError> {
        let _span = pst_obs::Span::enter("qpg_solve");
        qpg.solve_with(self.cfg, problem, &|r: RegionId| {
            self.all_nodes[r.index()].clone()
        })
    }
}

struct QpgProblem<'p, P: DataflowProblem> {
    inner: &'p P,
    cfg_of: &'p [NodeId],
}

impl<P: DataflowProblem> DataflowProblem for QpgProblem<'_, P> {
    fn flow(&self) -> Flow {
        self.inner.flow()
    }
    fn confluence(&self) -> Confluence {
        self.inner.confluence()
    }
    fn universe(&self) -> usize {
        self.inner.universe()
    }
    fn boundary(&self) -> crate::BitSet {
        self.inner.boundary()
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        self.inner.transfer(self.cfg_of[node.index()])
    }
}
