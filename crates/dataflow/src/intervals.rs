//! Allen–Cocke interval analysis (paper §6.2's "classic approach to
//! elimination algorithms uses an interval decomposition").
//!
//! An *interval* `I(h)` with header `h` is the maximal single-entry
//! subgraph built by repeatedly absorbing nodes all of whose predecessors
//! already lie in the interval. Collapsing every interval to one node
//! yields the *derived graph*; iterating produces the derived sequence,
//! which ends in a single node exactly when the graph is reducible.
//!
//! [`solve_intervals`] runs the classical two-phase elimination over the
//! derived sequence for forward bit-vector problems. Precision note: the
//! algorithm carries **per-edge** transfer functions (value transported
//! from the source interval's *entry* to the edge target) rather than one
//! summary per collapsed node — merging exits into a single node function
//! would conflate paths and over-approximate may-analyses.
//!
//! The PST elimination solver subsumes this machinery (Theorem 10: SESE
//! regions of reducible graphs are reducible); the tests check that the
//! interval, PST and iterative solvers all agree.

use pst_cfg::Cfg;

use crate::{BitSet, Confluence, DataflowProblem, Flow, GenKill, Solution, SolverError};

/// One level of the derived sequence, as a graph with per-edge transfer
/// functions.
#[derive(Clone, Debug)]
struct Level {
    node_count: usize,
    entry: usize,
    /// `(source, target, F)`: the contribution to `target`'s in-value is
    /// `F(entry-value of source's interval)`. At level 0, `F` is simply
    /// the source node's transfer.
    edges: Vec<(usize, usize, GenKill)>,
    in_edges: Vec<Vec<usize>>,
    /// Interval id per node.
    interval_of: Vec<usize>,
    /// Members per interval, header first.
    intervals: Vec<Vec<usize>>,
}

/// Public view of the derived sequence (for tests and the curious).
#[derive(Clone, Debug)]
pub struct DerivedSequence {
    /// Interval count at each level, from the CFG upward.
    pub interval_counts: Vec<usize>,
    /// Whether the sequence collapsed to one node (⇔ the graph is
    /// reducible).
    pub reducible: bool,
}

/// Computes the derived sequence of `cfg` (structure only).
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_dataflow::derived_sequence;
/// let reducible = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// assert!(derived_sequence(&reducible).reducible);
/// let irreducible = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
/// assert!(!derived_sequence(&irreducible).reducible);
/// ```
pub fn derived_sequence(cfg: &Cfg) -> DerivedSequence {
    let dummy_universe = 0;
    let mut level = level_zero(cfg, &|_| GenKill::identity(dummy_universe));
    let mut interval_counts = Vec::new();
    loop {
        partition(&mut level);
        let k = level.intervals.len();
        interval_counts.push(k);
        if k == 1 {
            return DerivedSequence {
                interval_counts,
                reducible: true,
            };
        }
        if k == level.node_count {
            return DerivedSequence {
                interval_counts,
                reducible: false,
            };
        }
        level = derive(&level, Confluence::Union, dummy_universe);
    }
}

fn level_zero(cfg: &Cfg, transfer: &dyn Fn(pst_cfg::NodeId) -> GenKill) -> Level {
    let g = cfg.graph();
    let n = g.node_count();
    let mut edges = Vec::with_capacity(g.edge_count());
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        in_edges[v.index()].push(edges.len());
        edges.push((u.index(), v.index(), transfer(u)));
    }
    Level {
        node_count: n,
        entry: cfg.entry().index(),
        edges,
        in_edges,
        interval_of: Vec::new(),
        intervals: Vec::new(),
    }
}

/// Fills `interval_of` / `intervals` with the Allen–Cocke partition.
fn partition(level: &mut Level) {
    const NONE: usize = usize::MAX;
    let n = level.node_count;
    let mut interval_of = vec![NONE; n];
    let mut intervals: Vec<Vec<usize>> = Vec::new();
    let mut header_queue: Vec<usize> = vec![level.entry];
    let mut queued = vec![false; n];
    queued[level.entry] = true;

    while let Some(h) = header_queue.pop() {
        if interval_of[h] != NONE {
            continue;
        }
        let id = intervals.len();
        interval_of[h] = id;
        let mut members = vec![h];
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if interval_of[v] != NONE || v == level.entry || level.in_edges[v].is_empty() {
                    continue;
                }
                if level.in_edges[v]
                    .iter()
                    .all(|&e| interval_of[level.edges[e].0] == id)
                {
                    interval_of[v] = id;
                    members.push(v);
                    changed = true;
                }
            }
        }
        intervals.push(members);
        for v in 0..n {
            if interval_of[v] == NONE
                && !queued[v]
                && level.in_edges[v]
                    .iter()
                    .any(|&e| interval_of[level.edges[e].0] != NONE)
            {
                queued[v] = true;
                header_queue.push(v);
            }
        }
    }
    level.interval_of = interval_of;
    level.intervals = intervals;
}

/// In-values of an interval's members for a concrete entry value.
/// Iterates to the local fixed point (internal backedges reach only the
/// header).
fn interval_solve(
    level: &Level,
    interval: usize,
    entry_value: &BitSet,
    confluence: Confluence,
) -> Vec<BitSet> {
    let universe = entry_value.universe();
    let top = || match confluence {
        Confluence::Union => BitSet::new(universe),
        Confluence::Intersection => BitSet::full(universe),
    };
    let members = &level.intervals[interval];
    let header = members[0];
    // Dense position within the interval.
    let mut pos = std::collections::HashMap::new();
    for (i, &m) in members.iter().enumerate() {
        pos.insert(m, i);
    }
    let mut inp: Vec<BitSet> = members.iter().map(|_| top()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (i, &m) in members.iter().enumerate() {
            let mut meet = if m == header {
                entry_value.clone()
            } else {
                top()
            };
            for &ei in &level.in_edges[m] {
                let (src, _, f) = &level.edges[ei];
                let Some(&si) = pos.get(src) else {
                    continue; // external edge: only feeds the header via `entry_value`
                };
                let mut v = inp[si].clone();
                f.apply(&mut v);
                match confluence {
                    Confluence::Union => {
                        meet.union(&v);
                    }
                    Confluence::Intersection => {
                        meet.intersect(&v);
                    }
                }
            }
            if inp[i] != meet {
                inp[i] = meet;
                changed = true;
            }
        }
    }
    inp
}

/// Per-member transfer functions from the interval entry, via two solves.
fn member_functions(
    level: &Level,
    interval: usize,
    confluence: Confluence,
    universe: usize,
) -> Vec<GenKill> {
    let at_empty = interval_solve(level, interval, &BitSet::new(universe), confluence);
    let at_full = interval_solve(level, interval, &BitSet::full(universe), confluence);
    at_empty
        .into_iter()
        .zip(at_full)
        .map(|(gen, full)| {
            let mut kill = BitSet::full(universe);
            kill.subtract(&full);
            GenKill { gen, kill }
        })
        .collect()
}

/// Builds the next level: nodes = intervals; each crossing edge keeps its
/// own function, composed with the source member's entry→member function.
fn derive(level: &Level, confluence: Confluence, universe: usize) -> Level {
    let k = level.intervals.len();
    // Member functions per interval (indexed in member order).
    let fns: Vec<Vec<GenKill>> = (0..k)
        .map(|i| member_functions(level, i, confluence, universe))
        .collect();
    let mut member_pos: Vec<(usize, usize)> = vec![(0, 0); level.node_count];
    for (i, members) in level.intervals.iter().enumerate() {
        for (j, &m) in members.iter().enumerate() {
            member_pos[m] = (i, j);
        }
    }
    let mut edges = Vec::new();
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (src, dst, f) in &level.edges {
        let (si, sj) = member_pos[*src];
        let (di, _) = member_pos[*dst];
        if si == di {
            continue;
        }
        // entry(I_si) --g--> in(src) --f--> contribution to dst's header.
        let composed = f.compose_after(&fns[si][sj]);
        in_edges[di].push(edges.len());
        edges.push((si, di, composed));
    }
    Level {
        node_count: k,
        entry: member_pos[level.entry].0,
        edges,
        in_edges,
        interval_of: Vec::new(),
        intervals: Vec::new(),
    }
}

/// Solves a forward problem by interval elimination over the derived
/// sequence.
///
/// # Errors
///
/// Returns [`SolverError::BackwardUnsupported`] if `problem` is a backward
/// problem and [`SolverError::Irreducible`] if `cfg` is irreducible (the
/// classical method's precondition; the paper handles residual irreducible
/// regions by falling back to iteration — callers here can do the same
/// with [`solve_iterative`](crate::solve_iterative)).
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_dataflow::{solve_intervals, solve_iterative, ReachingDefinitions};
/// let p = parse_program(
///     "fn f(n) { x = 1; while (n > 0) { x = x + 1; n = n - 1; } return x; }"
/// ).unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let rd = ReachingDefinitions::new(&l);
/// assert_eq!(solve_intervals(&l.cfg, &rd).unwrap(), solve_iterative(&l.cfg, &rd));
/// ```
pub fn solve_intervals(
    cfg: &Cfg,
    problem: &impl DataflowProblem,
) -> Result<Solution, SolverError> {
    if problem.flow() != Flow::Forward {
        return Err(SolverError::BackwardUnsupported("interval elimination"));
    }
    let universe = problem.universe();
    let confluence = problem.confluence();

    // Phase 1: build and partition every level.
    let mut levels: Vec<Level> = Vec::new();
    let mut level = level_zero(cfg, &|n| problem.transfer(n).clone());
    loop {
        partition(&mut level);
        let k = level.intervals.len();
        let single = k == 1;
        let stuck = k == level.node_count && !single;
        if stuck {
            return Err(SolverError::Irreducible);
        }
        let next = if single {
            None
        } else {
            Some(derive(&level, confluence, universe))
        };
        levels.push(level);
        match next {
            Some(l) => level = l,
            None => break,
        }
    }

    // Phase 2: entry values top-down. At the top level there is a single
    // interval whose entry value is the boundary.
    let mut entries: Vec<BitSet> = vec![problem.boundary()];
    let mut node_values: Vec<BitSet> = Vec::new();
    for level in levels.iter().rev() {
        let mut values: Vec<BitSet> = vec![problem.top(); level.node_count];
        for (ii, members) in level.intervals.iter().enumerate() {
            let inp = interval_solve(level, ii, &entries[ii], confluence);
            for (&m, v) in members.iter().zip(inp) {
                values[m] = v;
            }
        }
        node_values = values.clone();
        // Node j of this level is interval j of the level below.
        entries = values;
    }

    // node_values now holds level-0 in-values.
    let inp: Vec<BitSet> = node_values;
    let out: Vec<BitSet> = cfg
        .graph()
        .nodes()
        .map(|v| {
            let mut x = inp[v.index()].clone();
            problem.transfer(v).apply(&mut x);
            x
        })
        .collect();
    Ok(Solution { inp, out })
}

/// [`solve_intervals`] for hot paths (benchmarks) that have already
/// checked the problem's direction and the graph's reducibility.
///
/// # Panics
///
/// Panics where [`solve_intervals`] would return an error.
pub fn solve_intervals_unchecked(cfg: &Cfg, problem: &impl DataflowProblem) -> Solution {
    solve_intervals(cfg, problem).expect("interval elimination preconditions hold")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_iterative, AvailableExpressions, DefiniteAssignment, ReachingDefinitions};
    use pst_lang::{lower_function, parse_function_body};

    fn check(src: &str) {
        let l = lower_function(&parse_function_body(src).unwrap()).unwrap();
        let rd = ReachingDefinitions::new(&l);
        assert_eq!(
            solve_intervals(&l.cfg, &rd).unwrap(),
            solve_iterative(&l.cfg, &rd),
            "reaching defs on {src}"
        );
        let da = DefiniteAssignment::new(&l);
        assert_eq!(
            solve_intervals(&l.cfg, &da).unwrap(),
            solve_iterative(&l.cfg, &da),
            "definite assignment on {src}"
        );
        let avail = AvailableExpressions::new(&l);
        assert_eq!(
            solve_intervals(&l.cfg, &avail).unwrap(),
            solve_iterative(&l.cfg, &avail),
            "available expressions on {src}"
        );
    }

    #[test]
    fn derived_sequence_of_chain_is_one_level() {
        let cfg = pst_cfg::parse_edge_list("0->1 1->2 2->3").unwrap();
        let seq = derived_sequence(&cfg);
        assert!(seq.reducible);
        assert_eq!(seq.interval_counts, vec![1]);
    }

    #[test]
    fn derived_sequence_of_loop_collapses_in_steps() {
        let cfg = pst_cfg::parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let seq = derived_sequence(&cfg);
        assert!(seq.reducible);
        assert!(seq.interval_counts.len() >= 2, "{:?}", seq.interval_counts);
    }

    #[test]
    fn irreducible_graph_detected() {
        let cfg = pst_cfg::parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
        assert!(!derived_sequence(&cfg).reducible);
    }

    #[test]
    fn matches_iterative_on_structured_programs() {
        check("x = 1; y = x + 1; return y;");
        check("if (c) { x = 1; } else { x = 2; } return x;");
        check("s = 0; while (n > 0) { s = s + n; n = n - 1; } return s;");
        check("for (i = 0; i < 9; i = i + 1) { if (i % 2 == 0) { s = s + i; } } return s;");
        check("do { n = n - 1; } while (n > 0); return n;");
        check("while (a) { while (b) { x = x + 1; } y = y + x; } return y;");
        check("switch (x) { case 0: { y = 1; } case 1: { y = 2; } default: { } } return y;");
    }

    #[test]
    fn distinct_exit_edges_stay_precise() {
        // Two different facts leave the first interval along different
        // edges; a single per-node summary would conflate them.
        check(
            "if (c) { a = 1; goto x; } b = 2;
             x:
             if (c) { z = a; } else { z = b; }
             return z;",
        );
    }

    #[test]
    fn rejects_irreducible_graphs() {
        let l = lower_function(
            &parse_function_body(
                "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
            )
            .unwrap(),
        )
        .unwrap();
        let rd = ReachingDefinitions::new(&l);
        assert_eq!(
            solve_intervals(&l.cfg, &rd),
            Err(crate::SolverError::Irreducible)
        );
    }

    #[test]
    fn rejects_backward_problems() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let lv = crate::LiveVariables::new(&l);
        assert_eq!(
            solve_intervals(&l.cfg, &lv),
            Err(crate::SolverError::BackwardUnsupported("interval elimination"))
        );
    }

    #[test]
    #[should_panic(expected = "preconditions")]
    fn unchecked_variant_panics_on_irreducible_graphs() {
        let l = lower_function(
            &parse_function_body(
                "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
            )
            .unwrap(),
        )
        .unwrap();
        let rd = ReachingDefinitions::new(&l);
        let _ = solve_intervals_unchecked(&l.cfg, &rd);
    }
}
