//! Sparse evaluation graphs (Choi, Cytron & Ferrante, POPL 1991).
//!
//! The paper's §6.3 compares its quick propagation graphs against SEGs:
//! "these graphs also bypass uninteresting regions of the control flow
//! graph and in general will be smaller than our quick propagation graphs.
//! However, they are more costly to build and it is unclear how to exploit
//! both sparsity and structure using SEGs, since their edges cross
//! interval (or SESE region) boundaries in an ad hoc manner."
//!
//! Implementing SEGs makes that trade-off measurable. A SEG for one
//! forward problem instance contains the entry, every node with a
//! non-identity transfer, and *meet nodes* at the iterated dominance
//! frontier of those; edges connect each SEG node to the SEG node whose
//! value reaches it (found with an SSA-renaming-style dominator-tree
//! walk). Values at all other CFG nodes are recovered by the same walk.

use pst_cfg::{Cfg, NodeId};
use pst_dominators::{
    dominance_frontiers, dominator_tree, iterated_dominance_frontier, Direction, DomTree,
};

use crate::{Confluence, DataflowProblem, Flow, Solution, SolverError};

/// A sparse evaluation graph for one forward problem instance.
#[derive(Clone, Debug)]
pub struct Seg {
    /// The SEG nodes (CFG node ids), sorted: entry + non-transparent
    /// nodes + meet nodes.
    nodes: Vec<NodeId>,
    /// Whether each SEG node is a meet node (gets its value from several
    /// incoming edges) as opposed to a pass-through/transfer node.
    is_meet: Vec<bool>,
    /// SEG edges as `(from, to)` positions into `nodes`. A non-meet node
    /// has exactly one incoming edge (except the entry, which has none).
    edges: Vec<(usize, usize)>,
    /// For every CFG node, the SEG node whose *out*-value holds at the
    /// node's entry (usize::MAX only before construction finishes).
    covering: Vec<usize>,
    /// Position of the CFG entry in `nodes` (the entry is always a SEG
    /// node), stored at build time so [`Seg::solve`] is infallible.
    entry_pos: usize,
}

impl Seg {
    /// Builds the SEG of `problem` over `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::BackwardUnsupported`] on backward problems
    /// (the construction is symmetric; only the forward direction is
    /// provided, matching the QPG evaluation) and
    /// [`SolverError::Internal`] if the dominator-tree walk loses track of
    /// a covering SEG node — possible only for inputs violating the CFG
    /// contract.
    pub fn build(cfg: &Cfg, problem: &impl DataflowProblem) -> Result<Self, SolverError> {
        if problem.flow() != Flow::Forward {
            return Err(SolverError::BackwardUnsupported("SEG construction"));
        }
        let graph = cfg.graph();
        let dt: DomTree = dominator_tree(graph, cfg.entry());
        let df = dominance_frontiers(graph, &dt, Direction::Forward);

        // Interesting nodes: entry + non-identity transfers.
        let mut interesting: Vec<NodeId> = graph
            .nodes()
            .filter(|&n| !problem.is_transparent(n))
            .collect();
        if !interesting.contains(&cfg.entry()) {
            interesting.push(cfg.entry());
        }
        let meets = iterated_dominance_frontier(&df, &interesting);

        let mut in_seg = vec![false; graph.node_count()];
        let mut meet_flag = vec![false; graph.node_count()];
        for &n in &interesting {
            in_seg[n.index()] = true;
        }
        for &m in &meets {
            in_seg[m.index()] = true;
            meet_flag[m.index()] = true;
        }
        let nodes: Vec<NodeId> = graph.nodes().filter(|&n| in_seg[n.index()]).collect();
        let mut pos = vec![usize::MAX; graph.node_count()];
        for (i, &n) in nodes.iter().enumerate() {
            pos[n.index()] = i;
        }
        let is_meet: Vec<bool> = nodes.iter().map(|&n| meet_flag[n.index()]).collect();

        // Dominator-tree walk with a "current SEG node" stack, exactly
        // like single-variable SSA renaming.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut covering = vec![usize::MAX; graph.node_count()];
        enum Action {
            Visit(NodeId),
            Pop,
        }
        let mut stack: Vec<usize> = Vec::new(); // current SEG node positions
        let mut work = vec![Action::Visit(cfg.entry())];
        while let Some(action) = work.pop() {
            match action {
                Action::Pop => {
                    stack.pop();
                }
                Action::Visit(node) => {
                    let ni = node.index();
                    let mut pushed = false;
                    if in_seg[ni] {
                        // A non-meet, non-entry SEG node is fed by the
                        // current SEG node.
                        if !meet_flag[ni] && node != cfg.entry() {
                            let from = *stack
                                .last()
                                .ok_or(SolverError::Internal("entry dominates everything"))?;
                            edges.push((from, pos[ni]));
                        }
                        stack.push(pos[ni]);
                        pushed = true;
                    }
                    covering[ni] = *stack
                        .last()
                        .ok_or(SolverError::Internal("entry is a SEG node"))?;
                    // Meet nodes among CFG successors receive an edge from
                    // the SEG node current at this point (per CFG edge, so
                    // a meet joining k edges gets k inputs).
                    for s in graph.successors(node) {
                        if meet_flag[s.index()] {
                            let from = *stack
                                .last()
                                .ok_or(SolverError::Internal("covering stack is non-empty"))?;
                            edges.push((from, pos[s.index()]));
                        }
                    }
                    if pushed {
                        work.push(Action::Pop);
                    }
                    for &c in dt.children(node) {
                        work.push(Action::Visit(c));
                    }
                }
            }
        }
        // `covering[n]` = SEG node whose OUT holds at n's entry: for a SEG
        // node itself the stack top includes it, which is what we want for
        // projecting its own in… adjust: a SEG node's in-value is solved
        // directly, so covering only matters for non-SEG nodes; for them
        // the stack top is the nearest dominating SEG node. For SEG nodes
        // we instead record their own position (projection handles both).
        let entry_pos = pos[cfg.entry().index()];
        Ok(Seg {
            nodes,
            is_meet,
            edges,
            covering,
            entry_pos,
        })
    }

    /// [`build`](Self::build) for hot paths (benchmarks, experiments) that
    /// have already validated the problem's direction.
    ///
    /// # Panics
    ///
    /// Panics where `build` would return an error.
    pub fn build_unchecked(cfg: &Cfg, problem: &impl DataflowProblem) -> Self {
        Self::build(cfg, problem).expect("SEG construction preconditions hold")
    }

    /// Number of SEG nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of SEG edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of meet (φ-like) nodes — the part of the SEG the iterated
    /// dominance frontier contributes.
    pub fn meet_count(&self) -> usize {
        self.is_meet.iter().filter(|&&m| m).count()
    }

    /// The CFG nodes participating in the SEG.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Solves the instance on the SEG and projects the full solution.
    ///
    /// Equal to [`solve_iterative`](crate::solve_iterative) on the whole
    /// CFG — asserted by the property tests.
    pub fn solve<P: DataflowProblem>(&self, cfg: &Cfg, problem: &P) -> Solution {
        let k = self.nodes.len();
        let mut inp: Vec<_> = (0..k).map(|_| problem.top()).collect();
        let mut out: Vec<_> = (0..k).map(|_| problem.top()).collect();
        // In-edges per SEG node.
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &(_, to)) in self.edges.iter().enumerate() {
            in_edges[to].push(i);
        }
        let entry_pos = self.entry_pos;

        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..k {
                let mut meet = if i == entry_pos {
                    problem.boundary()
                } else {
                    problem.top()
                };
                for &ei in &in_edges[i] {
                    let (from, _) = self.edges[ei];
                    match problem.confluence() {
                        Confluence::Union => {
                            meet.union(&out[from]);
                        }
                        Confluence::Intersection => {
                            meet.intersect(&out[from]);
                        }
                    }
                }
                if meet != inp[i] {
                    inp[i] = meet.clone();
                    changed = true;
                }
                problem.transfer(self.nodes[i]).apply(&mut meet);
                if meet != out[i] {
                    out[i] = meet;
                    changed = true;
                }
            }
        }

        // Projection: a SEG node keeps its solved values; any other node's
        // in and out both equal the out of its covering SEG node.
        let n = cfg.node_count();
        let mut full_in: Vec<_> = (0..n).map(|_| problem.top()).collect();
        let mut full_out: Vec<_> = (0..n).map(|_| problem.top()).collect();
        let mut seg_pos = vec![usize::MAX; n];
        for (i, &node) in self.nodes.iter().enumerate() {
            seg_pos[node.index()] = i;
        }
        for node in cfg.graph().nodes() {
            let ni = node.index();
            if seg_pos[ni] != usize::MAX {
                full_in[ni] = inp[seg_pos[ni]].clone();
                full_out[ni] = out[seg_pos[ni]].clone();
            } else {
                let c = self.covering[ni];
                full_in[ni] = out[c].clone();
                full_out[ni] = out[c].clone();
            }
        }
        Solution {
            inp: full_in,
            out: full_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_iterative, SingleVariableReachingDefs};
    use pst_lang::{lower_function, parse_function_body, VarId};

    fn check_all_vars(src: &str) {
        let l = lower_function(&parse_function_body(src).unwrap()).unwrap();
        for v in 0..l.var_count() {
            let var = VarId::from_index(v);
            let p = SingleVariableReachingDefs::new(&l, var);
            let seg = Seg::build(&l.cfg, &p).unwrap();
            assert_eq!(
                seg.solve(&l.cfg, &p),
                solve_iterative(&l.cfg, &p),
                "{src} variable {}",
                l.var_name(var)
            );
            assert!(seg.node_count() <= l.cfg.node_count());
        }
    }

    #[test]
    fn straight_line_and_branches() {
        check_all_vars("x = 1; y = x + 1; return y;");
        check_all_vars("if (c) { x = 1; } else { x = 2; } z = x; return z;");
        check_all_vars("if (c) { x = 1; } z = x; return z;");
    }

    #[test]
    fn loops_need_meet_nodes_at_headers() {
        check_all_vars("s = 0; while (n > 0) { s = s + n; n = n - 1; } return s;");
        check_all_vars("do { n = n - 1; } while (n > 0); return n;");
        check_all_vars("while (a) { if (b) { x = 1; } else { x = 2; } s = s + x; } return s;");
    }

    #[test]
    fn unstructured_flow() {
        check_all_vars(
            "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
        );
    }

    #[test]
    fn rejects_backward_problems() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let lv = crate::LiveVariables::new(&l);
        assert!(matches!(
            Seg::build(&l.cfg, &lv),
            Err(crate::SolverError::BackwardUnsupported(_))
        ));
    }

    #[test]
    #[should_panic(expected = "preconditions")]
    fn unchecked_variant_panics_on_backward_problems() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let lv = crate::LiveVariables::new(&l);
        let _ = Seg::build_unchecked(&l.cfg, &lv);
    }

    #[test]
    fn seg_is_smaller_than_cfg_for_sparse_instances() {
        let l = lower_function(
            &parse_function_body(
                "x = 1; while (a) { y = y + 1; } while (b) { z = z + 1; } x = x + 2; return x;",
            )
            .unwrap(),
        )
        .unwrap();
        let x = l.var_id("x").unwrap();
        let p = SingleVariableReachingDefs::new(&l, x);
        let seg = Seg::build(&l.cfg, &p).unwrap();
        assert!(
            seg.node_count() * 2 < l.cfg.node_count(),
            "{} of {}",
            seg.node_count(),
            l.cfg.node_count()
        );
    }
}
