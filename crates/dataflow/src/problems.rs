//! Concrete data-flow problems over lowered functions.
//!
//! * [`ReachingDefinitions`] — forward/union over the universe of
//!   definition statements.
//! * [`LiveVariables`] — backward/union over the universe of variables.
//! * [`DefiniteAssignment`] — forward/intersection over variables ("is `v`
//!   assigned on *every* path from the entry?").
//! * [`SingleVariableReachingDefs`] — the per-variable instance family the
//!   paper's sparse (QPG) evaluation uses: most regions are transparent
//!   for any one variable.

use pst_cfg::NodeId;
use pst_lang::{LoweredFunction, VarId};

use crate::{BitSet, Confluence, DataflowProblem, Flow, GenKill};

/// A definition site: `(block, statement index within block)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Block containing the definition.
    pub node: NodeId,
    /// Statement position inside the block.
    pub stmt: usize,
    /// The variable defined.
    pub var: VarId,
}

/// Classic reaching definitions.
#[derive(Clone, Debug)]
pub struct ReachingDefinitions {
    sites: Vec<DefSite>,
    transfers: Vec<GenKill>,
}

impl ReachingDefinitions {
    /// Builds the problem for `function`: enumerates definition sites and
    /// per-block gen/kill sets.
    pub fn new(function: &LoweredFunction) -> Self {
        let mut sites = Vec::new();
        for node in function.cfg.graph().nodes() {
            for (i, s) in function.blocks[node.index()].stmts.iter().enumerate() {
                if let Some(var) = s.def {
                    sites.push(DefSite { node, stmt: i, var });
                }
            }
        }
        let universe = sites.len();
        // Per-variable site sets, for kill computation and shadowing.
        let mut var_sites: Vec<BitSet> = (0..function.var_count())
            .map(|_| BitSet::new(universe))
            .collect();
        for (i, s) in sites.iter().enumerate() {
            var_sites[s.var.index()].insert(i);
        }
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                // Process this block's definitions in statement order: a
                // later def of the same variable shadows an earlier one.
                for (i, site) in sites.iter().enumerate() {
                    if site.node != node {
                        continue;
                    }
                    let same_var = &var_sites[site.var.index()];
                    kill.union(same_var);
                    gen.subtract(same_var);
                    gen.insert(i);
                }
                // A def surviving the block is not killed by the block.
                let mut k = kill;
                k.subtract(&gen);
                GenKill { gen, kill: k }
            })
            .collect();
        ReachingDefinitions { sites, transfers }
    }

    /// The definition sites, indexed by fact number.
    pub fn sites(&self) -> &[DefSite] {
        &self.sites
    }

    /// Filters a solution value down to the sites of one variable.
    pub fn reaching_defs_of_var(&self, value: &BitSet, var: VarId) -> Vec<DefSite> {
        value
            .iter()
            .map(|i| self.sites[i])
            .filter(|s| s.var == var)
            .collect()
    }
}

impl DataflowProblem for ReachingDefinitions {
    fn flow(&self) -> Flow {
        Flow::Forward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Union
    }
    fn universe(&self) -> usize {
        self.sites.len()
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.sites.len())
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

/// Classic backward liveness over variables.
#[derive(Clone, Debug)]
pub struct LiveVariables {
    universe: usize,
    transfers: Vec<GenKill>,
}

impl LiveVariables {
    /// Builds the problem: per block, `gen` = variables used before being
    /// defined (upward-exposed uses, including the branch condition),
    /// `kill` = variables defined.
    pub fn new(function: &LoweredFunction) -> Self {
        let universe = function.var_count();
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                let block = &function.blocks[node.index()];
                let mut gen = BitSet::new(universe);
                let mut kill = BitSet::new(universe);
                for s in &block.stmts {
                    for &u in &s.uses {
                        if !kill.contains(u.index()) {
                            gen.insert(u.index());
                        }
                    }
                    if let Some(d) = s.def {
                        kill.insert(d.index());
                    }
                }
                // The terminating branch reads its condition variables
                // after all statements.
                for &u in &block.branch_uses {
                    if !kill.contains(u.index()) {
                        gen.insert(u.index());
                    }
                }
                let mut k = kill;
                k.subtract(&gen);
                // Liveness kill must not cancel upward-exposed uses; keep
                // gen/kill disjoint for a canonical representation.
                GenKill { gen, kill: k }
            })
            .collect();
        LiveVariables {
            universe,
            transfers,
        }
    }
}

impl DataflowProblem for LiveVariables {
    fn flow(&self) -> Flow {
        Flow::Backward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Union
    }
    fn universe(&self) -> usize {
        self.universe
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.universe) // nothing live after the exit
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

/// Forward *must* analysis: a variable is definitely assigned at a point
/// iff every entry→point path writes it.
#[derive(Clone, Debug)]
pub struct DefiniteAssignment {
    universe: usize,
    transfers: Vec<GenKill>,
}

impl DefiniteAssignment {
    /// Builds the problem; parameters (defined in the entry block) are
    /// definitely assigned from the start.
    pub fn new(function: &LoweredFunction) -> Self {
        let universe = function.var_count();
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                let mut gen = BitSet::new(universe);
                for s in &function.blocks[node.index()].stmts {
                    if let Some(d) = s.def {
                        gen.insert(d.index());
                    }
                }
                GenKill {
                    gen,
                    kill: BitSet::new(universe),
                }
            })
            .collect();
        DefiniteAssignment {
            universe,
            transfers,
        }
    }
}

impl DataflowProblem for DefiniteAssignment {
    fn flow(&self) -> Flow {
        Flow::Forward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Intersection
    }
    fn universe(&self) -> usize {
        self.universe
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.universe) // nothing assigned before the entry
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

/// Reaching definitions restricted to a single variable — the sparse
/// instance family of the paper's §6.2: for any one variable, most blocks
/// (and hence most SESE regions) have identity transfer and can be
/// bypassed by the quick propagation graph.
#[derive(Clone, Debug)]
pub struct SingleVariableReachingDefs {
    /// Definition blocks of the variable, in fact order.
    sites: Vec<NodeId>,
    transfers: Vec<GenKill>,
}

impl SingleVariableReachingDefs {
    /// Builds the instance for `var`.
    pub fn new(function: &LoweredFunction, var: VarId) -> Self {
        let sites = function.definition_sites(var);
        let universe = sites.len();
        let transfers = function
            .cfg
            .graph()
            .nodes()
            .map(|node| {
                if let Some(pos) = sites.iter().position(|&s| s == node) {
                    let mut gen = BitSet::new(universe);
                    gen.insert(pos);
                    GenKill {
                        gen,
                        kill: {
                            let mut k = BitSet::full(universe);
                            k.remove(pos);
                            k
                        },
                    }
                } else {
                    GenKill::identity(universe)
                }
            })
            .collect();
        SingleVariableReachingDefs { sites, transfers }
    }

    /// The variable's defining blocks (fact `i` = `sites()[i]`).
    pub fn sites(&self) -> &[NodeId] {
        &self.sites
    }
}

impl DataflowProblem for SingleVariableReachingDefs {
    fn flow(&self) -> Flow {
        Flow::Forward
    }
    fn confluence(&self) -> Confluence {
        Confluence::Union
    }
    fn universe(&self) -> usize {
        self.sites.len()
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.sites.len())
    }
    fn transfer(&self, node: NodeId) -> &GenKill {
        &self.transfers[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_iterative;
    use pst_lang::{lower_function, parse_function_body};

    fn lowered(src: &str) -> LoweredFunction {
        lower_function(&parse_function_body(src).unwrap()).unwrap()
    }

    #[test]
    fn reaching_definitions_through_branch() {
        let l = lowered("x = 1; if (c) { x = 2; } y = x; return y;");
        let rd = ReachingDefinitions::new(&l);
        let sol = solve_iterative(&l.cfg, &rd);
        let x = l.var_id("x").unwrap();
        // At the block containing `y = x`, both defs of x reach.
        let use_block = l
            .cfg
            .graph()
            .nodes()
            .find(|&n| {
                l.blocks[n.index()]
                    .stmts
                    .iter()
                    .any(|s| s.def == Some(l.var_id("y").unwrap()))
            })
            .unwrap();
        assert_eq!(rd.reaching_defs_of_var(sol.value_in(use_block), x).len(), 2);
    }

    #[test]
    fn within_block_shadowing() {
        let l = lowered("x = 1; x = 2; return x;");
        let rd = ReachingDefinitions::new(&l);
        let sol = solve_iterative(&l.cfg, &rd);
        let x = l.var_id("x").unwrap();
        // Only the second definition leaves the block.
        let reaching = rd.reaching_defs_of_var(sol.value_out(l.cfg.entry()), x);
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].stmt, 1);
    }

    #[test]
    fn liveness_of_loop_variable() {
        let l = lowered("s = 0; while (n > 0) { s = s + n; n = n - 1; } return s;");
        let lv = LiveVariables::new(&l);
        let sol = solve_iterative(&l.cfg, &lv);
        let n = l.var_id("n").unwrap();
        let s = l.var_id("s").unwrap();
        // Both n and s are live entering the loop header; nothing is live
        // at the exit.
        assert!(sol.value_in(l.cfg.entry()).contains(n.index()));
        assert!(!sol.value_in(l.cfg.exit()).contains(s.index()));
    }

    #[test]
    fn dead_variable_is_not_live() {
        let l = lowered("d = 1; x = 2; return x;");
        let lv = LiveVariables::new(&l);
        let sol = solve_iterative(&l.cfg, &lv);
        let d = l.var_id("d").unwrap();
        // d is never used: not live anywhere before its def either.
        assert!(!sol.value_in(l.cfg.entry()).contains(d.index()));
    }

    #[test]
    fn definite_assignment_through_branches() {
        let l = lowered("if (c) { x = 1; } else { x = 2; y = 3; } z = x; return z;");
        let da = DefiniteAssignment::new(&l);
        let sol = solve_iterative(&l.cfg, &da);
        let x = l.var_id("x").unwrap();
        let y = l.var_id("y").unwrap();
        // x assigned on both arms: definite at exit; y only on one arm.
        assert!(sol.value_in(l.cfg.exit()).contains(x.index()));
        assert!(!sol.value_in(l.cfg.exit()).contains(y.index()));
    }

    #[test]
    fn single_variable_instance_is_mostly_transparent() {
        let l = lowered(
            "x = 1; while (a) { y = y + 1; } while (b) { z = z + 1; } x = x + 2; return x;",
        );
        let x = l.var_id("x").unwrap();
        let p = SingleVariableReachingDefs::new(&l, x);
        let transparent = l
            .cfg
            .graph()
            .nodes()
            .filter(|&n| p.is_transparent(n))
            .count();
        assert!(transparent >= l.cfg.node_count() - 2);
        assert_eq!(p.sites().len(), 2);
    }
}
