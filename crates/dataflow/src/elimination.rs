//! PST-based elimination solving (paper §6.2, "exploiting global and
//! local structure").
//!
//! Two phases over the program structure tree:
//!
//! 1. **Bottom-up**: each region's collapsed graph is summarized into a
//!    single transfer function from its entry edge to its exit edge.
//!    Bit-vector transfer functions are closed under composition and both
//!    confluences, so the summary is again a gen/kill pair, recovered from
//!    two local solves as `gen = f(∅)` and `kill = U ∖ f(U)`.
//! 2. **Top-down**: the boundary value enters the root; each region's
//!    local solution assigns values to its interior nodes and entry values
//!    to its children.
//!
//! Only forward problems are supported (the paper's examples are forward;
//! backward elimination is symmetric). Results equal
//! [`solve_iterative`](crate::solve_iterative) — asserted by property
//! tests on generated programs.

use pst_cfg::{Cfg, Graph};
use pst_core::{CollapsedNode, CollapsedRegion, ProgramStructureTree};

use crate::{BitSet, Confluence, DataflowProblem, Flow, GenKill, Solution, SolverError};

/// Solves a forward problem by elimination over the PST.
///
/// # Errors
///
/// Returns [`SolverError::BackwardUnsupported`] if `problem` is a backward
/// problem.
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_core::{collapse_all, ProgramStructureTree};
/// use pst_dataflow::{solve_elimination, solve_iterative, ReachingDefinitions};
/// let p = parse_program(
///     "fn f(n) { x = 1; while (n > 0) { x = x + 1; n = n - 1; } return x; }"
/// ).unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let pst = ProgramStructureTree::build(&l.cfg);
/// let collapsed = collapse_all(&l.cfg, &pst);
/// let rd = ReachingDefinitions::new(&l);
/// assert_eq!(
///     solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(),
///     solve_iterative(&l.cfg, &rd),
/// );
/// ```
pub fn solve_elimination(
    cfg: &Cfg,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
    problem: &impl DataflowProblem,
) -> Result<Solution, SolverError> {
    if problem.flow() != Flow::Forward {
        return Err(SolverError::BackwardUnsupported("elimination solver"));
    }
    let universe = problem.universe();
    let nregions = pst.region_count();

    // Regions in bottom-up order (children before parents): sort by depth
    // descending.
    let mut order: Vec<usize> = (0..nregions).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(pst.depth(pst_core::RegionId::from_index(r))));

    // Phase 1: per-region transfer tables and entry→exit summaries.
    let mut tables: Vec<Vec<GenKill>> = vec![Vec::new(); nregions];
    let mut summaries: Vec<GenKill> = vec![GenKill::identity(universe); nregions];
    for &ri in &order {
        let region = pst_core::RegionId::from_index(ri);
        let mini = &collapsed[region.index()];
        let table: Vec<GenKill> = mini
            .members
            .iter()
            .map(|&m| match m {
                CollapsedNode::Interior(n) => problem.transfer(n).clone(),
                CollapsedNode::Child(c) => summaries[c.index()].clone(),
            })
            .collect();
        let empty = BitSet::new(universe);
        let full = BitSet::full(universe);
        let f_empty = local_exit_value(mini, &table, problem.confluence(), &empty);
        let f_full = local_exit_value(mini, &table, problem.confluence(), &full);
        let mut kill = BitSet::full(universe);
        kill.subtract(&f_full);
        summaries[ri] = GenKill { gen: f_empty, kill };
        tables[ri] = table;
    }

    // Phase 2: propagate entry values top-down.
    let n = cfg.node_count();
    let mut inp: Vec<_> = (0..n).map(|_| problem.top()).collect();
    let mut out: Vec<_> = (0..n).map(|_| problem.top()).collect();
    let mut work: Vec<(usize, BitSet)> = vec![(pst.root().index(), problem.boundary())];
    while let Some((ri, entry_value)) = work.pop() {
        let region = pst_core::RegionId::from_index(ri);
        let mini = &collapsed[ri];
        let (lin, lout) = local_solve(mini, &tables[ri], problem.confluence(), &entry_value);
        for (mi, &member) in mini.members.iter().enumerate() {
            match member {
                CollapsedNode::Interior(node) => {
                    inp[node.index()] = lin[mi].clone();
                    out[node.index()] = lout[mi].clone();
                }
                CollapsedNode::Child(c) => {
                    work.push((c.index(), lin[mi].clone()));
                }
            }
        }
        let _ = region;
    }
    Ok(Solution { inp, out })
}

/// [`solve_elimination`] for hot paths (benchmarks, pipeline tests) that
/// have already validated the problem's direction.
///
/// # Panics
///
/// Panics where [`solve_elimination`] would return an error.
pub fn solve_elimination_unchecked(
    cfg: &Cfg,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
    problem: &impl DataflowProblem,
) -> Solution {
    solve_elimination(cfg, pst, collapsed, problem).expect("elimination solver preconditions hold")
}

/// Solves a region's collapsed graph for a concrete entry value; returns
/// per-mini-node in/out values.
fn local_solve(
    mini: &CollapsedRegion,
    table: &[GenKill],
    confluence: Confluence,
    entry_value: &BitSet,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let g: &Graph = &mini.graph;
    let n = g.node_count();
    let universe = entry_value.universe();
    let top = || match confluence {
        Confluence::Union => BitSet::new(universe),
        Confluence::Intersection => BitSet::full(universe),
    };
    let mut inp: Vec<BitSet> = (0..n).map(|_| top()).collect();
    let mut out: Vec<BitSet> = (0..n).map(|_| top()).collect();
    if n == 0 {
        return (inp, out);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for v in g.nodes() {
            let mut meet = if v == mini.head {
                entry_value.clone()
            } else {
                top()
            };
            for p in g.predecessors(v) {
                match confluence {
                    Confluence::Union => {
                        meet.union(&out[p.index()]);
                    }
                    Confluence::Intersection => {
                        meet.intersect(&out[p.index()]);
                    }
                }
            }
            if meet != inp[v.index()] {
                inp[v.index()] = meet.clone();
                changed = true;
            }
            table[v.index()].apply(&mut meet);
            if meet != out[v.index()] {
                out[v.index()] = meet;
                changed = true;
            }
        }
    }
    (inp, out)
}

/// The value leaving a region's tail for a given entry value.
fn local_exit_value(
    mini: &CollapsedRegion,
    table: &[GenKill],
    confluence: Confluence,
    entry_value: &BitSet,
) -> BitSet {
    if mini.graph.node_count() == 0 {
        return entry_value.clone();
    }
    let (_, out) = local_solve(mini, table, confluence, entry_value);
    out[mini.tail.index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_iterative, DefiniteAssignment, ReachingDefinitions};
    use pst_core::collapse_all;
    use pst_lang::{lower_function, parse_function_body};

    fn check(src: &str) {
        let l = lower_function(&parse_function_body(src).unwrap()).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let rd = ReachingDefinitions::new(&l);
        assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(),
            solve_iterative(&l.cfg, &rd),
            "reaching defs on {src}"
        );
        let da = DefiniteAssignment::new(&l);
        assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &da).unwrap(),
            solve_iterative(&l.cfg, &da),
            "definite assignment on {src}"
        );
    }

    #[test]
    fn straight_line() {
        check("x = 1; y = x + 1; return y;");
    }

    #[test]
    fn conditionals() {
        check("if (c) { x = 1; } else { x = 2; } return x;");
        check("if (c) { x = 1; } y = x; return y;");
    }

    #[test]
    fn loops() {
        check("s = 0; while (n > 0) { s = s + n; n = n - 1; } return s;");
        check("do { n = n - 1; } while (n > 0); return n;");
        check("for (i = 0; i < 9; i = i + 1) { s = s + i; } return s;");
    }

    #[test]
    fn nesting_and_switch() {
        check("while (a) { if (b) { x = 1; } else { x = 2; } s = s + x; } return s;");
        check("switch (x) { case 0: { y = 1; } case 1: { y = 2; } default: { } } return y;");
    }

    #[test]
    fn unstructured() {
        check("top: x = x + 1; if (x < 3) { goto top; } return x;");
        check(
            "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
        );
    }

    #[test]
    fn backward_problems_are_rejected() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let lv = crate::LiveVariables::new(&l);
        assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &lv),
            Err(crate::SolverError::BackwardUnsupported("elimination solver")),
        );
    }

    #[test]
    #[should_panic(expected = "preconditions")]
    fn unchecked_variant_panics_on_backward_problems() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let lv = crate::LiveVariables::new(&l);
        let _ = solve_elimination_unchecked(&l.cfg, &pst, &collapsed, &lv);
    }
}
