//! Property tests: all three solving strategies agree on generated
//! programs, for every problem they support.

use proptest::prelude::*;
use pst_core::{collapse_all, ProgramStructureTree};
use pst_dataflow::{
    solve_elimination, solve_iterative, DefiniteAssignment, LiveVariables, Qpg,
    ReachingDefinitions, SingleVariableReachingDefs,
};
use pst_lang::VarId;
use pst_workloads::{generate_function, ProgramGenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn elimination_matches_iterative(seed in 0u64..50_000, goto in 0usize..2) {
        let config = ProgramGenConfig {
            target_stmts: 50,
            goto_prob: if goto == 1 { 0.1 } else { 0.0 },
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);

        let rd = ReachingDefinitions::new(&l);
        prop_assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(),
            solve_iterative(&l.cfg, &rd)
        );
        let da = DefiniteAssignment::new(&l);
        prop_assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &da).unwrap(),
            solve_iterative(&l.cfg, &da)
        );
    }

    #[test]
    fn qpg_matches_iterative_per_variable(seed in 0u64..50_000) {
        let config = ProgramGenConfig { target_stmts: 50, ..Default::default() };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        for v in 0..l.var_count() {
            let var = VarId::from_index(v);
            let problem = SingleVariableReachingDefs::new(&l, var);
            let qpg = Qpg::build(&l.cfg, &pst, &problem).unwrap();
            prop_assert!(qpg.node_count() <= l.cfg.node_count());
            prop_assert_eq!(
                qpg.solve(&l.cfg, &pst, &problem).unwrap(),
                solve_iterative(&l.cfg, &problem),
                "variable {}", v
            );
        }
    }

    #[test]
    fn liveness_is_consistent_with_reaching_defs(seed in 0u64..20_000) {
        // Smoke property: a variable with no definition sites is never
        // "reached", and a variable never used is dead at the entry of the
        // exit block.
        let f = generate_function("p", &ProgramGenConfig::default(), seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let lv = LiveVariables::new(&l);
        let sol = solve_iterative(&l.cfg, &lv);
        prop_assert!(sol.value_in(l.cfg.exit()).is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The intersection problems also agree across solvers, and the
    /// amortized QPG context matches the plain builder.
    #[test]
    fn expression_problems_agree_across_solvers(seed in 50_000u64..100_000) {
        use pst_dataflow::{AvailableExpressions, Qpg, QpgContext, VeryBusyExpressions};
        let config = ProgramGenConfig { target_stmts: 40, ..Default::default() };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);

        let avail = AvailableExpressions::new(&l);
        prop_assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &avail).unwrap(),
            solve_iterative(&l.cfg, &avail)
        );
        let vb = VeryBusyExpressions::new(&l);
        let _ = solve_iterative(&l.cfg, &vb); // backward: iterative only

        // QPG builders agree with each other and with the full solve
        // (available expressions are usually dense, so also try them).
        let ctx = QpgContext::new(&l.cfg, &pst).unwrap();
        for v in (0..l.var_count()).step_by(4) {
            let var = VarId::from_index(v);
            let p = SingleVariableReachingDefs::new(&l, var);
            let via_ctx = ctx.build_from_sites(p.sites()).unwrap();
            let via_build = Qpg::build(&l.cfg, &pst, &p).unwrap();
            prop_assert_eq!(via_ctx.node_count(), via_build.node_count());
            prop_assert_eq!(
                ctx.solve(&via_ctx, &p).unwrap(),
                via_build.solve(&l.cfg, &pst, &p).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// On structured (reducible) programs, the Allen–Cocke interval solver
    /// agrees with the iterative and PST elimination solvers.
    #[test]
    fn interval_solver_matches_on_reducible_programs(seed in 0u64..30_000) {
        use pst_dataflow::solve_intervals;
        let config = ProgramGenConfig {
            target_stmts: 45,
            goto_prob: 0.0, // structured → reducible
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let rd = ReachingDefinitions::new(&l);
        let reference = solve_iterative(&l.cfg, &rd);
        prop_assert_eq!(solve_intervals(&l.cfg, &rd).unwrap(), reference.clone());
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        prop_assert_eq!(solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(), reference);

        let da = DefiniteAssignment::new(&l);
        prop_assert_eq!(solve_intervals(&l.cfg, &da).unwrap(), solve_iterative(&l.cfg, &da));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// SEGs (Choi–Cytron–Ferrante) solve every sparse instance to the
    /// same solution as the full iterative solver and the QPG — and the
    /// paper's §6.3 size comparison (SEG ≤ QPG nodes) holds.
    #[test]
    fn seg_matches_iterative_and_qpg(seed in 100_000u64..150_000) {
        use pst_dataflow::{Qpg, Seg};
        let config = ProgramGenConfig { target_stmts: 45, goto_prob: 0.05, ..Default::default() };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        for v in (0..l.var_count()).step_by(3) {
            let var = VarId::from_index(v);
            let p = SingleVariableReachingDefs::new(&l, var);
            let reference = solve_iterative(&l.cfg, &p);
            let seg = Seg::build(&l.cfg, &p).unwrap();
            prop_assert_eq!(seg.solve(&l.cfg, &p), reference.clone());
            let qpg = Qpg::build(&l.cfg, &pst, &p).unwrap();
            prop_assert_eq!(qpg.solve(&l.cfg, &pst, &p).unwrap(), reference);
        }
    }
}
