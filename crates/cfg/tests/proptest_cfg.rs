//! Property tests for the graph substrate itself: DFS invariants, SCC
//! consistency with reachability, reducibility vs dominator backedges,
//! and edge-split correspondence.

use proptest::prelude::*;
use pst_cfg::{
    is_reducible, is_strongly_connected, Dfs, DirectedEdgeKind, EdgeSplit, Graph, NodeId, Sccs,
    UndirectedDfs, UndirectedEdgeKind,
};

/// Arbitrary directed multigraph (possibly disconnected).
fn graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (1..max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..max_edges),
            )
        })
        .prop_map(|(n, pairs)| {
            let mut g = Graph::new();
            let nodes = g.add_nodes(n);
            for (a, b) in pairs {
                g.add_edge(nodes[a], nodes[b]);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Directed DFS: preorder/postorder are consistent permutations of the
    /// reachable nodes, tree edges form a spanning tree, and back edges
    /// point into the open interval.
    #[test]
    fn dfs_invariants(g in graph(20, 40)) {
        let root = NodeId::from_index(0);
        let dfs = Dfs::new(&g, root);
        let reach = g.reachable_from(root);
        let reached = reach.iter().filter(|&&r| r).count();
        prop_assert_eq!(dfs.reached_count(), reached);
        prop_assert_eq!(dfs.preorder_nodes().len(), reached);
        prop_assert_eq!(dfs.postorder_nodes().len(), reached);
        // Every reachable non-root node has exactly one tree parent.
        let tree_edges = g
            .edges()
            .filter(|&e| dfs.edge_kind(e) == Some(DirectedEdgeKind::Tree))
            .count();
        prop_assert_eq!(tree_edges, reached - 1);
        // Back edges go to ancestors: target preorder <= source preorder
        // and target postorder >= source postorder.
        for e in g.edges() {
            if dfs.edge_kind(e) == Some(DirectedEdgeKind::Back) {
                let (s, t) = g.endpoints(e);
                prop_assert!(dfs.preorder_number(t) <= dfs.preorder_number(s));
                prop_assert!(dfs.postorder_number(t) >= dfs.postorder_number(s));
            }
        }
        // Every reachable edge is examined exactly once.
        let examined = dfs.edges_in_examination_order().len();
        let expected = g
            .edges()
            .filter(|&e| reach[g.source(e).index()])
            .count();
        prop_assert_eq!(examined, expected);
    }

    /// SCC component equality agrees with mutual reachability.
    #[test]
    fn scc_matches_mutual_reachability(g in graph(14, 28)) {
        let sccs = Sccs::new(&g);
        let reach: Vec<Vec<bool>> = g.nodes().map(|n| g.reachable_from(n)).collect();
        for a in g.nodes() {
            for b in g.nodes() {
                let mutual = reach[a.index()][b.index()] && reach[b.index()][a.index()];
                prop_assert_eq!(
                    sccs.component(a) == sccs.component(b),
                    mutual,
                    "{:?} vs {:?}", a, b
                );
            }
        }
        prop_assert_eq!(sccs.is_strongly_connected(), is_strongly_connected(&g));
    }

    /// Undirected DFS: tree edges form a spanning tree of each component;
    /// every non-tree, non-self-loop edge connects ancestor/descendant.
    #[test]
    fn undirected_dfs_invariants(g in graph(16, 32)) {
        let dfs = UndirectedDfs::new(&g, NodeId::from_index(0));
        let reached = dfs.nodes_by_dfsnum().len();
        let tree = g
            .edges()
            .filter(|&e| dfs.edge_kind(e) == UndirectedEdgeKind::Tree)
            .count();
        prop_assert_eq!(tree, reached - 1);
        for e in g.edges() {
            if dfs.edge_kind(e) == UndirectedEdgeKind::Back {
                let upper = dfs.back_upper(&g, e);
                let lower = dfs.back_lower(&g, e);
                // upper is an ancestor of lower in the DFS tree.
                let mut cur = Some(lower);
                let mut found = false;
                while let Some(v) = cur {
                    if v == upper {
                        found = true;
                        break;
                    }
                    cur = dfs.parent(v);
                }
                prop_assert!(found, "backedge endpoints not ancestor-related");
            }
        }
    }

    /// Reducibility via T1/T2 equals the dominator-backedge criterion:
    /// a graph is reducible iff every retreating DFS edge's target
    /// dominates its source.
    #[test]
    fn reducibility_matches_dominator_criterion(n in 3usize..20, extra in 0usize..20, seed in 0u64..10_000) {
        let cfg = pst_workloads::random_cfg(n, extra, seed).unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        let dt = pst_dominators::dominator_tree(g, cfg.entry());
        let dominator_criterion = g.edges().all(|e| {
            if dfs.edge_kind(e) == Some(DirectedEdgeKind::Back) {
                let (s, t) = g.endpoints(e);
                dt.dominates(t, s)
            } else {
                true
            }
        });
        prop_assert_eq!(
            is_reducible(g, cfg.entry(), None),
            dominator_criterion
        );
    }

    /// Edge splitting preserves node dominance among original nodes.
    #[test]
    fn edge_split_preserves_dominance(n in 3usize..16, extra in 0usize..16, seed in 0u64..5_000) {
        let cfg = pst_workloads::random_cfg(n, extra, seed).unwrap();
        let dt = pst_dominators::dominator_tree(cfg.graph(), cfg.entry());
        let split = EdgeSplit::of_cfg(&cfg);
        let dt_split = pst_dominators::dominator_tree(split.graph(), cfg.entry());
        for a in cfg.graph().nodes() {
            for b in cfg.graph().nodes() {
                prop_assert_eq!(dt.dominates(a, b), dt_split.dominates(a, b));
            }
        }
    }
}
