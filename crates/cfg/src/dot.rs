//! Graphviz DOT export for graphs and CFGs.
//!
//! Intended for debugging and for the `structure_explorer` example, which
//! overlays SESE regions onto the CFG drawing. Attribute callbacks let
//! callers color nodes or label edges (e.g. with cycle-equivalence classes)
//! without this crate knowing anything about those analyses.

use std::fmt::Write as _;

use crate::{Cfg, EdgeId, Graph, NodeId};

/// Renders `graph` in DOT syntax with default labels.
///
/// # Examples
///
/// ```
/// use pst_cfg::{Graph, graph_to_dot};
/// let mut g = Graph::new();
/// let n = g.add_nodes(2);
/// g.add_edge(n[0], n[1]);
/// let dot = graph_to_dot(&g);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("n0 -> n1"));
/// ```
pub fn graph_to_dot(graph: &Graph) -> String {
    graph_to_dot_with(graph, |n| format!("label=\"{n}\""), |_| String::new())
}

/// Renders `graph` in DOT syntax with caller-supplied attribute strings.
///
/// `node_attrs`/`edge_attrs` return raw DOT attribute lists (without the
/// surrounding brackets), e.g. `label="x", color=red`. Return an empty
/// string for no attributes.
pub fn graph_to_dot_with(
    graph: &Graph,
    node_attrs: impl Fn(NodeId) -> String,
    edge_attrs: impl Fn(EdgeId) -> String,
) -> String {
    let mut out = String::new();
    out.push_str("digraph cfg {\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    for n in graph.nodes() {
        let attrs = node_attrs(n);
        if attrs.is_empty() {
            let _ = writeln!(out, "  {n};");
        } else {
            let _ = writeln!(out, "  {n} [{attrs}];");
        }
    }
    for e in graph.edges() {
        let (s, t) = graph.endpoints(e);
        let attrs = edge_attrs(e);
        if attrs.is_empty() {
            let _ = writeln!(out, "  {s} -> {t};");
        } else {
            let _ = writeln!(out, "  {s} -> {t} [{attrs}];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a [`Cfg`], highlighting entry and exit nodes.
pub fn cfg_to_dot(cfg: &Cfg) -> String {
    graph_to_dot_with(
        cfg.graph(),
        |n| {
            if n == cfg.entry() {
                format!("label=\"{n} (entry)\", style=bold")
            } else if n == cfg.exit() {
                format!("label=\"{n} (exit)\", style=bold")
            } else {
                format!("label=\"{n}\"")
            }
        },
        |_| String::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_edge_list;

    #[test]
    fn emits_all_nodes_and_edges() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let dot = cfg_to_dot(&cfg);
        for i in 0..4 {
            assert!(dot.contains(&format!("n{i}")), "missing node n{i}");
        }
        assert_eq!(dot.matches(" -> ").count(), 4);
    }

    #[test]
    fn marks_entry_and_exit() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let dot = cfg_to_dot(&cfg);
        assert!(dot.contains("(entry)"));
        assert!(dot.contains("(exit)"));
    }

    #[test]
    fn custom_attributes_appear() {
        let cfg = parse_edge_list("0->1").unwrap();
        let dot = graph_to_dot_with(
            cfg.graph(),
            |_| "color=red".to_string(),
            |_| "label=\"ce0\"".to_string(),
        );
        assert!(dot.contains("[color=red]"));
        assert!(dot.contains("[label=\"ce0\"]"));
    }

    #[test]
    fn parallel_edges_are_both_drawn() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[1]);
        let dot = graph_to_dot(&g);
        assert_eq!(dot.matches("n0 -> n1").count(), 2);
    }
}
