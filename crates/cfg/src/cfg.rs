//! Control flow graphs: a [`Graph`] with distinguished `entry`/`exit` nodes
//! and the structural invariants of the paper's Definition 1.
//!
//! A valid [`Cfg`] guarantees that
//! * `entry` has no predecessors,
//! * `exit` has no successors, and
//! * every node lies on some path from `entry` to `exit`.
//!
//! These are exactly the preconditions the PST algorithms rely on: adding a
//! single `exit -> entry` edge then makes the graph strongly connected
//! (Theorem 2 of the paper).

use std::error::Error;
use std::fmt;

use crate::{EdgeId, Graph, NodeId};

/// Why a proposed control flow graph is not a valid [`Cfg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateCfgError {
    /// The graph has no nodes at all.
    Empty,
    /// The designated entry node has at least one incoming edge.
    EntryHasPredecessor(NodeId),
    /// The designated exit node has at least one outgoing edge.
    ExitHasSuccessor(NodeId),
    /// Some node is not reachable from the entry node.
    UnreachableFromEntry(NodeId),
    /// Some node cannot reach the exit node.
    CannotReachExit(NodeId),
    /// Entry and exit are the same node.
    EntryIsExit(NodeId),
}

impl fmt::Display for ValidateCfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCfgError::Empty => write!(f, "control flow graph has no nodes"),
            ValidateCfgError::EntryHasPredecessor(n) => {
                write!(f, "entry node {n} has a predecessor")
            }
            ValidateCfgError::ExitHasSuccessor(n) => write!(f, "exit node {n} has a successor"),
            ValidateCfgError::UnreachableFromEntry(n) => {
                write!(f, "node {n} is unreachable from entry")
            }
            ValidateCfgError::CannotReachExit(n) => write!(f, "node {n} cannot reach exit"),
            ValidateCfgError::EntryIsExit(n) => {
                write!(f, "entry and exit are the same node {n}")
            }
        }
    }
}

impl Error for ValidateCfgError {}

/// A validated control flow graph.
///
/// `Cfg` owns its underlying [`Graph`] and exposes it read-only; once
/// validated, a `Cfg` can never be mutated back into an invalid state.
/// Construct one with [`CfgBuilder`] or [`Cfg::from_graph`].
///
/// # Examples
///
/// Building the smallest interesting CFG, a diamond:
///
/// ```
/// use pst_cfg::CfgBuilder;
/// # fn main() -> Result<(), pst_cfg::ValidateCfgError> {
/// let mut b = CfgBuilder::new();
/// let [entry, t, e, exit] = [b.add_node(), b.add_node(), b.add_node(), b.add_node()];
/// b.add_edge(entry, t);
/// b.add_edge(entry, e);
/// b.add_edge(t, exit);
/// b.add_edge(e, exit);
/// let cfg = b.finish(entry, exit)?;
/// assert_eq!(cfg.entry(), entry);
/// assert_eq!(cfg.exit(), exit);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    graph: Graph,
    entry: NodeId,
    exit: NodeId,
}

impl Cfg {
    /// Validates `graph` as a control flow graph with the given entry/exit.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateCfgError`] describing the first violated
    /// invariant (see the module docs for the full list).
    pub fn from_graph(graph: Graph, entry: NodeId, exit: NodeId) -> Result<Self, ValidateCfgError> {
        if graph.is_empty() {
            return Err(ValidateCfgError::Empty);
        }
        if entry == exit {
            return Err(ValidateCfgError::EntryIsExit(entry));
        }
        if graph.in_degree(entry) != 0 {
            return Err(ValidateCfgError::EntryHasPredecessor(entry));
        }
        if graph.out_degree(exit) != 0 {
            return Err(ValidateCfgError::ExitHasSuccessor(exit));
        }
        let forward = graph.reachable_from(entry);
        if let Some(n) = graph.nodes().find(|n| !forward[n.index()]) {
            return Err(ValidateCfgError::UnreachableFromEntry(n));
        }
        let backward = graph.reversed().reachable_from(exit);
        if let Some(n) = graph.nodes().find(|n| !backward[n.index()]) {
            return Err(ValidateCfgError::CannotReachExit(n));
        }
        Ok(Cfg { graph, entry, exit })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The unique entry node (no predecessors).
    #[inline]
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The unique exit node (no successors).
    #[inline]
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes. Convenience forward to the underlying graph.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges. Convenience forward to the underlying graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Builds the strongly connected graph `S = G + (exit -> entry)` of
    /// Theorem 2 and returns it together with the id of the added edge.
    ///
    /// Node and edge ids of `G` are preserved; the returned edge id is the
    /// single fresh edge.
    pub fn to_strongly_connected(&self) -> (Graph, EdgeId) {
        let _span = pst_obs::Span::enter("strongly_connect");
        let mut g = self.graph.clone();
        let back = g.add_edge(self.exit, self.entry);
        (g, back)
    }

    /// Consumes the CFG and returns the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

/// Incremental builder for [`Cfg`]s.
///
/// Mirrors [`Graph`]'s mutation API and performs validation in
/// [`CfgBuilder::finish`]. See [`Cfg`] for an example.
#[derive(Clone, Debug, Default)]
pub struct CfgBuilder {
    graph: Graph,
}

impl CfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CfgBuilder::default()
    }

    /// Creates an empty builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        CfgBuilder {
            graph: Graph::with_capacity(nodes, edges),
        }
    }

    /// Adds a node. See [`Graph::add_node`].
    pub fn add_node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Adds `count` nodes. See [`Graph::add_nodes`].
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        self.graph.add_nodes(count)
    }

    /// Adds an edge. See [`Graph::add_edge`].
    pub fn add_edge(&mut self, source: NodeId, target: NodeId) -> EdgeId {
        self.graph.add_edge(source, target)
    }

    /// Read access to the graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Validates and returns the finished CFG.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateCfgError`] if the built graph violates any CFG
    /// invariant.
    pub fn finish(self, entry: NodeId, exit: NodeId) -> Result<Cfg, ValidateCfgError> {
        Cfg::from_graph(self.graph, entry, exit)
    }
}

/// Parses a compact edge-list description into a [`Cfg`]; test/bench helper.
///
/// The description is a whitespace-separated list of `a->b` pairs of
/// non-negative node numbers. Node 0 is the entry; the highest-numbered node
/// is the exit. All nodes in `0..=max` are created.
///
/// # Errors
///
/// Returns an error string when the syntax is malformed, and a
/// [`ValidateCfgError`] (stringified) when the edge list is not a valid CFG.
///
/// # Examples
///
/// ```
/// let cfg = pst_cfg::parse_edge_list("0->1 1->2 0->2").unwrap();
/// assert_eq!(cfg.node_count(), 3);
/// assert_eq!(cfg.edge_count(), 3);
/// ```
pub fn parse_edge_list(description: &str) -> Result<Cfg, String> {
    parse_edge_list_with(description, &EdgeListOptions::default())
}

/// Options for [`parse_edge_list_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeListOptions {
    /// Reject an edge token that repeats an earlier `a->b` pair verbatim.
    ///
    /// Off by default so that multigraph edges stay expressible; turn it on
    /// when the input is hand-written and a repeated token is more likely a
    /// typo than an intentional parallel edge.
    pub reject_duplicate_edges: bool,
}

/// A parsed edge token: the `(source, target)` pair plus the byte offset of
/// the token in the input, for diagnostics.
struct EdgeToken {
    source: usize,
    target: usize,
    offset: usize,
}

/// Splits an edge-list description into `a->b` pairs with token offsets.
fn tokenize_edge_list(description: &str) -> Result<Vec<EdgeToken>, String> {
    let mut tokens = Vec::new();
    let mut rest = description;
    let mut base = 0usize;
    while let Some(start) = rest.find(|c: char| !c.is_whitespace()) {
        let tail = &rest[start..];
        let len = tail
            .find(char::is_whitespace)
            .unwrap_or(tail.len());
        let token = &tail[..len];
        let offset = base + start;
        let (a, b) = token
            .split_once("->")
            .ok_or_else(|| format!("malformed edge token `{token}` at byte {offset}"))?;
        let source: usize = a
            .parse()
            .map_err(|_| format!("bad node number `{a}` in `{token}` at byte {offset}"))?;
        let target: usize = b
            .parse()
            .map_err(|_| format!("bad node number `{b}` in `{token}` at byte {offset}"))?;
        tokens.push(EdgeToken {
            source,
            target,
            offset,
        });
        base = offset + len;
        rest = &rest[start + len..];
    }
    if tokens.is_empty() {
        return Err("empty edge list".to_string());
    }
    Ok(tokens)
}

/// The token slice of `description` starting at `offset`.
fn token_at(description: &str, offset: usize) -> &str {
    let tail = &description[offset..];
    &tail[..tail.find(char::is_whitespace).unwrap_or(tail.len())]
}

/// [`parse_edge_list`] with explicit [`EdgeListOptions`].
///
/// Beyond the base syntax checks this reports *isolated* nodes — node
/// numbers the dense `0..=max` numbering implies but that appear in no edge
/// token — pointing at the token that implied them, instead of the opaque
/// `UnreachableFromEntry` a gap in the numbering used to produce. With
/// [`EdgeListOptions::reject_duplicate_edges`] it also rejects verbatim
/// repeats of an earlier edge token.
///
/// # Errors
///
/// Returns an error string for malformed syntax, isolated node numbers,
/// rejected duplicates, and (stringified) [`ValidateCfgError`]s.
pub fn parse_edge_list_with(description: &str, options: &EdgeListOptions) -> Result<Cfg, String> {
    let tokens = tokenize_edge_list(description)?;
    let max = tokens
        .iter()
        .map(|t| t.source.max(t.target))
        .max()
        .expect("tokenize rejects empty lists");

    // A node number inside 0..=max that no token mentions was almost
    // certainly not intended: name the gap and the token that implied it.
    let mut mentioned = vec![false; max + 1];
    for t in &tokens {
        mentioned[t.source] = true;
        mentioned[t.target] = true;
    }
    if let Some(missing) = mentioned.iter().position(|&m| !m) {
        let culprit = tokens
            .iter()
            .find(|t| t.source > missing || t.target > missing)
            .expect("some token mentions a number above the gap");
        return Err(format!(
            "node {missing} appears in no edge (node numbers are dense 0..={max}, \
             implied by `{}` at byte {})",
            token_at(description, culprit.offset),
            culprit.offset
        ));
    }

    if options.reject_duplicate_edges {
        let mut first_at: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for t in &tokens {
            if let Some(&prev) = first_at.get(&(t.source, t.target)) {
                return Err(format!(
                    "duplicate edge `{}` at byte {} (first at byte {prev}); \
                     parallel edges need reject_duplicate_edges off",
                    token_at(description, t.offset),
                    t.offset
                ));
            }
            first_at.insert((t.source, t.target), t.offset);
        }
    }

    let mut builder = CfgBuilder::with_capacity(max + 1, tokens.len());
    let nodes = builder.add_nodes(max + 1);
    for t in &tokens {
        builder.add_edge(nodes[t.source], nodes[t.target]);
    }
    builder
        .finish(nodes[0], nodes[max])
        .map_err(|e| e.to_string())
}

/// Parses an edge list into a raw [`Graph`] with **no** CFG validation.
///
/// Node 0 is the designated entry; the graph may freely violate every
/// Definition-1 invariant (isolated nodes, multiple sinks, infinite loops,
/// edges into node 0). This is the input side of the
/// [`canonicalize`](crate::canonicalize) pipeline: parse degenerate input
/// here, then repair it into a valid [`Cfg`].
///
/// # Errors
///
/// Returns an error string only for malformed syntax or an empty list.
///
/// # Examples
///
/// ```
/// let (g, entry) = pst_cfg::parse_edge_list_graph("0->2").unwrap();
/// assert_eq!(g.node_count(), 3); // node 1 exists but is isolated
/// assert_eq!(entry.index(), 0);
/// ```
pub fn parse_edge_list_graph(description: &str) -> Result<(Graph, NodeId), String> {
    let tokens = tokenize_edge_list(description)?;
    let max = tokens
        .iter()
        .map(|t| t.source.max(t.target))
        .max()
        .expect("tokenize rejects empty lists");
    let mut graph = Graph::with_capacity(max + 1, tokens.len());
    let nodes = graph.add_nodes(max + 1);
    for t in &tokens {
        graph.add_edge(nodes[t.source], nodes[t.target]);
    }
    Ok((graph, nodes[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_diamond() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        assert_eq!(cfg.node_count(), 4);
        assert_eq!(cfg.entry().index(), 0);
        assert_eq!(cfg.exit().index(), 3);
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_edge_list("").is_err());
        let b = CfgBuilder::new();
        let g = b.graph().clone();
        assert_eq!(
            Cfg::from_graph(g, NodeId::from_index(0), NodeId::from_index(1)),
            Err(ValidateCfgError::Empty)
        );
    }

    #[test]
    fn rejects_entry_with_predecessor() {
        let err = parse_edge_list("0->1 1->0 0->2 1->2").unwrap_err();
        assert!(err.contains("entry"), "{err}");
    }

    #[test]
    fn rejects_exit_with_successor() {
        let mut b = CfgBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.add_edge(n[1], n[1]); // self-loop is fine
        b.add_edge(n[2], n[1]);
        let err = b.finish(n[0], n[2]).unwrap_err();
        assert_eq!(err, ValidateCfgError::ExitHasSuccessor(n[2]));
    }

    #[test]
    fn rejects_unreachable_node() {
        let mut b = CfgBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]); // n1 unreachable from entry
        let err = b.finish(n[0], n[2]).unwrap_err();
        assert_eq!(err, ValidateCfgError::UnreachableFromEntry(n[1]));
    }

    #[test]
    fn rejects_node_that_cannot_reach_exit() {
        let mut b = CfgBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[0], n[2]);
        // n1 is a dead end
        let err = b.finish(n[0], n[2]).unwrap_err();
        assert_eq!(err, ValidateCfgError::CannotReachExit(n[1]));
    }

    #[test]
    fn rejects_entry_equals_exit() {
        let mut b = CfgBuilder::new();
        let n = b.add_node();
        let err = b.finish(n, n).unwrap_err();
        assert_eq!(err, ValidateCfgError::EntryIsExit(n));
    }

    #[test]
    fn strongly_connected_closure() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let (s, back) = cfg.to_strongly_connected();
        assert_eq!(s.edge_count(), cfg.edge_count() + 1);
        assert_eq!(s.source(back), cfg.exit());
        assert_eq!(s.target(back), cfg.entry());
        // Now every node reaches every other.
        for n in s.nodes() {
            assert!(s.reachable_from(n).iter().all(|&r| r));
        }
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        let msg = ValidateCfgError::EntryHasPredecessor(NodeId::from_index(0)).to_string();
        assert!(msg.starts_with("entry node"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn parse_edge_list_reports_syntax_errors() {
        assert!(parse_edge_list("0=>1").is_err());
        assert!(parse_edge_list("a->b").is_err());
    }

    #[test]
    fn parse_edge_list_names_isolated_nodes_and_culprit_token() {
        let err = parse_edge_list("0->2").unwrap_err();
        assert!(err.contains("node 1 appears in no edge"), "{err}");
        assert!(err.contains("`0->2` at byte 0"), "{err}");
        // The culprit is the first token mentioning a number above the gap.
        let err = parse_edge_list("0->1 1->4 4->2").unwrap_err();
        assert!(err.contains("node 3 appears in no edge"), "{err}");
        assert!(err.contains("`1->4` at byte 5"), "{err}");
    }

    #[test]
    fn parse_edge_list_duplicate_tokens_are_opt_in_rejected() {
        let strict = EdgeListOptions {
            reject_duplicate_edges: true,
        };
        // Parallel edges stay expressible by default…
        let cfg = parse_edge_list("0->1 0->1 1->2").unwrap();
        assert_eq!(cfg.edge_count(), 3);
        // …and are caught with the flag, pointing at both occurrences.
        let err = parse_edge_list_with("0->1 0->1 1->2", &strict).unwrap_err();
        assert!(err.contains("duplicate edge `0->1` at byte 5"), "{err}");
        assert!(err.contains("first at byte 0"), "{err}");
        // Distinct edges are unaffected by the flag.
        assert!(parse_edge_list_with("0->1 1->2", &strict).is_ok());
    }

    #[test]
    fn parse_edge_list_graph_accepts_degenerate_input() {
        let (g, entry) = parse_edge_list_graph("0->1 1->0 2->2 0->3 0->4").unwrap();
        assert_eq!(entry.index(), 0);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.in_degree(entry) > 0); // no validation happened
        assert!(parse_edge_list_graph("").is_err());
        assert!(parse_edge_list_graph("0=>1").is_err());
    }
}
