//! Reducibility testing with irreducibility witnesses.
//!
//! A flow graph is *reducible* when repeated application of
//! * **T1** — remove a self-loop, and
//! * **T2** — merge a node that has a unique predecessor into that
//!   predecessor,
//!
//! collapses it to a single node. An equivalent characterization (Hecht &
//! Ullman): the graph is reducible iff every *retreating* edge of a
//! depth-first search — an edge whose target is on the tree path to its
//! source — is a *back* edge in the dominator sense, i.e. its target
//! dominates its source. [`reducibility`] uses the second formulation so
//! that, when the answer is "no", it can hand back the offending
//! retreating edges as a witness; [`is_reducible`] is the thin boolean
//! wrapper kept for existing callers. The T1/T2 reducer survives as a
//! test-only cross-check of the dominator-based answer.
//!
//! The paper's Theorem 10 states that every SESE region of a reducible
//! graph is itself reducible; the classifier in `pst-core` uses this test
//! to separate "dag"/"loop" regions from truly unstructured cyclic ones,
//! and the lint engine in `pst-analysis` reports the witness edges.

use std::collections::BTreeSet;

use crate::{EdgeId, Graph, NodeId};

/// Result of a reducibility test: either the graph is reducible, or the
/// retreating edges that break reducibility witness why it is not.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, reducibility};
/// // 0 branches to both 1 and 2, which form a cycle: irreducible, and
/// // the offending retreating edge closes the two-entry cycle.
/// let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
/// let r = reducibility(cfg.graph(), cfg.entry(), None);
/// assert!(!r.is_reducible());
/// assert_eq!(r.irreducible_edges().len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reducibility {
    irreducible_edges: Vec<EdgeId>,
}

impl Reducibility {
    /// Whether the tested (sub)graph is reducible.
    pub fn is_reducible(&self) -> bool {
        self.irreducible_edges.is_empty()
    }

    /// The witness set: retreating edges (w.r.t. the deterministic DFS
    /// used by the test) whose target does **not** dominate their source.
    /// Empty iff the graph is reducible. Sorted by edge id.
    pub fn irreducible_edges(&self) -> &[EdgeId] {
        &self.irreducible_edges
    }
}

/// Tests the subgraph of `graph` induced by `alive` (or the whole graph)
/// for reducibility when entered at `entry`, returning irreducible
/// retreating edges as a witness.
///
/// Nodes unreachable from `entry` inside the induced subgraph are ignored —
/// a region interior is always reachable from its entry, so this matches
/// the classifier's needs while keeping the function total.
///
/// # Examples
///
/// A natural loop is reducible; the classic two-entry loop is not:
///
/// ```
/// use pst_cfg::{parse_edge_list, reducibility};
/// let natural = parse_edge_list("0->1 1->2 2->1 2->3").unwrap();
/// assert!(reducibility(natural.graph(), natural.entry(), None).is_reducible());
///
/// let irr = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
/// let r = reducibility(irr.graph(), irr.entry(), None);
/// assert!(!r.is_reducible());
/// assert!(!r.irreducible_edges().is_empty());
/// ```
pub fn reducibility(graph: &Graph, entry: NodeId, alive: Option<&[bool]>) -> Reducibility {
    let n = graph.node_count();
    let in_scope = |node: NodeId| alive.is_none_or(|a| a[node.index()]);
    if !in_scope(entry) {
        return Reducibility {
            irreducible_edges: Vec::new(),
        };
    }

    // Iterative DFS over the induced subgraph, collecting retreating edges
    // (target currently on the tree path) and a DFS preorder for the
    // dominator pass below. `Dfs` cannot be reused here: it has no notion
    // of an induced subgraph.
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on path, 2 = done
    let mut preorder: Vec<NodeId> = Vec::new();
    let mut retreating: Vec<EdgeId> = Vec::new();
    // (node, position into its out-edge list)
    let mut stack: Vec<(NodeId, usize)> = vec![(entry, 0)];
    state[entry.index()] = 1;
    preorder.push(entry);
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let out = graph.out_edges(v);
        if *next == out.len() {
            state[v.index()] = 2;
            stack.pop();
            continue;
        }
        let e = out[*next];
        *next += 1;
        let t = graph.target(e);
        if !in_scope(t) {
            continue;
        }
        match state[t.index()] {
            0 => {
                state[t.index()] = 1;
                preorder.push(t);
                stack.push((t, 0));
            }
            1 => retreating.push(e), // includes self-loops
            _ => {}
        }
    }
    if preorder.len() <= 1 {
        // A single node can at most carry self-loops, and those are
        // trivially dominated by their own target.
        return Reducibility {
            irreducible_edges: Vec::new(),
        };
    }

    // Iterative immediate-dominator computation (Cooper–Harvey–Kennedy)
    // over the reachable induced subgraph, in reverse postorder. The
    // dominators crate sits above this one in the workspace, so a small
    // self-contained pass is used instead of importing it.
    let rpo = reverse_postorder(graph, entry, &in_scope, &|node| state[node.index()] != 0);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &v) in rpo.iter().enumerate() {
        rpo_index[v.index()] = i;
    }
    const UNDEF: usize = usize::MAX;
    let mut idom = vec![UNDEF; rpo.len()]; // by rpo index
    idom[0] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for (i, &v) in rpo.iter().enumerate().skip(1) {
            let mut new_idom = UNDEF;
            for e in graph.in_edges(v) {
                let p = graph.source(*e);
                if !in_scope(p) || state[p.index()] == 0 {
                    continue;
                }
                let pi = rpo_index[p.index()];
                if idom[pi] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    pi
                } else {
                    intersect(&idom, new_idom, pi)
                };
            }
            if new_idom != UNDEF && idom[i] != new_idom {
                idom[i] = new_idom;
                changed = true;
            }
        }
    }
    let dominates = |a: usize, mut b: usize| -> bool {
        // Walk b's idom chain up to the root; rpo indices strictly
        // decrease along the chain.
        loop {
            if a == b {
                return true;
            }
            if b == 0 {
                return false;
            }
            b = idom[b];
        }
    };

    let mut irreducible_edges: Vec<EdgeId> = retreating
        .into_iter()
        .filter(|&e| {
            let (u, v) = (graph.source(e), graph.target(e));
            !dominates(rpo_index[v.index()], rpo_index[u.index()])
        })
        .collect();
    irreducible_edges.sort_unstable();
    irreducible_edges.dedup();
    debug_assert_eq!(
        irreducible_edges.is_empty(),
        t1_t2_is_reducible(graph, entry, alive),
        "dominator-based witness disagrees with the T1/T2 reducer"
    );
    Reducibility { irreducible_edges }
}

/// Reverse postorder of the reachable induced subgraph, entry first.
fn reverse_postorder(
    graph: &Graph,
    entry: NodeId,
    in_scope: &impl Fn(NodeId) -> bool,
    reached: &impl Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut postorder: Vec<NodeId> = Vec::new();
    let mut stack: Vec<(NodeId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let out = graph.out_edges(v);
        if *next == out.len() {
            postorder.push(v);
            stack.pop();
            continue;
        }
        let t = graph.target(out[*next]);
        *next += 1;
        if in_scope(t) && reached(t) && !visited[t.index()] {
            visited[t.index()] = true;
            stack.push((t, 0));
        }
    }
    postorder.reverse();
    postorder
}

/// CHK two-finger intersection over rpo-indexed idoms.
fn intersect(idom: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while a > b {
            a = idom[a];
        }
        while b > a {
            b = idom[b];
        }
    }
    a
}

/// Whether the subgraph of `graph` induced by `alive` (or the whole graph)
/// is reducible when entered at `entry`.
///
/// Thin wrapper over [`reducibility`] kept for callers that only need the
/// boolean answer.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, is_reducible};
/// let natural = parse_edge_list("0->1 1->2 2->1 2->3").unwrap();
/// assert!(is_reducible(natural.graph(), natural.entry(), None));
///
/// // 0 branches to both 1 and 2, which form a cycle: irreducible.
/// let irr = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
/// assert!(!is_reducible(irr.graph(), irr.entry(), None));
/// ```
pub fn is_reducible(graph: &Graph, entry: NodeId, alive: Option<&[bool]>) -> bool {
    reducibility(graph, entry, alive).is_reducible()
}

/// The classic T1/T2 interval reducer, retained as an independent oracle
/// for the dominator-based test (`debug_assert`ed on every call and
/// cross-checked exhaustively by the tests).
fn t1_t2_is_reducible(graph: &Graph, entry: NodeId, alive: Option<&[bool]>) -> bool {
    let n = graph.node_count();
    let in_scope = |node: NodeId| alive.is_none_or(|a| a[node.index()]);
    if !in_scope(entry) {
        return true;
    }

    // Collect reachable-in-scope nodes.
    let mut reach = vec![false; n];
    let mut stack = vec![entry];
    reach[entry.index()] = true;
    while let Some(v) = stack.pop() {
        for s in graph.successors(v) {
            if in_scope(s) && !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s);
            }
        }
    }

    // Mutable successor/predecessor sets over representative nodes.
    // BTreeSet keeps iteration deterministic.
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut live: Vec<bool> = vec![false; n];
    let mut live_count = 0usize;
    for v in graph.nodes() {
        if !reach[v.index()] {
            continue;
        }
        live[v.index()] = true;
        live_count += 1;
        for s in graph.successors(v) {
            if reach[s.index()] && s != v {
                succs[v.index()].insert(s.index());
                preds[s.index()].insert(v.index());
            }
            // Self-loops are dropped immediately (T1).
        }
    }
    if live_count <= 1 {
        return true;
    }

    // Worklist of candidate nodes for T2.
    let mut work: Vec<usize> = (0..n).filter(|&i| live[i]).collect();
    while let Some(v) = work.pop() {
        if !live[v] || v == entry.index() {
            continue;
        }
        if preds[v].len() != 1 {
            continue;
        }
        let Some(&p) = preds[v].iter().next() else {
            continue;
        };
        // T2: merge v into p.
        live[v] = false;
        live_count -= 1;
        preds[v].clear();
        succs[p].remove(&v);
        let v_succs: Vec<usize> = succs[v].iter().copied().collect();
        succs[v].clear();
        for s in v_succs {
            preds[s].remove(&v);
            if s == p {
                // Would form a self-loop p -> p: apply T1 immediately.
                continue;
            }
            succs[p].insert(s);
            let newly_single = preds[s].insert(p) && preds[s].len() == 1;
            if newly_single || preds[s].len() == 1 {
                work.push(s);
            }
        }
        // p's successor set changed; p's targets may have become mergeable.
        if preds[p].len() == 1 {
            work.push(p);
        }
        for &s in &succs[p] {
            if preds[s].len() == 1 {
                work.push(s);
            }
        }
    }
    live_count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_edge_list;

    fn check(desc: &str) -> bool {
        let cfg = parse_edge_list(desc).unwrap();
        let r = reducibility(cfg.graph(), cfg.entry(), None);
        assert_eq!(
            r.is_reducible(),
            t1_t2_is_reducible(cfg.graph(), cfg.entry(), None),
            "witness test and T1/T2 disagree on {desc}"
        );
        assert_eq!(
            r.is_reducible(),
            is_reducible(cfg.graph(), cfg.entry(), None),
            "bool wrapper must match on {desc}"
        );
        r.is_reducible()
    }

    #[test]
    fn straight_line_is_reducible() {
        assert!(check("0->1 1->2 2->3"));
    }

    #[test]
    fn diamond_is_reducible() {
        assert!(check("0->1 0->2 1->3 2->3"));
    }

    #[test]
    fn while_loop_is_reducible() {
        assert!(check("0->1 1->2 2->1 1->3"));
    }

    #[test]
    fn nested_loops_are_reducible() {
        assert!(check("0->1 1->2 2->3 3->2 3->1 1->4"));
    }

    #[test]
    fn self_loop_is_reducible() {
        assert!(check("0->1 1->1 1->2"));
    }

    #[test]
    fn classic_irreducible_triangle() {
        assert!(!check("0->1 0->2 1->2 2->1 1->3 2->3"));
    }

    #[test]
    fn bigger_irreducible() {
        // Two headers entered from outside the cycle.
        assert!(!check("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5"));
    }

    #[test]
    fn alive_mask_restricts_scope() {
        // Whole graph irreducible, but the region {0,1,5} is fine.
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3 3->4").unwrap();
        let mut alive = vec![false; cfg.node_count()];
        alive[0] = true;
        alive[3] = true;
        alive[4] = true;
        assert!(is_reducible(cfg.graph(), cfg.entry(), Some(&alive)));
        assert!(!is_reducible(cfg.graph(), cfg.entry(), None));
        assert!(reducibility(cfg.graph(), cfg.entry(), Some(&alive))
            .irreducible_edges()
            .is_empty());
    }

    #[test]
    fn entry_outside_scope_is_vacuously_reducible() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let alive = vec![false; 3];
        assert!(is_reducible(cfg.graph(), cfg.entry(), Some(&alive)));
    }

    #[test]
    fn single_node_subgraph() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let mut alive = vec![false; 3];
        alive[1] = true;
        assert!(is_reducible(
            cfg.graph(),
            crate::NodeId::from_index(1),
            Some(&alive)
        ));
    }

    /// Table-driven witness checks: for each input, the expected witness
    /// set as `source->target` endpoint pairs (edge ids depend on parse
    /// order, endpoints don't).
    #[test]
    fn witness_edges_are_exact() {
        let table: &[(&str, &[(usize, usize)])] = &[
            // Reducible graphs: no witnesses.
            ("0->1 1->2 2->3", &[]),
            ("0->1 1->2 2->1 1->3", &[]),
            ("0->1 1->1 1->2", &[]),
            // Classic two-entry triangle: the DFS reaches 1 then 2; the
            // retreating edge 2->1 has a 1-avoiding path (0->2), so it is
            // the witness.
            ("0->1 0->2 1->2 2->1 1->3 2->3", &[(2, 1)]),
            // Two-header four-cycle: the retreating edge closing the
            // cycle at the second header witnesses.
            ("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5", &[(4, 1)]),
            // Two independent irreducible cycles: one witness each.
            (
                "0->1 0->2 1->2 2->1 1->5 0->3 0->4 3->4 4->3 3->5 4->5",
                &[(2, 1), (4, 3)],
            ),
            // A reducible loop nested inside an irreducible one: only the
            // irreducible retreating edge witnesses, not the natural
            // backedge 3->2.
            (
                "0->1 0->2 1->2 2->3 3->2 3->1 1->4 3->4",
                &[(3, 1)],
            ),
        ];
        for (desc, expected) in table {
            let cfg = parse_edge_list(desc).unwrap();
            let r = reducibility(cfg.graph(), cfg.entry(), None);
            let mut got: Vec<(usize, usize)> = r
                .irreducible_edges()
                .iter()
                .map(|&e| {
                    let (u, v) = cfg.graph().endpoints(e);
                    (u.index(), v.index())
                })
                .collect();
            got.sort_unstable();
            let mut want = expected.to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "witnesses for {desc}");
        }
    }

    #[test]
    fn witnesses_cross_check_t1_t2_on_dense_family() {
        // Every 4-node graph over a fixed edge pool: the witness-based
        // verdict must match the T1/T2 reducer on all of them.
        let pool = [
            (0usize, 1usize),
            (0, 2),
            (1, 2),
            (2, 1),
            (1, 3),
            (2, 3),
            (3, 1),
        ];
        for mask in 1u32..(1 << pool.len()) {
            let desc: Vec<String> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, (u, v))| format!("{u}->{v}"))
                .collect();
            // Ensure node 0 exists as the entry.
            let desc = format!("0->1 {}", desc.join(" "));
            let Ok(cfg) = parse_edge_list(&desc) else {
                continue;
            };
            let r = reducibility(cfg.graph(), cfg.entry(), None);
            assert_eq!(
                r.is_reducible(),
                t1_t2_is_reducible(cfg.graph(), cfg.entry(), None),
                "disagreement on {desc}"
            );
        }
    }

    #[test]
    fn parallel_retreating_edges_both_witness() {
        // Parallel copies of the irreducible retreating edge: both ids
        // appear in the witness set.
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 2->1 1->3 2->3").unwrap();
        let r = reducibility(cfg.graph(), cfg.entry(), None);
        assert_eq!(r.irreducible_edges().len(), 2);
        for &e in r.irreducible_edges() {
            assert_eq!(
                (cfg.graph().source(e).index(), cfg.graph().target(e).index()),
                (2, 1)
            );
        }
    }
}
