//! Reducibility testing via T1/T2 interval reductions.
//!
//! A flow graph is *reducible* when repeated application of
//! * **T1** — remove a self-loop, and
//! * **T2** — merge a node that has a unique predecessor into that
//!   predecessor,
//!
//! collapses it to a single node. The paper's Theorem 10 states that every
//! SESE region of a reducible graph is itself reducible; the classifier in
//! `pst-core` uses this test to separate "dag"/"loop" regions from truly
//! unstructured cyclic ones.

use std::collections::BTreeSet;

use crate::{Graph, NodeId};

/// Whether the subgraph of `graph` induced by `alive` (or the whole graph)
/// is reducible when entered at `entry`.
///
/// Nodes unreachable from `entry` inside the induced subgraph are ignored —
/// a region interior is always reachable from its entry, so this matches the
/// classifier's needs while keeping the function total.
///
/// # Examples
///
/// A natural loop is reducible; the classic two-entry loop is not:
///
/// ```
/// use pst_cfg::{parse_edge_list, is_reducible};
/// let natural = parse_edge_list("0->1 1->2 2->1 2->3").unwrap();
/// assert!(is_reducible(natural.graph(), natural.entry(), None));
///
/// // 0 branches to both 1 and 2, which form a cycle: irreducible.
/// let irr = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
/// assert!(!is_reducible(irr.graph(), irr.entry(), None));
/// ```
pub fn is_reducible(graph: &Graph, entry: NodeId, alive: Option<&[bool]>) -> bool {
    let n = graph.node_count();
    let in_scope = |node: NodeId| alive.is_none_or(|a| a[node.index()]);
    if !in_scope(entry) {
        return true;
    }

    // Collect reachable-in-scope nodes.
    let mut reach = vec![false; n];
    let mut stack = vec![entry];
    reach[entry.index()] = true;
    while let Some(v) = stack.pop() {
        for s in graph.successors(v) {
            if in_scope(s) && !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s);
            }
        }
    }

    // Mutable successor/predecessor sets over representative nodes.
    // BTreeSet keeps iteration deterministic.
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut live: Vec<bool> = vec![false; n];
    let mut live_count = 0usize;
    for v in graph.nodes() {
        if !reach[v.index()] {
            continue;
        }
        live[v.index()] = true;
        live_count += 1;
        for s in graph.successors(v) {
            if reach[s.index()] && s != v {
                succs[v.index()].insert(s.index());
                preds[s.index()].insert(v.index());
            }
            // Self-loops are dropped immediately (T1).
        }
    }
    if live_count <= 1 {
        return true;
    }

    // Worklist of candidate nodes for T2.
    let mut work: Vec<usize> = (0..n).filter(|&i| live[i]).collect();
    while let Some(v) = work.pop() {
        if !live[v] || v == entry.index() {
            continue;
        }
        if preds[v].len() != 1 {
            continue;
        }
        let p = *preds[v].iter().next().expect("unique predecessor");
        // T2: merge v into p.
        live[v] = false;
        live_count -= 1;
        preds[v].clear();
        succs[p].remove(&v);
        let v_succs: Vec<usize> = succs[v].iter().copied().collect();
        succs[v].clear();
        for s in v_succs {
            preds[s].remove(&v);
            if s == p {
                // Would form a self-loop p -> p: apply T1 immediately.
                continue;
            }
            succs[p].insert(s);
            let newly_single = preds[s].insert(p) && preds[s].len() == 1;
            if newly_single || preds[s].len() == 1 {
                work.push(s);
            }
        }
        // p's successor set changed; p's targets may have become mergeable.
        if preds[p].len() == 1 {
            work.push(p);
        }
        for &s in &succs[p] {
            if preds[s].len() == 1 {
                work.push(s);
            }
        }
    }
    live_count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_edge_list;

    fn check(desc: &str) -> bool {
        let cfg = parse_edge_list(desc).unwrap();
        is_reducible(cfg.graph(), cfg.entry(), None)
    }

    #[test]
    fn straight_line_is_reducible() {
        assert!(check("0->1 1->2 2->3"));
    }

    #[test]
    fn diamond_is_reducible() {
        assert!(check("0->1 0->2 1->3 2->3"));
    }

    #[test]
    fn while_loop_is_reducible() {
        assert!(check("0->1 1->2 2->1 1->3"));
    }

    #[test]
    fn nested_loops_are_reducible() {
        assert!(check("0->1 1->2 2->3 3->2 3->1 1->4"));
    }

    #[test]
    fn self_loop_is_reducible() {
        assert!(check("0->1 1->1 1->2"));
    }

    #[test]
    fn classic_irreducible_triangle() {
        assert!(!check("0->1 0->2 1->2 2->1 1->3 2->3"));
    }

    #[test]
    fn bigger_irreducible() {
        // Two headers entered from outside the cycle.
        assert!(!check("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5"));
    }

    #[test]
    fn alive_mask_restricts_scope() {
        // Whole graph irreducible, but the region {0,1,5} is fine.
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3 3->4").unwrap();
        let mut alive = vec![false; cfg.node_count()];
        alive[0] = true;
        alive[3] = true;
        alive[4] = true;
        assert!(is_reducible(cfg.graph(), cfg.entry(), Some(&alive)));
        assert!(!is_reducible(cfg.graph(), cfg.entry(), None));
    }

    #[test]
    fn entry_outside_scope_is_vacuously_reducible() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let alive = vec![false; 3];
        assert!(is_reducible(cfg.graph(), cfg.entry(), Some(&alive)));
    }

    #[test]
    fn single_node_subgraph() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let mut alive = vec![false; 3];
        alive[1] = true;
        assert!(is_reducible(
            cfg.graph(),
            crate::NodeId::from_index(1),
            Some(&alive)
        ));
    }
}
