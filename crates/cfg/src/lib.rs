//! Control-flow-graph substrate for the Program Structure Tree workspace.
//!
//! This crate provides the graph data structures and elementary traversals
//! that every other crate in the reproduction of Johnson, Pearson &
//! Pingali's *"The Program Structure Tree: Computing Control Regions in
//! Linear Time"* (PLDI 1994) builds upon:
//!
//! * [`Graph`] — an arena-based directed **multigraph** (parallel edges and
//!   self-loops allowed) with dense [`NodeId`]/[`EdgeId`] indices,
//! * [`Cfg`] — a validated control flow graph with unique `entry`/`exit`
//!   satisfying the paper's Definition 1,
//! * [`canonicalize`] — a repair pass that turns an *arbitrary* digraph
//!   (unreachable code, multiple returns, infinite loops) into a valid
//!   [`Cfg`] plus a [`CanonicalizationReport`] of every repair,
//! * [`Dfs`] — directed depth-first search with full edge classification,
//! * [`UndirectedDfs`] — the undirected traversal at the heart of the
//!   linear-time cycle-equivalence algorithm (tree edges + backedges only),
//! * [`Sccs`] — strongly connected components,
//! * [`reducibility`] / [`is_reducible`] — the reducibility test used by
//!   the region classifier, with irreducible retreating edges as witness,
//! * [`EdgeSplit`] — the edge-subdivision transform used as a definitional
//!   oracle for edge dominance, and
//! * DOT export helpers for debugging and the examples.
//!
//! # Examples
//!
//! Build the CFG of `if (c) { t } else { e }` and close it into the strongly
//! connected graph `S` of the paper's Theorem 2:
//!
//! ```
//! use pst_cfg::CfgBuilder;
//! # fn main() -> Result<(), pst_cfg::ValidateCfgError> {
//! let mut b = CfgBuilder::new();
//! let (entry, cond, t, e, exit) = (
//!     b.add_node(), b.add_node(), b.add_node(), b.add_node(), b.add_node(),
//! );
//! b.add_edge(entry, cond);
//! b.add_edge(cond, t);
//! b.add_edge(cond, e);
//! b.add_edge(t, exit);
//! b.add_edge(e, exit);
//! let cfg = b.finish(entry, exit)?;
//! let (s, back) = cfg.to_strongly_connected();
//! assert!(pst_cfg::is_strongly_connected(&s));
//! assert_eq!(s.source(back), exit);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonicalize;
mod cfg;
mod dfs;
mod dot;
mod graph;
mod ids;
mod reducibility;
mod scc;
mod split;
mod undirected;

pub use canonicalize::{
    canonicalize, CanonicalizationReport, Canonicalized, CanonicalizeError, CanonicalizeOptions,
    Repair, RepairCounts, UnreachablePolicy,
};
pub use cfg::{
    parse_edge_list, parse_edge_list_graph, parse_edge_list_with, Cfg, CfgBuilder, EdgeListOptions,
    ValidateCfgError,
};
pub use dfs::{Dfs, DirectedEdgeKind};
pub use dot::{cfg_to_dot, graph_to_dot, graph_to_dot_with};
pub use graph::Graph;
pub use ids::{EdgeId, NodeId};
pub use reducibility::{is_reducible, reducibility, Reducibility};
pub use scc::{is_strongly_connected, Sccs};
pub use split::EdgeSplit;
pub use undirected::{UndirectedDfs, UndirectedEdgeKind};
