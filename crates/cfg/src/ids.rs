//! Strongly typed identifiers for graph nodes and edges.
//!
//! Both [`NodeId`] and [`EdgeId`] are thin `u32` indices into the arenas of a
//! [`Graph`](crate::Graph). They are deliberately cheap to copy and order so
//! that analyses can use them as array indices via [`NodeId::index`] /
//! [`EdgeId::index`].

use std::fmt;

/// Identifier of a node inside a [`Graph`](crate::Graph).
///
/// Node ids are dense: the nodes of a graph with `n` nodes are exactly
/// `NodeId::from_index(0..n)`, which makes `Vec`-indexed side tables the
/// idiomatic way to attach analysis results to nodes.
///
/// # Examples
///
/// ```
/// use pst_cfg::NodeId;
/// let n = NodeId::from_index(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

/// Identifier of a directed edge inside a [`Graph`](crate::Graph).
///
/// Edge ids are dense in the same way as [`NodeId`]s. A multigraph may
/// contain several distinct edges with the same endpoints; their `EdgeId`s
/// distinguish them.
///
/// # Examples
///
/// ```
/// use pst_cfg::EdgeId;
/// let e = EdgeId::from_index(7);
/// assert_eq!(e.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 41, 65535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn edge_id_roundtrip() {
        for i in [0usize, 1, 41, 65535] {
            assert_eq!(EdgeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeId::from_index(5)), "n5");
        assert_eq!(format!("{:?}", EdgeId::from_index(5)), "e5");
        assert_eq!(format!("{}", NodeId::from_index(5)), "n5");
        assert_eq!(format!("{}", EdgeId::from_index(5)), "e5");
    }

    #[test]
    #[should_panic(expected = "node index overflows")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
