//! Edge-splitting transformation.
//!
//! [`EdgeSplit`] inserts a fresh *midpoint* node on every edge. Because the
//! original node ids are preserved, statements about **edge** dominance
//! reduce to statements about **node** dominance in the split graph:
//! edge `a` dominates node `n` in `G` iff `midpoint(a)` dominates `n` in
//! `split(G)`. The test suites use this as the definitional oracle for the
//! paper's SESE conditions (edge `a` dominates edge `b`, edge `b`
//! postdominates edge `a`, region membership of nodes).

use crate::{Cfg, EdgeId, Graph, NodeId};

/// A graph in which every original edge has been subdivided by a midpoint
/// node.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, EdgeSplit};
/// let cfg = parse_edge_list("0->1 1->2").unwrap();
/// let split = EdgeSplit::new(cfg.graph());
/// // 3 original nodes + 2 midpoints; each edge became two edges.
/// assert_eq!(split.graph().node_count(), 5);
/// assert_eq!(split.graph().edge_count(), 4);
/// let m = split.midpoint(cfg.graph().edges().next().unwrap());
/// assert_eq!(split.graph().in_degree(m), 1);
/// assert_eq!(split.graph().out_degree(m), 1);
/// ```
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    graph: Graph,
    midpoint: Vec<NodeId>,
}

impl EdgeSplit {
    /// Splits every edge of `original`.
    ///
    /// The returned graph contains the original nodes with identical ids,
    /// followed by one midpoint node per original edge (in edge-id order).
    pub fn new(original: &Graph) -> Self {
        let mut graph = Graph::with_capacity(
            original.node_count() + original.edge_count(),
            2 * original.edge_count(),
        );
        graph.add_nodes(original.node_count());
        let mut midpoint = Vec::with_capacity(original.edge_count());
        for e in original.edges() {
            let (s, t) = original.endpoints(e);
            let m = graph.add_node();
            graph.add_edge(s, m);
            graph.add_edge(m, t);
            midpoint.push(m);
        }
        EdgeSplit { graph, midpoint }
    }

    /// Splits every edge of a [`Cfg`]; entry/exit carry over unchanged.
    pub fn of_cfg(cfg: &Cfg) -> Self {
        EdgeSplit::new(cfg.graph())
    }

    /// The split graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Midpoint node introduced for the original edge `edge`.
    pub fn midpoint(&self, edge: EdgeId) -> NodeId {
        self.midpoint[edge.index()]
    }

    /// Whether `node` of the split graph is a midpoint (as opposed to an
    /// original node).
    pub fn is_midpoint(&self, node: NodeId) -> bool {
        node.index() >= self.graph.node_count() - self.midpoint.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_edge_list;

    #[test]
    fn preserves_original_node_ids() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let split = EdgeSplit::of_cfg(&cfg);
        for n in cfg.graph().nodes() {
            assert!(!split.is_midpoint(n));
        }
        assert_eq!(
            split.graph().node_count(),
            cfg.node_count() + cfg.edge_count()
        );
    }

    #[test]
    fn midpoints_have_degree_one_each_way() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let split = EdgeSplit::of_cfg(&cfg);
        for e in cfg.graph().edges() {
            let m = split.midpoint(e);
            assert!(split.is_midpoint(m));
            assert_eq!(split.graph().in_degree(m), 1);
            assert_eq!(split.graph().out_degree(m), 1);
            let (s, t) = cfg.graph().endpoints(e);
            assert_eq!(split.graph().predecessors(m).next(), Some(s));
            assert_eq!(split.graph().successors(m).next(), Some(t));
        }
    }

    #[test]
    fn self_loop_midpoint() {
        let cfg = parse_edge_list("0->1 1->1 1->2").unwrap();
        let split = EdgeSplit::of_cfg(&cfg);
        let loop_edge = cfg
            .graph()
            .edges()
            .find(|&e| cfg.graph().is_self_loop(e))
            .unwrap();
        let m = split.midpoint(loop_edge);
        let n1 = cfg.graph().source(loop_edge);
        assert_eq!(split.graph().predecessors(m).next(), Some(n1));
        assert_eq!(split.graph().successors(m).next(), Some(n1));
    }
}
