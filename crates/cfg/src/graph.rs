//! An arena-based directed multigraph.
//!
//! [`Graph`] is the storage substrate shared by every analysis in this
//! workspace. It supports parallel edges and self-loops (both occur in real
//! control flow graphs: a two-armed conditional whose arms are empty produces
//! parallel edges, and a one-block spin loop produces a self-loop), and it
//! hands out dense [`NodeId`]/[`EdgeId`] indices so that analyses can store
//! their results in plain vectors.

use crate::{EdgeId, NodeId};

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct NodeData {
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EdgeData {
    source: NodeId,
    target: NodeId,
}

/// A directed multigraph with dense node and edge ids.
///
/// Nodes and edges can only be added, never removed; analyses that need to
/// "delete" parts of a graph (e.g. the T1/T2 reducibility test) maintain
/// their own alive-sets instead. This keeps ids stable and side tables cheap.
///
/// # Examples
///
/// ```
/// use pst_cfg::Graph;
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// assert_eq!(g.source(e), a);
/// assert_eq!(g.target(e), b);
/// assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData::default());
        id
    }

    /// Adds `count` fresh nodes and returns their ids in order.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds a directed edge from `source` to `target` and returns its id.
    ///
    /// Parallel edges and self-loops are permitted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId) -> EdgeId {
        assert!(source.index() < self.nodes.len(), "unknown source node");
        assert!(target.index() < self.nodes.len(), "unknown target node");
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeData { source, target });
        self.nodes[source.index()].out_edges.push(id);
        self.nodes[target.index()].in_edges.push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all edge ids in index order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// The source node of `edge`.
    #[inline]
    pub fn source(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].source
    }

    /// The target node of `edge`.
    #[inline]
    pub fn target(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].target
    }

    /// Both endpoints of `edge` as `(source, target)`.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let d = self.edges[edge.index()];
        (d.source, d.target)
    }

    /// Given one endpoint of `edge`, returns the other endpoint.
    ///
    /// For a self-loop the "other" endpoint is the node itself.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `edge`.
    #[inline]
    pub fn other_endpoint(&self, edge: EdgeId, node: NodeId) -> NodeId {
        let d = self.edges[edge.index()];
        if d.source == node {
            d.target
        } else if d.target == node {
            d.source
        } else {
            panic!("{node:?} is not an endpoint of {edge:?}");
        }
    }

    /// Whether `edge` is a self-loop.
    #[inline]
    pub fn is_self_loop(&self, edge: EdgeId) -> bool {
        let d = self.edges[edge.index()];
        d.source == d.target
    }

    /// Outgoing edges of `node` in insertion order.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.index()].out_edges
    }

    /// Incoming edges of `node` in insertion order.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.index()].in_edges
    }

    /// Successor nodes of `node` (with multiplicity, in insertion order).
    pub fn successors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.out_edges(node).iter().map(|&e| self.target(e))
    }

    /// Predecessor nodes of `node` (with multiplicity, in insertion order).
    pub fn predecessors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.in_edges(node).iter().map(|&e| self.source(e))
    }

    /// Out-degree of `node` (counting parallel edges).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges(node).len()
    }

    /// In-degree of `node` (counting parallel edges).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges(node).len()
    }

    /// All edges incident to `node`, outgoing first then incoming.
    ///
    /// A self-loop on `node` appears twice (once per direction), which is the
    /// convention undirected traversals expect.
    pub fn incident_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        let d = &self.nodes[node.index()];
        d.out_edges.iter().chain(d.in_edges.iter()).copied()
    }

    /// Returns a new graph with every edge reversed.
    ///
    /// Node ids are preserved; edge ids are preserved too (edge `e` of the
    /// reverse graph connects `target(e) -> source(e)` of this graph).
    pub fn reversed(&self) -> Graph {
        let mut g = Graph::with_capacity(self.node_count(), self.edge_count());
        g.add_nodes(self.node_count());
        for e in self.edges() {
            let (s, t) = self.endpoints(e);
            g.add_edge(t, s);
        }
        g
    }

    /// Returns the set of nodes reachable from `start` following directed
    /// edges, as a boolean side table indexed by node.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        self.reachable_from_avoiding(start, None)
    }

    /// Reachability from `start`, optionally refusing to traverse `avoid`.
    ///
    /// This is the primitive behind the slow cycle-equivalence oracle: a
    /// cycle through edge `a` avoiding edge `b` exists iff `source(a)` is
    /// reachable from `target(a)` without crossing `b`.
    pub fn reachable_from_avoiding(&self, start: NodeId, avoid: Option<EdgeId>) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            for &e in self.out_edges(n) {
                if Some(e) == avoid {
                    continue;
                }
                let t = self.target(e);
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        let e = vec![
            g.add_edge(n[0], n[1]),
            g.add_edge(n[0], n[2]),
            g.add_edge(n[1], n[3]),
            g.add_edge(n[2], n[3]),
        ];
        (g, n, e)
    }

    #[test]
    fn counts_and_iteration() {
        let (g, n, e) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.nodes().collect::<Vec<_>>(), n);
        assert_eq!(g.edges().collect::<Vec<_>>(), e);
    }

    #[test]
    fn endpoints_and_adjacency() {
        let (g, n, e) = diamond();
        assert_eq!(g.endpoints(e[1]), (n[0], n[2]));
        assert_eq!(g.successors(n[0]).collect::<Vec<_>>(), vec![n[1], n[2]]);
        assert_eq!(g.predecessors(n[3]).collect::<Vec<_>>(), vec![n[1], n[2]]);
        assert_eq!(g.out_degree(n[0]), 2);
        assert_eq!(g.in_degree(n[3]), 2);
        assert_eq!(g.other_endpoint(e[0], n[0]), n[1]);
        assert_eq!(g.other_endpoint(e[0], n[1]), n[0]);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_rejects_foreign_node() {
        let (g, n, e) = diamond();
        let _ = g.other_endpoint(e[0], n[3]);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, b]);
    }

    #[test]
    fn self_loops() {
        let mut g = Graph::new();
        let a = g.add_node();
        let e = g.add_edge(a, a);
        assert!(g.is_self_loop(e));
        assert_eq!(g.other_endpoint(e, a), a);
        // A self-loop contributes to both degree counts.
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.incident_edges(a).count(), 2);
    }

    #[test]
    fn reversed_preserves_ids() {
        let (g, n, e) = diamond();
        let r = g.reversed();
        assert_eq!(r.node_count(), g.node_count());
        assert_eq!(r.edge_count(), g.edge_count());
        for &edge in &e {
            assert_eq!(r.source(edge), g.target(edge));
            assert_eq!(r.target(edge), g.source(edge));
        }
        assert_eq!(r.successors(n[3]).collect::<Vec<_>>(), vec![n[1], n[2]]);
    }

    #[test]
    fn reachability() {
        let (g, n, _) = diamond();
        let seen = g.reachable_from(n[1]);
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn reachability_avoiding_edge() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        let _a = g.add_edge(n[0], n[1]);
        let b = g.add_edge(n[1], n[2]);
        let seen = g.reachable_from_avoiding(n[0], Some(b));
        assert_eq!(seen, vec![true, true, false]);
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn add_edge_validates_endpoints() {
        let mut g = Graph::new();
        let a = g.add_node();
        let ghost = NodeId::from_index(7);
        let _ = g.add_edge(ghost, a);
    }
}
