//! Undirected depth-first search over a directed multigraph.
//!
//! The paper's Theorem 3 shows that cycle equivalence in a strongly
//! connected directed graph is preserved when edge directions are dropped,
//! and its fast algorithm runs on the resulting undirected multigraph.
//! [`UndirectedDfs`] provides exactly the traversal state that algorithm
//! needs: depth-first numbers, the spanning tree, and — because an
//! undirected DFS produces only tree edges and backedges — a partition of
//! the non-tree edges into *backedges* recorded at both endpoints
//! (descendant side and ancestor side). Self-loops are reported separately;
//! they form singleton cycle-equivalence classes and the main algorithm
//! skips them.

use crate::{EdgeId, Graph, NodeId};

/// Classification of an edge with respect to an undirected DFS tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UndirectedEdgeKind {
    /// Spanning-tree edge.
    Tree,
    /// Non-tree edge; in an undirected DFS it always connects a node to one
    /// of its tree ancestors.
    Back,
    /// Edge whose two endpoints coincide.
    SelfLoop,
    /// Edge in an unreached component (only when the graph is disconnected).
    Unreached,
}

/// Undirected depth-first search state over a directed [`Graph`].
///
/// Edge directions are ignored during traversal, so parallel and
/// anti-parallel edges are handled uniformly: the first edge between a pair
/// of nodes can become a tree edge, and every further edge between them
/// becomes a backedge.
///
/// # Examples
///
/// ```
/// use pst_cfg::{Graph, UndirectedDfs, UndirectedEdgeKind};
/// let mut g = Graph::new();
/// let n = g.add_nodes(3);
/// let e01 = g.add_edge(n[0], n[1]);
/// let e12 = g.add_edge(n[1], n[2]);
/// let e20 = g.add_edge(n[2], n[0]); // closes an (undirected) cycle
/// let dfs = UndirectedDfs::new(&g, n[0]);
/// assert!(dfs.is_connected());
/// assert_eq!(dfs.edge_kind(e01), UndirectedEdgeKind::Tree);
/// assert_eq!(dfs.edge_kind(e12), UndirectedEdgeKind::Tree);
/// assert_eq!(dfs.edge_kind(e20), UndirectedEdgeKind::Back);
/// ```
#[derive(Clone, Debug)]
pub struct UndirectedDfs {
    root: NodeId,
    node_count: usize,
    dfsnum: Vec<u32>,
    visited: Vec<bool>,
    nodes_by_dfsnum: Vec<NodeId>,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<NodeId>>,
    edge_kind: Vec<UndirectedEdgeKind>,
    /// Backedges whose descendant (lower) endpoint is this node.
    backedges_up: Vec<Vec<EdgeId>>,
    /// Backedges whose ancestor (upper) endpoint is this node.
    backedges_down: Vec<Vec<EdgeId>>,
    self_loops: Vec<EdgeId>,
}

impl UndirectedDfs {
    /// Runs an undirected DFS over `graph` from `root`.
    ///
    /// The search is iterative and therefore safe on arbitrarily deep
    /// graphs. If the graph is not connected (viewed undirected), nodes of
    /// other components keep `UndirectedEdgeKind::Unreached` edges and
    /// [`UndirectedDfs::is_connected`] returns `false`.
    pub fn new(graph: &Graph, root: NodeId) -> Self {
        let _span = pst_obs::Span::enter("undirected_dfs");
        pst_obs::counter!("dfs_edges_examined", graph.edge_count());
        let n = graph.node_count();
        let mut st = UndirectedDfs {
            root,
            node_count: n,
            dfsnum: vec![0; n],
            visited: vec![false; n],
            nodes_by_dfsnum: Vec::with_capacity(n),
            parent: vec![None; n],
            parent_edge: vec![None; n],
            children: vec![Vec::new(); n],
            edge_kind: vec![UndirectedEdgeKind::Unreached; graph.edge_count()],
            backedges_up: vec![Vec::new(); n],
            backedges_down: vec![Vec::new(); n],
            self_loops: Vec::new(),
        };
        // Per-node iterator state over incident edges (out then in).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        let mut edge_seen = vec![false; graph.edge_count()];

        st.discover(root, None, None, &mut stack);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let out_deg = graph.out_degree(node);
            let total = out_deg + graph.in_degree(node);
            if *next >= total {
                stack.pop();
                continue;
            }
            let edge = if *next < out_deg {
                graph.out_edges(node)[*next]
            } else {
                graph.in_edges(node)[*next - out_deg]
            };
            *next += 1;
            if edge_seen[edge.index()] {
                continue;
            }
            edge_seen[edge.index()] = true;
            if graph.is_self_loop(edge) {
                st.edge_kind[edge.index()] = UndirectedEdgeKind::SelfLoop;
                st.self_loops.push(edge);
                continue;
            }
            let other = graph.other_endpoint(edge, node);
            if !st.visited[other.index()] {
                st.edge_kind[edge.index()] = UndirectedEdgeKind::Tree;
                st.discover(other, Some(node), Some(edge), &mut stack);
            } else {
                // In an undirected DFS every non-tree edge from the node
                // being expanded leads to an ancestor (still on the stack):
                // a finished node would imply a cross edge, which undirected
                // DFS cannot produce.
                st.edge_kind[edge.index()] = UndirectedEdgeKind::Back;
                st.backedges_up[node.index()].push(edge);
                st.backedges_down[other.index()].push(edge);
            }
        }
        st
    }

    fn discover(
        &mut self,
        node: NodeId,
        parent: Option<NodeId>,
        via: Option<EdgeId>,
        stack: &mut Vec<(NodeId, usize)>,
    ) {
        self.visited[node.index()] = true;
        self.dfsnum[node.index()] = self.nodes_by_dfsnum.len() as u32;
        self.nodes_by_dfsnum.push(node);
        self.parent[node.index()] = parent;
        self.parent_edge[node.index()] = via;
        if let Some(p) = parent {
            self.children[p.index()].push(node);
        }
        stack.push((node, 0));
    }

    /// The root of the search.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether the whole graph was reached (undirected connectivity).
    pub fn is_connected(&self) -> bool {
        self.nodes_by_dfsnum.len() == self.node_count
    }

    /// Whether `node` was reached by the search.
    #[inline]
    pub fn is_reached(&self, node: NodeId) -> bool {
        self.visited[node.index()]
    }

    /// The lowest-numbered node the search did not reach, if any.
    pub fn first_unreached(&self) -> Option<NodeId> {
        self.visited
            .iter()
            .position(|&v| !v)
            .map(NodeId::from_index)
    }

    /// Depth-first (discovery) number of `node`.
    ///
    /// # Panics
    ///
    /// Meaningless (returns 0) for unreached nodes; check
    /// [`UndirectedDfs::is_connected`] first when the graph may be
    /// disconnected.
    #[inline]
    pub fn dfsnum(&self, node: NodeId) -> usize {
        self.dfsnum[node.index()] as usize
    }

    /// The node with the given depth-first number.
    #[inline]
    pub fn node_with_dfsnum(&self, dfsnum: usize) -> NodeId {
        self.nodes_by_dfsnum[dfsnum]
    }

    /// Nodes in discovery order (index = dfsnum).
    pub fn nodes_by_dfsnum(&self) -> &[NodeId] {
        &self.nodes_by_dfsnum
    }

    /// Tree parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Tree edge connecting `node` to its parent (`None` for the root).
    pub fn parent_edge(&self, node: NodeId) -> Option<EdgeId> {
        self.parent_edge[node.index()]
    }

    /// Tree children of `node`, in discovery order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Classification of `edge`.
    pub fn edge_kind(&self, edge: EdgeId) -> UndirectedEdgeKind {
        self.edge_kind[edge.index()]
    }

    /// Backedges whose lower (descendant) endpoint is `node` — the ones the
    /// cycle-equivalence sweep *pushes* at `node`.
    pub fn backedges_up(&self, node: NodeId) -> &[EdgeId] {
        &self.backedges_up[node.index()]
    }

    /// Backedges whose upper (ancestor) endpoint is `node` — the ones the
    /// cycle-equivalence sweep *deletes* at `node`.
    pub fn backedges_down(&self, node: NodeId) -> &[EdgeId] {
        &self.backedges_down[node.index()]
    }

    /// All self-loop edges found during the traversal.
    pub fn self_loops(&self) -> &[EdgeId] {
        &self.self_loops
    }

    /// For a backedge, its upper (ancestor) endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not a backedge of this traversal.
    pub fn back_upper(&self, graph: &Graph, edge: EdgeId) -> NodeId {
        assert_eq!(
            self.edge_kind[edge.index()],
            UndirectedEdgeKind::Back,
            "{edge:?} is not a backedge"
        );
        let (s, t) = graph.endpoints(edge);
        if self.dfsnum(s) < self.dfsnum(t) {
            s
        } else {
            t
        }
    }

    /// For a backedge, its lower (descendant) endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not a backedge of this traversal.
    pub fn back_lower(&self, graph: &Graph, edge: EdgeId) -> NodeId {
        assert_eq!(
            self.edge_kind[edge.index()],
            UndirectedEdgeKind::Back,
            "{edge:?} is not a backedge"
        );
        let (s, t) = graph.endpoints(edge);
        if self.dfsnum(s) < self.dfsnum(t) {
            t
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_plus_backedges_cover_everything() {
        // Directed triangle with an extra chord, traversed undirected.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        let edges = [
            g.add_edge(n[0], n[1]),
            g.add_edge(n[1], n[2]),
            g.add_edge(n[2], n[3]),
            g.add_edge(n[3], n[0]),
            g.add_edge(n[2], n[0]),
        ];
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert!(dfs.is_connected());
        let trees = edges
            .iter()
            .filter(|&&e| dfs.edge_kind(e) == UndirectedEdgeKind::Tree)
            .count();
        let backs = edges
            .iter()
            .filter(|&&e| dfs.edge_kind(e) == UndirectedEdgeKind::Back)
            .count();
        assert_eq!(trees, 3); // spanning tree of 4 nodes
        assert_eq!(backs, 2);
    }

    #[test]
    fn backedge_endpoints_are_ancestor_related() {
        let mut g = Graph::new();
        let n = g.add_nodes(5);
        for w in n.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let back = g.add_edge(n[4], n[1]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert_eq!(dfs.edge_kind(back), UndirectedEdgeKind::Back);
        assert_eq!(dfs.back_upper(&g, back), n[1]);
        assert_eq!(dfs.back_lower(&g, back), n[4]);
        assert_eq!(dfs.backedges_up(n[4]), &[back]);
        assert_eq!(dfs.backedges_down(n[1]), &[back]);
    }

    #[test]
    fn anti_parallel_pair_gives_tree_plus_back() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        let e1 = g.add_edge(n[0], n[1]);
        let e2 = g.add_edge(n[1], n[0]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert_eq!(dfs.edge_kind(e1), UndirectedEdgeKind::Tree);
        assert_eq!(dfs.edge_kind(e2), UndirectedEdgeKind::Back);
        assert_eq!(dfs.back_upper(&g, e2), n[0]);
    }

    #[test]
    fn parallel_pair_gives_tree_plus_back() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        let e1 = g.add_edge(n[0], n[1]);
        let e2 = g.add_edge(n[0], n[1]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert_eq!(dfs.edge_kind(e1), UndirectedEdgeKind::Tree);
        assert_eq!(dfs.edge_kind(e2), UndirectedEdgeKind::Back);
    }

    #[test]
    fn self_loops_are_separated() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        let l = g.add_edge(n[0], n[0]);
        let t = g.add_edge(n[0], n[1]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert_eq!(dfs.edge_kind(l), UndirectedEdgeKind::SelfLoop);
        assert_eq!(dfs.self_loops(), &[l]);
        assert_eq!(dfs.edge_kind(t), UndirectedEdgeKind::Tree);
        assert!(dfs.backedges_up(n[0]).is_empty());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        let _ = g.add_edge(n[0], n[1]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert!(!dfs.is_connected());
        assert_eq!(dfs.nodes_by_dfsnum().len(), 2);
    }

    #[test]
    fn children_in_discovery_order() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[0], n[3]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert_eq!(dfs.children(n[0]), &[n[1], n[2], n[3]]);
        assert_eq!(dfs.parent(n[2]), Some(n[0]));
    }

    #[test]
    fn deep_chain_is_stack_safe() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(50_000);
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let dfs = UndirectedDfs::new(&g, nodes[0]);
        assert!(dfs.is_connected());
        assert_eq!(dfs.dfsnum(nodes[49_999]), 49_999);
    }

    #[test]
    fn incoming_edges_are_traversed_undirected() {
        // Edge points 1 -> 0 but DFS starts at 0 and must still reach 1.
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        let e = g.add_edge(n[1], n[0]);
        let dfs = UndirectedDfs::new(&g, n[0]);
        assert!(dfs.is_connected());
        assert_eq!(dfs.edge_kind(e), UndirectedEdgeKind::Tree);
        assert_eq!(dfs.parent(n[1]), Some(n[0]));
    }
}
