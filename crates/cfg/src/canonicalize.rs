//! CFG canonicalization: repairing arbitrary digraphs into valid [`Cfg`]s.
//!
//! The paper's algorithms assume Definition-1 control flow graphs — unique
//! entry with no predecessors, unique exit with no successors, every node
//! on an entry→exit path. Graphs extracted from real programs routinely
//! break every one of those assumptions: unreachable code, functions with
//! several `return`s, infinite loops that never reach the exit, spin
//! self-loops on the entry block. [`canonicalize`] takes such a graph plus
//! a designated entry node and produces a valid [`Cfg`] together with a
//! [`CanonicalizationReport`] recording every repair it performed:
//!
//! * **pruning** (or, with [`UnreachablePolicy::Tether`], tethering) nodes
//!   unreachable from the entry,
//! * inserting a **synthetic entry** when the entry has predecessors,
//! * **merging multiple exits** (sink nodes) through a fresh sink,
//! * inserting a **synthetic exit** when no sink exists at all,
//! * adding **virtual `loop→exit` edges** from every terminal strongly
//!   connected component that cannot reach the exit (infinite loops), and
//! * optionally **splitting self-loops** through a fresh latch node.
//!
//! Canonicalizing an already-valid CFG is the identity: the returned graph
//! has the same node/edge ids and the report is empty. The pass is
//! idempotent, and its output always validates — the property tests in
//! `tests/canonicalize.rs` prove both claims over random degenerate
//! digraphs. See `docs/CANONICALIZATION.md` for how each repair affects
//! SESE regions and control regions, and for the deviation from the
//! paper's Definition 1 this introduces.

use std::error::Error;
use std::fmt;

use crate::{Cfg, Graph, NodeId, Sccs, ValidateCfgError};

/// What to do with nodes unreachable from the entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnreachablePolicy {
    /// Drop unreachable nodes (and their edges) from the output graph.
    ///
    /// This compacts node ids; use [`Canonicalized::node_map`] to translate
    /// input ids to output ids.
    #[default]
    Prune,
    /// Keep unreachable nodes, connecting each unreachable source component
    /// to the entry with a virtual edge.
    ///
    /// Analyses then see the unreachable code as if the entry could branch
    /// into it, which preserves node ids and keeps dead regions analyzable.
    Tether,
}

/// Tuning knobs for [`canonicalize`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CanonicalizeOptions {
    /// Policy for nodes unreachable from the entry.
    pub unreachable: UnreachablePolicy,
    /// Replace each self-loop `v→v` with `v→latch→v` through a fresh latch
    /// node. Off by default: the PST algorithms handle self-loops natively
    /// (each is a singleton cycle-equivalence class), but some downstream
    /// consumers (e.g. textbook dominator-based loop detectors) prefer
    /// loops with distinct header and latch.
    pub split_self_loops: bool,
}

/// One repair performed by [`canonicalize`].
///
/// All node ids refer to the **output** graph except
/// [`Repair::PrunedUnreachable`], whose node no longer exists and is
/// therefore named by its **input** id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repair {
    /// An unreachable input node was dropped ([`UnreachablePolicy::Prune`]).
    PrunedUnreachable {
        /// The dropped node, in input-graph ids.
        node: NodeId,
    },
    /// A virtual `entry→node` edge was added to make an unreachable
    /// component reachable ([`UnreachablePolicy::Tether`]).
    TetheredUnreachable {
        /// Target of the virtual edge: one representative per unreachable
        /// source component.
        node: NodeId,
    },
    /// The designated entry had predecessors, so a fresh entry node with a
    /// single edge to it was inserted.
    SyntheticEntry {
        /// The original entry (now an interior node).
        old_entry: NodeId,
        /// The fresh node that is now the entry.
        new_entry: NodeId,
    },
    /// The graph had no sink at all, so a fresh exit node was created
    /// (virtual `loop→exit` edges then connect it).
    SyntheticExit {
        /// The fresh exit node.
        exit: NodeId,
    },
    /// One of several sinks was routed into the fresh merged exit.
    MergedExit {
        /// A sink of the input graph.
        sink: NodeId,
        /// The fresh exit node all sinks now lead to.
        exit: NodeId,
    },
    /// A node that could not reach the exit (an infinite loop) got a
    /// virtual edge to the exit.
    VirtualLoopExit {
        /// Source of the virtual edge: one representative per terminal
        /// strongly connected component that cannot reach the exit.
        from: NodeId,
    },
    /// A self-loop `node→node` was replaced by `node→latch→node`.
    SplitSelfLoop {
        /// The node that carried the self-loop.
        node: NodeId,
        /// The fresh latch node.
        latch: NodeId,
    },
}

impl fmt::Display for Repair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Repair::PrunedUnreachable { node } => {
                write!(f, "pruned unreachable node {node} (input id)")
            }
            Repair::TetheredUnreachable { node } => {
                write!(f, "tethered unreachable node {node} to the entry")
            }
            Repair::SyntheticEntry {
                old_entry,
                new_entry,
            } => write!(
                f,
                "inserted synthetic entry {new_entry} (node {old_entry} had predecessors)"
            ),
            Repair::SyntheticExit { exit } => {
                write!(f, "inserted synthetic exit {exit} (graph had no sink)")
            }
            Repair::MergedExit { sink, exit } => {
                write!(f, "merged exit: routed sink {sink} into fresh exit {exit}")
            }
            Repair::VirtualLoopExit { from } => {
                write!(f, "added virtual loop exit edge {from}->exit (infinite loop)")
            }
            Repair::SplitSelfLoop { node, latch } => {
                write!(f, "split self-loop on {node} through latch {latch}")
            }
        }
    }
}

/// Per-kind totals of the repairs in a [`CanonicalizationReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairCounts {
    /// Unreachable nodes dropped.
    pub pruned_unreachable: usize,
    /// Unreachable components tethered to the entry.
    pub tethered_unreachable: usize,
    /// Synthetic entry nodes inserted (0 or 1).
    pub synthetic_entries: usize,
    /// Synthetic exit nodes inserted for sink-less graphs (0 or 1).
    pub synthetic_exits: usize,
    /// Sinks merged into a fresh exit.
    pub merged_exits: usize,
    /// Virtual `loop→exit` edges added.
    pub virtual_loop_exits: usize,
    /// Self-loops split through latch nodes.
    pub split_self_loops: usize,
}

/// Everything [`canonicalize`] did to make the input a valid [`Cfg`].
///
/// Renders as one line per repair via [`fmt::Display`]; an empty report
/// means the input was already valid and was returned unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CanonicalizationReport {
    repairs: Vec<Repair>,
}

impl CanonicalizationReport {
    /// The individual repairs, in the order they were performed.
    pub fn repairs(&self) -> &[Repair] {
        &self.repairs
    }

    /// True when no repair was needed: the input was already a valid CFG
    /// and the output graph is identical to it (same node and edge ids).
    pub fn is_identity(&self) -> bool {
        self.repairs.is_empty()
    }

    /// Per-kind totals.
    pub fn counts(&self) -> RepairCounts {
        let mut c = RepairCounts::default();
        for r in &self.repairs {
            match r {
                Repair::PrunedUnreachable { .. } => c.pruned_unreachable += 1,
                Repair::TetheredUnreachable { .. } => c.tethered_unreachable += 1,
                Repair::SyntheticEntry { .. } => c.synthetic_entries += 1,
                Repair::SyntheticExit { .. } => c.synthetic_exits += 1,
                Repair::MergedExit { .. } => c.merged_exits += 1,
                Repair::VirtualLoopExit { .. } => c.virtual_loop_exits += 1,
                Repair::SplitSelfLoop { .. } => c.split_self_loops += 1,
            }
        }
        c
    }

    fn push(&mut self, repair: Repair) {
        match repair {
            Repair::PrunedUnreachable { .. } => pst_obs::counter!("canon_pruned_unreachable"),
            Repair::TetheredUnreachable { .. } => pst_obs::counter!("canon_tethered_unreachable"),
            Repair::SyntheticEntry { .. } => pst_obs::counter!("canon_synthetic_entries"),
            Repair::SyntheticExit { .. } => pst_obs::counter!("canon_synthetic_exits"),
            Repair::MergedExit { .. } => pst_obs::counter!("canon_merged_exits"),
            Repair::VirtualLoopExit { .. } => pst_obs::counter!("canon_virtual_loop_exits"),
            Repair::SplitSelfLoop { .. } => pst_obs::counter!("canon_split_self_loops"),
        }
        self.repairs.push(repair);
    }
}

impl fmt::Display for CanonicalizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.repairs.is_empty() {
            return writeln!(f, "no repairs: input was already a valid CFG");
        }
        for r in &self.repairs {
            writeln!(f, "- {r}")?;
        }
        Ok(())
    }
}

/// Result of a successful [`canonicalize`] run.
#[derive(Clone, Debug)]
pub struct Canonicalized {
    /// The repaired, validated control flow graph.
    pub cfg: Cfg,
    /// Every repair performed, in order.
    pub report: CanonicalizationReport,
    /// Input node id → output node id; `None` for pruned nodes. Output
    /// nodes beyond the mapped range are synthetic (entry/exit/latches).
    pub node_map: Vec<Option<NodeId>>,
}

/// Why [`canonicalize`] could not even start repairing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanonicalizeError {
    /// The input graph has no nodes; there is nothing to designate as entry.
    Empty,
    /// The designated entry is not a node of the input graph.
    UnknownEntry(NodeId),
    /// The repaired graph still failed validation. This indicates a bug in
    /// the canonicalizer itself (the property tests assert it never
    /// happens) but is reported as an error rather than a panic so that no
    /// input can crash a caller.
    Unrepairable(ValidateCfgError),
}

impl fmt::Display for CanonicalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonicalizeError::Empty => write!(f, "cannot canonicalize an empty graph"),
            CanonicalizeError::UnknownEntry(n) => {
                write!(f, "entry node {n} is not a node of the graph")
            }
            CanonicalizeError::Unrepairable(e) => {
                write!(f, "canonicalization left the graph invalid: {e}")
            }
        }
    }
}

impl Error for CanonicalizeError {}

/// Repairs an arbitrary directed graph with a designated entry into a
/// valid [`Cfg`], recording every repair.
///
/// Runs in `O(V + E)` time: one forward reachability pass, at most two
/// SCC computations, and one backward reachability pass.
///
/// # Errors
///
/// Only [`CanonicalizeError::Empty`] and [`CanonicalizeError::UnknownEntry`]
/// occur in practice; any directed graph with at least one node and a
/// valid entry id canonicalizes successfully.
///
/// # Examples
///
/// A two-exit graph with an unreachable node and an infinite loop:
///
/// ```
/// use pst_cfg::{canonicalize, CanonicalizeOptions, Graph};
/// let mut g = Graph::new();
/// let n = g.add_nodes(6);
/// g.add_edge(n[0], n[1]); // entry -> sink 1
/// g.add_edge(n[0], n[2]); // entry -> sink 2
/// g.add_edge(n[0], n[3]);
/// g.add_edge(n[3], n[4]); // 3 <-> 4: infinite loop
/// g.add_edge(n[4], n[3]);
/// // n[5] is unreachable
/// let c = canonicalize(&g, n[0], &CanonicalizeOptions::default()).unwrap();
/// let counts = c.report.counts();
/// assert_eq!(counts.pruned_unreachable, 1);
/// assert_eq!(counts.merged_exits, 2);
/// assert_eq!(counts.virtual_loop_exits, 1);
/// assert_eq!(c.cfg.graph().in_degree(c.cfg.entry()), 0);
/// assert_eq!(c.cfg.graph().out_degree(c.cfg.exit()), 0);
/// ```
pub fn canonicalize(
    input: &Graph,
    entry: NodeId,
    options: &CanonicalizeOptions,
) -> Result<Canonicalized, CanonicalizeError> {
    let _span = pst_obs::Span::enter("canonicalize");
    pst_obs::gauge!("canonicalize_input_nodes", input.node_count());
    pst_obs::gauge!("canonicalize_input_edges", input.edge_count());
    if input.is_empty() {
        return Err(CanonicalizeError::Empty);
    }
    if entry.index() >= input.node_count() {
        return Err(CanonicalizeError::UnknownEntry(entry));
    }
    let mut report = CanonicalizationReport::default();

    // 1. Copy the graph, pruning nodes unreachable from the entry if asked.
    //    Reachable nodes keep their relative order, so a fully-reachable
    //    input round-trips with identical ids.
    let prune = options.unreachable == UnreachablePolicy::Prune;
    let reachable = input.reachable_from(entry);
    let mut g = Graph::with_capacity(input.node_count() + 2, input.edge_count() + 2);
    let mut node_map: Vec<Option<NodeId>> = vec![None; input.node_count()];
    for n in input.nodes() {
        if !prune || reachable[n.index()] {
            node_map[n.index()] = Some(g.add_node());
        } else {
            report.push(Repair::PrunedUnreachable { node: n });
        }
    }
    for e in input.edges() {
        let (s, t) = input.endpoints(e);
        let (Some(s), Some(t)) = (node_map[s.index()], node_map[t.index()]) else {
            // An edge with a pruned endpoint. Its source is necessarily
            // pruned too (a reachable source would make the target
            // reachable), so dropping it loses nothing reachable.
            continue;
        };
        if s == t && options.split_self_loops {
            let latch = g.add_node();
            g.add_edge(s, latch);
            g.add_edge(latch, s);
            report.push(Repair::SplitSelfLoop { node: s, latch });
        } else {
            g.add_edge(s, t);
        }
    }
    let mut entry = node_map[entry.index()].expect("entry is trivially reachable from itself");

    // 2. Tether: virtually branch from the entry into each unreachable
    //    *source* component. Every unreachable node has only unreachable
    //    ancestors, so one edge per source SCC of the unreachable
    //    subgraph reconnects everything in a single pass.
    if !prune {
        let reach = g.reachable_from(entry);
        if reach.iter().any(|&r| !r) {
            let sccs = Sccs::new(&g);
            let mut external_pred = vec![false; sccs.count()];
            for e in g.edges() {
                let (s, t) = g.endpoints(e);
                if sccs.component(s) != sccs.component(t) {
                    external_pred[sccs.component(t)] = true;
                }
            }
            let mut rep: Vec<Option<NodeId>> = vec![None; sccs.count()];
            for n in g.nodes() {
                let c = sccs.component(n);
                if !reach[n.index()] && !external_pred[c] && rep[c].is_none() {
                    rep[c] = Some(n);
                }
            }
            for node in rep.into_iter().flatten() {
                g.add_edge(entry, node);
                report.push(Repair::TetheredUnreachable { node });
            }
        }
    }

    // 3. The entry must have no predecessors (self-loops on the entry
    //    count). Insert a synthetic entry above it if it does.
    if g.in_degree(entry) > 0 {
        let new_entry = g.add_node();
        g.add_edge(new_entry, entry);
        report.push(Repair::SyntheticEntry {
            old_entry: entry,
            new_entry,
        });
        entry = new_entry;
    }

    // 4. Choose the exit. Sinks are nodes with no successors; the entry is
    //    never eligible (entry == exit is invalid).
    let sinks: Vec<NodeId> = g
        .nodes()
        .filter(|&n| g.out_degree(n) == 0 && n != entry)
        .collect();
    let exit = match sinks.as_slice() {
        [unique] => *unique,
        [] => {
            let exit = g.add_node();
            report.push(Repair::SyntheticExit { exit });
            exit
        }
        _ => {
            let exit = g.add_node();
            for &sink in &sinks {
                g.add_edge(sink, exit);
                report.push(Repair::MergedExit { sink, exit });
            }
            exit
        }
    };

    // 5. Virtual loop→exit edges. A node that cannot reach the exit can
    //    reach some *terminal* SCC of the condensation (a sink of that
    //    DAG), and a terminal SCC either is the exit's or cannot reach the
    //    exit at all. One virtual edge per offending terminal SCC therefore
    //    connects every infinite loop — and, when the exit was synthesized
    //    in step 4, makes the fresh exit reachable — in a single pass.
    let reaches_exit = g.reversed().reachable_from(exit);
    if reaches_exit.iter().any(|&r| !r) {
        let sccs = Sccs::new(&g);
        let mut external_succ = vec![false; sccs.count()];
        for e in g.edges() {
            let (s, t) = g.endpoints(e);
            if sccs.component(s) != sccs.component(t) {
                external_succ[sccs.component(s)] = true;
            }
        }
        let mut rep: Vec<Option<NodeId>> = vec![None; sccs.count()];
        for n in g.nodes() {
            let c = sccs.component(n);
            if !reaches_exit[n.index()] && !external_succ[c] && rep[c].is_none() {
                rep[c] = Some(n);
            }
        }
        for from in rep.into_iter().flatten() {
            g.add_edge(from, exit);
            report.push(Repair::VirtualLoopExit { from });
        }
    }

    pst_obs::gauge!("canonicalize_output_nodes", g.node_count());
    pst_obs::gauge!("canonicalize_output_edges", g.edge_count());
    let cfg = Cfg::from_graph(g, entry, exit).map_err(CanonicalizeError::Unrepairable)?;
    Ok(Canonicalized {
        cfg,
        report,
        node_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(g: &Graph, entry: NodeId) -> Canonicalized {
        canonicalize(g, entry, &CanonicalizeOptions::default()).unwrap()
    }

    #[test]
    fn valid_cfg_is_identity() {
        // Diamond: already a valid CFG.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[1], n[3]);
        g.add_edge(n[2], n[3]);
        let c = canon(&g, n[0]);
        assert!(c.report.is_identity());
        assert_eq!(c.cfg.graph(), &g);
        assert_eq!(c.cfg.entry(), n[0]);
        assert_eq!(c.cfg.exit(), n[3]);
        assert!(c.node_map.iter().enumerate().all(|(i, m)| m
            .map(|x| x.index() == i)
            .unwrap_or(false)));
    }

    #[test]
    fn prunes_unreachable_cycle() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[2], n[3]); // unreachable pair
        g.add_edge(n[3], n[2]);
        let c = canon(&g, n[0]);
        assert_eq!(c.cfg.node_count(), 2);
        assert_eq!(c.report.counts().pruned_unreachable, 2);
        assert_eq!(c.node_map[2], None);
        assert_eq!(c.node_map[3], None);
    }

    #[test]
    fn tethers_unreachable_cycle_with_one_edge() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[3], n[2]);
        let opts = CanonicalizeOptions {
            unreachable: UnreachablePolicy::Tether,
            ..Default::default()
        };
        let c = canonicalize(&g, n[0], &opts).unwrap();
        let counts = c.report.counts();
        assert_eq!(counts.pruned_unreachable, 0);
        // One tether edge for the {2,3} source component.
        assert_eq!(counts.tethered_unreachable, 1);
        assert!(c.node_map.iter().all(|m| m.is_some()));
        // The cycle cannot reach any sink, so it also needs a virtual exit.
        assert_eq!(counts.virtual_loop_exits, 1);
    }

    #[test]
    fn entry_with_predecessor_gets_synthetic_entry() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]); // back into the entry
        g.add_edge(n[1], n[2]);
        let c = canon(&g, n[0]);
        assert_eq!(c.report.counts().synthetic_entries, 1);
        assert_eq!(c.cfg.graph().in_degree(c.cfg.entry()), 0);
        assert_ne!(c.cfg.entry(), n[0]);
    }

    #[test]
    fn entry_self_loop_forces_synthetic_entry() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_edge(n[0], n[0]);
        g.add_edge(n[0], n[1]);
        let c = canon(&g, n[0]);
        assert_eq!(c.report.counts().synthetic_entries, 1);
        assert_eq!(c.cfg.graph().in_degree(c.cfg.entry()), 0);
    }

    #[test]
    fn multiple_returns_merge_into_fresh_exit() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[2]); // two sinks: 1 and 2
        let c = canon(&g, n[0]);
        assert_eq!(c.report.counts().merged_exits, 2);
        assert_eq!(c.cfg.graph().in_degree(c.cfg.exit()), 2);
        assert_eq!(c.cfg.graph().out_degree(c.cfg.exit()), 0);
    }

    #[test]
    fn infinite_loop_gets_virtual_exit_edge() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[1]); // 1 <-> 2 never terminates
        let c = canon(&g, n[0]);
        let counts = c.report.counts();
        assert_eq!(counts.synthetic_exits, 1);
        assert_eq!(counts.virtual_loop_exits, 1);
    }

    #[test]
    fn chained_loops_get_one_virtual_edge_from_the_terminal_scc() {
        // 0 -> 1 <-> 2 -> 3 <-> 4: only the terminal loop {3,4} needs the
        // virtual edge; {1,2} reaches the exit through it.
        let mut g = Graph::new();
        let n = g.add_nodes(5);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[1]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[3]);
        let c = canon(&g, n[0]);
        assert_eq!(c.report.counts().virtual_loop_exits, 1);
    }

    #[test]
    fn single_node_graph_canonicalizes() {
        let mut g = Graph::new();
        let n = g.add_node();
        let c = canon(&g, n);
        assert_eq!(c.cfg.node_count(), 2);
        assert_eq!(c.report.counts().synthetic_exits, 1);
    }

    #[test]
    fn single_node_self_loop_canonicalizes() {
        let mut g = Graph::new();
        let n = g.add_node();
        g.add_edge(n, n);
        let c = canon(&g, n);
        let counts = c.report.counts();
        assert_eq!(counts.synthetic_entries, 1);
        assert_eq!(counts.synthetic_exits, 1);
        assert_eq!(counts.virtual_loop_exits, 1);
    }

    #[test]
    fn split_self_loops_option() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[1]);
        g.add_edge(n[1], n[2]);
        let opts = CanonicalizeOptions {
            split_self_loops: true,
            ..Default::default()
        };
        let c = canonicalize(&g, n[0], &opts).unwrap();
        assert_eq!(c.report.counts().split_self_loops, 1);
        let out = c.cfg.graph();
        assert!(out.edges().all(|e| !out.is_self_loop(e)));
        assert_eq!(out.node_count(), 4);
    }

    #[test]
    fn idempotent_on_repaired_output() {
        let mut g = Graph::new();
        let n = g.add_nodes(6);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[3], n[4]); // unreachable
        g.add_edge(n[1], n[1]); // self-loop
        g.add_edge(n[2], n[0]); // entry predecessor
        // n[5] isolated
        let c = canon(&g, n[0]);
        let again = canon(c.cfg.graph(), c.cfg.entry());
        assert!(again.report.is_identity());
        assert_eq!(again.cfg.graph(), c.cfg.graph());
    }

    #[test]
    fn empty_and_unknown_entry_are_errors() {
        let g = Graph::new();
        let err = canonicalize(&g, NodeId::from_index(0), &CanonicalizeOptions::default())
            .unwrap_err();
        assert_eq!(err, CanonicalizeError::Empty);
        let mut g = Graph::new();
        g.add_node();
        let ghost = NodeId::from_index(9);
        let err = canonicalize(&g, ghost, &CanonicalizeOptions::default()).unwrap_err();
        assert_eq!(err, CanonicalizeError::UnknownEntry(ghost));
    }

    #[test]
    fn report_renders_one_line_per_repair() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        // n[2] unreachable
        let c = canon(&g, n[0]);
        let text = c.report.to_string();
        assert!(text.contains("pruned unreachable node n2"), "{text}");
        let id = canon(c.cfg.graph(), c.cfg.entry());
        assert!(id.report.to_string().contains("no repairs"));
    }
}
