//! Strongly connected components (iterative Tarjan).
//!
//! Used to check the paper's precondition that cycle equivalence is defined
//! within a strongly connected graph, and as a general substrate utility.

use crate::{Graph, NodeId};

/// Partition of a graph's nodes into strongly connected components.
///
/// Components are numbered in *reverse topological order* of the condensed
/// graph: if there is an edge from a node of component `i` to a node of a
/// different component `j`, then `i > j`.
///
/// # Examples
///
/// ```
/// use pst_cfg::{Graph, Sccs};
/// let mut g = Graph::new();
/// let n = g.add_nodes(3);
/// g.add_edge(n[0], n[1]);
/// g.add_edge(n[1], n[0]); // {0,1} form a cycle
/// g.add_edge(n[1], n[2]);
/// let sccs = Sccs::new(&g);
/// assert_eq!(sccs.count(), 2);
/// assert_eq!(sccs.component(n[0]), sccs.component(n[1]));
/// assert_ne!(sccs.component(n[0]), sccs.component(n[2]));
/// ```
#[derive(Clone, Debug)]
pub struct Sccs {
    component: Vec<usize>,
    count: usize,
}

impl Sccs {
    /// Computes the strongly connected components of `graph`.
    pub fn new(graph: &Graph) -> Self {
        const UNVISITED: usize = usize::MAX;
        let n = graph.node_count();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut component = vec![UNVISITED; n];
        let mut scc_stack: Vec<NodeId> = Vec::new();
        let mut count = 0usize;
        let mut next_index = 0usize;

        // Explicit call stack: (node, next out-edge position).
        let mut call: Vec<(NodeId, usize)> = Vec::new();
        for start in graph.nodes() {
            if index[start.index()] != UNVISITED {
                continue;
            }
            index[start.index()] = next_index;
            lowlink[start.index()] = next_index;
            next_index += 1;
            scc_stack.push(start);
            on_stack[start.index()] = true;
            call.push((start, 0));

            while let Some(&mut (v, ref mut next)) = call.last_mut() {
                let out = graph.out_edges(v);
                if *next < out.len() {
                    let w = graph.target(out[*next]);
                    *next += 1;
                    if index[w.index()] == UNVISITED {
                        index[w.index()] = next_index;
                        lowlink[w.index()] = next_index;
                        next_index += 1;
                        scc_stack.push(w);
                        on_stack[w.index()] = true;
                        call.push((w, 0));
                    } else if on_stack[w.index()] {
                        lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        loop {
                            let w = scc_stack.pop().expect("scc stack underflow");
                            on_stack[w.index()] = false;
                            component[w.index()] = count;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                }
            }
        }
        Sccs { component, count }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component number of `node` (reverse topological order).
    pub fn component(&self, node: NodeId) -> usize {
        self.component[node.index()]
    }

    /// Whether the whole graph is one strongly connected component.
    pub fn is_strongly_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Convenience: whether `graph` is strongly connected.
///
/// # Examples
///
/// ```
/// use pst_cfg::{Graph, is_strongly_connected};
/// let mut g = Graph::new();
/// let n = g.add_nodes(2);
/// g.add_edge(n[0], n[1]);
/// assert!(!is_strongly_connected(&g));
/// g.add_edge(n[1], n[0]);
/// assert!(is_strongly_connected(&g));
/// ```
pub fn is_strongly_connected(graph: &Graph) -> bool {
    if graph.is_empty() {
        return true;
    }
    Sccs::new(graph).is_strongly_connected()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_has_singleton_components() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[1], n[3]);
        let sccs = Sccs::new(&g);
        assert_eq!(sccs.count(), 4);
        let mut comps: Vec<_> = n.iter().map(|&x| sccs.component(x)).collect();
        comps.dedup();
        assert_eq!(comps.len(), 4);
    }

    #[test]
    fn reverse_topological_numbering() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        let sccs = Sccs::new(&g);
        // Edges go from higher to lower component numbers.
        assert!(sccs.component(n[0]) > sccs.component(n[1]));
        assert!(sccs.component(n[1]) > sccs.component(n[2]));
    }

    #[test]
    fn two_cycles_bridge() {
        let mut g = Graph::new();
        let n = g.add_nodes(5);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[2]);
        let sccs = Sccs::new(&g);
        assert_eq!(sccs.count(), 2);
        assert_eq!(sccs.component(n[2]), sccs.component(n[4]));
        assert_ne!(sccs.component(n[0]), sccs.component(n[2]));
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_edge(n[0], n[0]);
        g.add_edge(n[0], n[1]);
        let sccs = Sccs::new(&g);
        assert_eq!(sccs.count(), 2);
    }

    #[test]
    fn strongly_connected_cycle() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4]);
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph_is_trivially_strongly_connected() {
        assert!(is_strongly_connected(&Graph::new()));
    }

    #[test]
    fn large_cycle_is_stack_safe() {
        let mut g = Graph::new();
        let n = g.add_nodes(60_000);
        for i in 0..n.len() {
            g.add_edge(n[i], n[(i + 1) % n.len()]);
        }
        assert!(is_strongly_connected(&g));
    }
}
