//! Directed depth-first search with edge classification.
//!
//! [`Dfs`] performs an iterative (stack-safe) depth-first traversal from a
//! root, visiting out-edges in insertion order — the same order a recursive
//! implementation would use. It records pre/post numbering, the spanning
//! tree, the classification of every examined edge (tree, back, forward,
//! cross), and the order in which edges were first examined. The examination
//! order is what the PST construction relies on: the paper observes that any
//! directed DFS of a CFG meets the edges of one cycle-equivalence class in
//! dominance order.

use crate::{EdgeId, Graph, NodeId};

/// Classification of a directed edge with respect to a DFS spanning tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DirectedEdgeKind {
    /// First edge along which the target was discovered.
    Tree,
    /// Edge to an ancestor that is still open (includes self-loops).
    Back,
    /// Edge to an already-finished proper descendant.
    Forward,
    /// Edge to an already-finished non-descendant.
    Cross,
}

/// Result of a directed depth-first search from a root node.
///
/// Nodes not reachable from the root have no numbers and their incident
/// edges may be unclassified.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, Dfs, DirectedEdgeKind};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3 2->3").unwrap();
/// let dfs = Dfs::new(cfg.graph(), cfg.entry());
/// // 2 -> 1 closes a loop: it must be a back edge.
/// let back = cfg.graph().edges().find(|&e| {
///     cfg.graph().source(e).index() == 2 && cfg.graph().target(e).index() == 1
/// }).unwrap();
/// assert_eq!(dfs.edge_kind(back), Some(DirectedEdgeKind::Back));
/// ```
#[derive(Clone, Debug)]
pub struct Dfs {
    root: NodeId,
    preorder: Vec<Option<u32>>,
    postorder: Vec<Option<u32>>,
    parent_edge: Vec<Option<EdgeId>>,
    preorder_nodes: Vec<NodeId>,
    postorder_nodes: Vec<NodeId>,
    edge_kind: Vec<Option<DirectedEdgeKind>>,
    edge_exam_order: Vec<EdgeId>,
}

impl Dfs {
    /// Runs a depth-first search over `graph` starting at `root`.
    pub fn new(graph: &Graph, root: NodeId) -> Self {
        let n = graph.node_count();
        let mut dfs = Dfs {
            root,
            preorder: vec![None; n],
            postorder: vec![None; n],
            parent_edge: vec![None; n],
            preorder_nodes: Vec::with_capacity(n),
            postorder_nodes: Vec::with_capacity(n),
            edge_kind: vec![None; graph.edge_count()],
            edge_exam_order: Vec::with_capacity(graph.edge_count()),
        };
        // `open[v]` is true while v is on the DFS stack (discovered, not
        // finished); used to distinguish back edges from cross/forward edges.
        let mut open = vec![false; n];
        let mut stack: Vec<(NodeId, usize)> = Vec::new();

        dfs.discover(root, None, &mut open, &mut stack);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let out = graph.out_edges(node);
            if *next < out.len() {
                let edge = out[*next];
                *next += 1;
                dfs.edge_exam_order.push(edge);
                let target = graph.target(edge);
                let kind = if dfs.preorder[target.index()].is_none() {
                    dfs.discover(target, Some(edge), &mut open, &mut stack);
                    DirectedEdgeKind::Tree
                } else if open[target.index()] {
                    DirectedEdgeKind::Back
                } else if dfs.preorder[node.index()] < dfs.preorder[target.index()] {
                    DirectedEdgeKind::Forward
                } else {
                    DirectedEdgeKind::Cross
                };
                dfs.edge_kind[edge.index()] = Some(kind);
            } else {
                open[node.index()] = false;
                dfs.postorder[node.index()] = Some(dfs.postorder_nodes.len() as u32);
                dfs.postorder_nodes.push(node);
                stack.pop();
            }
        }
        dfs
    }

    fn discover(
        &mut self,
        node: NodeId,
        via: Option<EdgeId>,
        open: &mut [bool],
        stack: &mut Vec<(NodeId, usize)>,
    ) {
        self.preorder[node.index()] = Some(self.preorder_nodes.len() as u32);
        self.preorder_nodes.push(node);
        self.parent_edge[node.index()] = via;
        open[node.index()] = true;
        stack.push((node, 0));
    }

    /// The root the search started from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Preorder (discovery) number of `node`, or `None` if unreachable.
    pub fn preorder_number(&self, node: NodeId) -> Option<usize> {
        self.preorder[node.index()].map(|x| x as usize)
    }

    /// Postorder (finish) number of `node`, or `None` if unreachable.
    pub fn postorder_number(&self, node: NodeId) -> Option<usize> {
        self.postorder[node.index()].map(|x| x as usize)
    }

    /// The tree edge through which `node` was discovered (`None` for the
    /// root and unreachable nodes).
    pub fn parent_edge(&self, node: NodeId) -> Option<EdgeId> {
        self.parent_edge[node.index()]
    }

    /// Nodes in discovery (pre-) order.
    pub fn preorder_nodes(&self) -> &[NodeId] {
        &self.preorder_nodes
    }

    /// Nodes in finish (post-) order.
    pub fn postorder_nodes(&self) -> &[NodeId] {
        &self.postorder_nodes
    }

    /// Nodes in reverse postorder — the canonical iteration order for
    /// forward data-flow problems.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut v = self.postorder_nodes.clone();
        v.reverse();
        v
    }

    /// Classification of `edge`, or `None` if its source was unreachable.
    pub fn edge_kind(&self, edge: EdgeId) -> Option<DirectedEdgeKind> {
        self.edge_kind[edge.index()]
    }

    /// Every examined edge, in first-examination order.
    pub fn edges_in_examination_order(&self) -> &[EdgeId] {
        &self.edge_exam_order
    }

    /// Number of nodes reached from the root.
    pub fn reached_count(&self) -> usize {
        self.preorder_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_edge_list;

    fn kind_of(dfs: &Dfs, g: &Graph, s: usize, t: usize) -> DirectedEdgeKind {
        let e = g
            .edges()
            .find(|&e| g.source(e).index() == s && g.target(e).index() == t)
            .unwrap();
        dfs.edge_kind(e).unwrap()
    }

    #[test]
    fn straight_line_numbers() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let dfs = Dfs::new(cfg.graph(), cfg.entry());
        assert_eq!(dfs.preorder_number(cfg.entry()), Some(0));
        assert_eq!(dfs.postorder_number(cfg.entry()), Some(2));
        assert_eq!(dfs.reached_count(), 3);
        assert_eq!(
            dfs.reverse_postorder()
                .iter()
                .map(|n| n.index())
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn classifies_all_four_kinds() {
        // 0->1 (tree), 1->2 (tree), 2->1 (back), 1->3 (tree), 0->3 (cross or
        // forward depending on order), 0->2 (forward).
        let cfg = parse_edge_list("0->1 1->2 2->1 2->3 1->3 0->3").unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        assert_eq!(kind_of(&dfs, g, 0, 1), DirectedEdgeKind::Tree);
        assert_eq!(kind_of(&dfs, g, 1, 2), DirectedEdgeKind::Tree);
        assert_eq!(kind_of(&dfs, g, 2, 1), DirectedEdgeKind::Back);
        assert_eq!(kind_of(&dfs, g, 2, 3), DirectedEdgeKind::Tree);
        assert_eq!(kind_of(&dfs, g, 1, 3), DirectedEdgeKind::Forward);
        assert_eq!(kind_of(&dfs, g, 0, 3), DirectedEdgeKind::Forward);
    }

    #[test]
    fn classifies_cross_edge() {
        let cfg = parse_edge_list("0->1 1->3 0->2 2->3 2->1").unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        // 0->1 explored first, so subtree {1,3} finishes before 2 starts.
        assert_eq!(kind_of(&dfs, g, 2, 1), DirectedEdgeKind::Cross);
        assert_eq!(kind_of(&dfs, g, 2, 3), DirectedEdgeKind::Cross);
    }

    #[test]
    fn self_loop_is_back_edge() {
        let cfg = parse_edge_list("0->1 1->1 1->2").unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        assert_eq!(kind_of(&dfs, g, 1, 1), DirectedEdgeKind::Back);
    }

    #[test]
    fn examination_order_matches_recursive_semantics() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        let order: Vec<(usize, usize)> = dfs
            .edges_in_examination_order()
            .iter()
            .map(|&e| (g.source(e).index(), g.target(e).index()))
            .collect();
        // Recursive DFS: 0->1 first, fully explore (1->3), return, then 0->2.
        assert_eq!(order, vec![(0, 1), (1, 3), (0, 2), (2, 3)]);
        assert_eq!(order.len(), g.edge_count());
    }

    #[test]
    fn unreachable_nodes_have_no_numbers() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[2], n[1]);
        let dfs = Dfs::new(&g, n[0]);
        assert_eq!(dfs.preorder_number(n[2]), None);
        assert_eq!(dfs.postorder_number(n[2]), None);
        assert_eq!(dfs.reached_count(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 50_000-node chain: a recursive DFS would blow the stack.
        let mut g = Graph::new();
        let nodes = g.add_nodes(50_000);
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let dfs = Dfs::new(&g, nodes[0]);
        assert_eq!(dfs.reached_count(), 50_000);
        assert_eq!(dfs.postorder_number(nodes[0]), Some(49_999));
    }

    #[test]
    fn parallel_edges_second_is_forward() {
        let cfg = parse_edge_list("0->1 0->1 1->2").unwrap();
        let g = cfg.graph();
        let dfs = Dfs::new(g, cfg.entry());
        let kinds: Vec<_> = g
            .out_edges(cfg.entry())
            .iter()
            .map(|&e| dfs.edge_kind(e).unwrap())
            .collect();
        assert_eq!(
            kinds,
            vec![DirectedEdgeKind::Tree, DirectedEdgeKind::Forward]
        );
    }
}
