//! Dominance frontiers and iterated dominance frontiers.
//!
//! The frontier computation follows Cooper–Harvey–Kennedy: for every join
//! node, walk each predecessor's dominator chain up to the join's immediate
//! dominator. The iterated frontier `DF⁺(S)` is the fixed point used by
//! Cytron et al.'s φ-placement, which the paper's §6.1 accelerates with the
//! PST; both the baseline and the PST version in `pst-ssa` call into this
//! module.

use pst_cfg::{Graph, NodeId};

use crate::{Direction, DomTree};

/// Per-node dominance frontiers of `graph` under `tree`.
///
/// `dir` must match the direction the tree was computed for
/// ([`Direction::Backward`] yields *postdominance* frontiers, i.e. control
/// dependence information). Each frontier is sorted and duplicate-free.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_dominators::{dominator_tree, dominance_frontiers, Direction};
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let dt = dominator_tree(cfg.graph(), cfg.entry());
/// let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
/// // The join node 3 is in the frontier of both branch arms.
/// assert_eq!(df[1], vec![NodeId::from_index(3)]);
/// assert_eq!(df[2], vec![NodeId::from_index(3)]);
/// assert!(df[0].is_empty());
/// ```
pub fn dominance_frontiers(graph: &Graph, tree: &DomTree, dir: Direction) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut df: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for b in graph.nodes() {
        if !tree.is_reachable(b) {
            continue;
        }
        let preds: Vec<NodeId> = dir.predecessors(graph, b).collect();
        if preds.len() < 2 {
            continue;
        }
        let Some(idom_b) = tree.idom(b) else {
            continue;
        };
        for p in preds {
            if !tree.is_reachable(p) {
                continue;
            }
            let mut runner = p;
            while runner != idom_b {
                // Avoid immediate duplicates: b is pushed at most once per
                // runner per predecessor; a final sort+dedup catches the
                // cross-predecessor repeats.
                if df[runner.index()].last() != Some(&b) {
                    df[runner.index()].push(b);
                }
                match tree.idom(runner) {
                    Some(next) => runner = next,
                    None => break, // runner is the root; can happen on self-loops at the root
                }
            }
        }
    }
    for f in &mut df {
        f.sort_unstable();
        f.dedup();
    }
    df
}

/// Iterated dominance frontier `DF⁺(seeds)`.
///
/// Returns a sorted, duplicate-free list of nodes. With
/// `frontiers = dominance_frontiers(..)` this is the classical worklist
/// closure: `DF₁ = DF(S)`, `DFᵢ₊₁ = DF(S ∪ DFᵢ)`.
///
/// # Examples
///
/// φ-placement for a variable defined in both arms of a conditional inside
/// a loop:
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_dominators::{dominator_tree, dominance_frontiers,
///                      iterated_dominance_frontier, Direction};
/// let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4 4->1 4->5").unwrap();
/// let dt = dominator_tree(cfg.graph(), cfg.entry());
/// let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
/// let n = |i| NodeId::from_index(i);
/// let idf = iterated_dominance_frontier(&df, &[n(2), n(3)]);
/// // Join at 4, and — because 4's frontier feeds the loop header — at 1.
/// assert_eq!(idf, vec![n(1), n(4)]);
/// ```
pub fn iterated_dominance_frontier(frontiers: &[Vec<NodeId>], seeds: &[NodeId]) -> Vec<NodeId> {
    let mut in_result = vec![false; frontiers.len()];
    let mut queued = vec![false; frontiers.len()];
    let mut work: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if !queued[s.index()] {
            queued[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(x) = work.pop() {
        for &y in &frontiers[x.index()] {
            if !in_result[y.index()] {
                in_result[y.index()] = true;
                if !queued[y.index()] {
                    queued[y.index()] = true;
                    work.push(y);
                }
            }
        }
    }
    let mut out: Vec<NodeId> = (0..frontiers.len())
        .filter(|&i| in_result[i])
        .map(NodeId::from_index)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominator_tree;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn frontiers(desc: &str) -> Vec<Vec<usize>> {
        let cfg = parse_edge_list(desc).unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        dominance_frontiers(cfg.graph(), &dt, Direction::Forward)
            .into_iter()
            .map(|f| f.into_iter().map(|x| x.index()).collect())
            .collect()
    }

    #[test]
    fn straight_line_has_empty_frontiers() {
        let df = frontiers("0->1 1->2");
        assert!(df.iter().all(|f| f.is_empty()));
    }

    #[test]
    fn loop_header_is_its_own_frontier() {
        // while loop: 1 is the header, 2 the body.
        let df = frontiers("0->1 1->2 2->1 1->3");
        assert_eq!(df[1], vec![1]);
        assert_eq!(df[2], vec![1]);
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn nested_loops_quadratic_frontier_shape() {
        // Two nested repeat-until loops: inner body's frontier includes
        // both headers.
        let df = frontiers("0->1 1->2 2->3 3->2 3->1 1->4");
        assert!(df[3].contains(&1));
        assert!(df[3].contains(&2));
    }

    #[test]
    fn idf_reaches_fixed_point() {
        let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4 4->1 4->5").unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
        let idf = iterated_dominance_frontier(&df, &[n(2)]);
        assert_eq!(idf, vec![n(1), n(4)]);
    }

    #[test]
    fn idf_of_empty_seed_is_empty() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
        assert!(iterated_dominance_frontier(&df, &[]).is_empty());
    }

    #[test]
    fn postdominance_frontier_gives_control_dependence() {
        use crate::{dominator_tree_in, Direction};
        let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4 4->5").unwrap();
        let pdom = dominator_tree_in(cfg.graph(), cfg.exit(), Direction::Backward);
        let pdf = dominance_frontiers(cfg.graph(), &pdom, Direction::Backward);
        // Branch arms 2 and 3 are control dependent on the branch node 1.
        assert_eq!(pdf[2], vec![n(1)]);
        assert_eq!(pdf[3], vec![n(1)]);
        assert!(pdf[4].is_empty());
    }

    #[test]
    fn duplicate_suppression() {
        // Node with three predecessors converging: frontier lists stay
        // duplicate-free.
        let df = frontiers("0->1 0->2 0->3 1->4 2->4 3->4 4->5");
        for f in &df {
            let mut sorted = f.clone();
            sorted.dedup();
            assert_eq!(&sorted, f);
        }
    }
}
