//! Natural loops and the loop nesting forest.
//!
//! A *natural loop* is the classic dominator-based notion: a backedge
//! `u → h` with `h dom u` defines the loop of all nodes that reach `u`
//! without passing through `h`. Loops with the same header are merged.
//! This is independent machinery from the paper's SESE regions — the
//! integration tests cross-check the two views (every natural loop of a
//! reducible CFG sits inside the SESE region classified as a `Loop`).

use pst_cfg::{Cfg, NodeId};

use crate::{dominator_tree, DomTree};

/// One natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the defining backedges).
    pub header: NodeId,
    /// All nodes of the loop (header included), sorted.
    pub body: Vec<NodeId>,
    /// Index of the innermost enclosing loop in
    /// [`LoopForest::loops`], if any.
    pub parent: Option<usize>,
}

impl NaturalLoop {
    /// Whether `node` belongs to this loop.
    pub fn contains(&self, node: NodeId) -> bool {
        self.body.binary_search(&node).is_ok()
    }
}

/// The loop nesting forest of a CFG.
///
/// Only *dominator* backedges define loops, so irreducible cycles (whose
/// retreating edges are not dominator backedges) produce no entry here —
/// matching the classical definition.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_dominators::LoopForest;
/// let cfg = parse_edge_list("0->1 1->2 2->3 3->2 3->1 1->4").unwrap();
/// let forest = LoopForest::compute(&cfg);
/// assert_eq!(forest.loops().len(), 2);
/// // The inner loop (header 2) nests in the outer loop (header 1).
/// let inner = forest.loops().iter().position(|l| l.header.index() == 2).unwrap();
/// let outer = forest.loops().iter().position(|l| l.header.index() == 1).unwrap();
/// assert_eq!(forest.loops()[inner].parent, Some(outer));
/// ```
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// Innermost loop per node, if any.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Computes the forest for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let dt: DomTree = dominator_tree(cfg.graph(), cfg.entry());
        Self::compute_with(cfg, &dt)
    }

    /// Computes the forest reusing an existing dominator tree.
    pub fn compute_with(cfg: &Cfg, dt: &DomTree) -> Self {
        let graph = cfg.graph();
        let n = graph.node_count();

        // Collect backedge sources per header.
        let mut latches_of: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut headers: Vec<NodeId> = Vec::new();
        for e in graph.edges() {
            let (u, h) = graph.endpoints(e);
            if dt.dominates(h, u) {
                if latches_of[h.index()].is_empty() {
                    headers.push(h);
                }
                latches_of[h.index()].push(u);
            }
        }

        // Grow each loop body by backwards reachability stopping at the
        // header.
        let mut loops: Vec<NaturalLoop> = Vec::with_capacity(headers.len());
        for &h in &headers {
            let mut in_body = vec![false; n];
            in_body[h.index()] = true;
            let mut stack: Vec<NodeId> = latches_of[h.index()].clone();
            for &l in &stack {
                in_body[l.index()] = true;
            }
            while let Some(v) = stack.pop() {
                if v == h {
                    continue; // the walk stops at the header
                }
                for p in graph.predecessors(v) {
                    if !in_body[p.index()] {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<NodeId> = graph.nodes().filter(|v| in_body[v.index()]).collect();
            loops.push(NaturalLoop {
                header: h,
                body,
                parent: None,
            });
        }

        // Nesting: sort by body size ascending; the parent of a loop is
        // the smallest strictly larger loop containing its header.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].body.len());
        for oi in 0..order.len() {
            let i = order[oi];
            for &j in &order[oi + 1..] {
                if loops[j].body.len() > loops[i].body.len() && loops[j].contains(loops[i].header) {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }

        // Innermost loop per node: paint largest loops first so the
        // smallest (innermost) wins.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for &i in order.iter().rev() {
            for &v in &loops[i].body {
                innermost[v.index()] = Some(i);
            }
        }

        LoopForest { loops, innermost }
    }

    /// All loops, unordered (use [`NaturalLoop::parent`] for nesting).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Innermost loop containing `node`, if any.
    pub fn innermost(&self, node: NodeId) -> Option<&NaturalLoop> {
        self.innermost[node.index()].map(|i| &self.loops[i])
    }

    /// Nesting depth of `node` (0 = not in any loop).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.innermost[node.index()];
        while let Some(i) = cur {
            d += 1;
            cur = self.loops[i].parent;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert!(forest.loops().is_empty());
        assert_eq!(forest.depth(n(1)), 0);
    }

    #[test]
    fn while_loop_body() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, n(1));
        assert_eq!(l.body, vec![n(1), n(2)]);
        assert_eq!(forest.depth(n(2)), 1);
        assert_eq!(forest.depth(n(3)), 0);
    }

    #[test]
    fn nested_loops_nest() {
        let cfg = parse_edge_list("0->1 1->2 2->3 3->2 3->1 1->4").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.loops().len(), 2);
        assert_eq!(forest.depth(n(3)), 2);
        assert_eq!(forest.depth(n(1)), 1);
        let inner = forest.innermost(n(3)).unwrap();
        assert_eq!(inner.header, n(2));
    }

    #[test]
    fn self_loop_is_a_loop() {
        let cfg = parse_edge_list("0->1 1->1 1->2").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.loops().len(), 1);
        assert_eq!(forest.loops()[0].body, vec![n(1)]);
    }

    #[test]
    fn two_backedges_one_header_merge() {
        let cfg = parse_edge_list("0->1 1->2 1->3 2->1 3->1 1->4").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.loops().len(), 1);
        assert_eq!(forest.loops()[0].body.len(), 3);
    }

    #[test]
    fn irreducible_cycle_defines_no_natural_loop() {
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert!(forest.loops().is_empty());
    }

    #[test]
    fn disjoint_loops_are_siblings() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3 3->4 4->3 3->5").unwrap();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.loops().len(), 2);
        assert!(forest.loops().iter().all(|l| l.parent.is_none()));
    }
}
