//! Dominator trees with constant-time ancestry queries.

use pst_cfg::{Graph, NodeId};

/// Traversal direction for dominance computations.
///
/// `Forward` from a CFG's entry yields classical dominators; `Backward`
/// from the exit yields postdominators. Using a direction flag (instead of
/// materializing a reversed graph) keeps node and edge ids stable across
/// both analyses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges source → target (dominators).
    Forward,
    /// Follow edges target → source (postdominators).
    Backward,
}

impl Direction {
    /// Flow successors of `node` under this direction.
    pub fn successors<'g>(
        self,
        graph: &'g Graph,
        node: NodeId,
    ) -> Box<dyn Iterator<Item = NodeId> + 'g> {
        match self {
            Direction::Forward => Box::new(graph.successors(node)),
            Direction::Backward => Box::new(graph.predecessors(node)),
        }
    }

    /// Flow predecessors of `node` under this direction.
    pub fn predecessors<'g>(
        self,
        graph: &'g Graph,
        node: NodeId,
    ) -> Box<dyn Iterator<Item = NodeId> + 'g> {
        match self {
            Direction::Forward => Box::new(graph.predecessors(node)),
            Direction::Backward => Box::new(graph.successors(node)),
        }
    }
}

/// An immediate-dominator tree over the nodes of a [`Graph`].
///
/// Produced by [`dominator_tree`](crate::dominator_tree) (Lengauer–Tarjan)
/// or [`iterative_dominator_tree`](crate::iterative_dominator_tree)
/// (Cooper–Harvey–Kennedy); both yield identical trees and are
/// cross-checked in tests. Ancestry queries are answered in O(1) via
/// pre/post intervals of the tree.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_dominators::dominator_tree;
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let dt = dominator_tree(cfg.graph(), cfg.entry());
/// let n = |i| pst_cfg::NodeId::from_index(i);
/// assert_eq!(dt.idom(n(3)), Some(n(0)));   // neither branch dominates the join
/// assert!(dt.dominates(n(0), n(3)));
/// assert!(!dt.dominates(n(1), n(3)));
/// ```
#[derive(Clone, Debug)]
pub struct DomTree {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
    reachable: Vec<bool>,
    children: Vec<Vec<NodeId>>,
    pre: Vec<u32>,
    post: Vec<u32>,
    depth: Vec<u32>,
}

impl DomTree {
    /// Builds a tree from a caller-supplied immediate-dominator array.
    ///
    /// `idom[n]` must be `None` exactly for the root and for unreachable
    /// nodes, and the parent links must form a tree rooted at `root`
    /// (e.g. the output of a divide-and-conquer computation such as
    /// `pst-apps`' PST-based dominators).
    ///
    /// # Panics
    ///
    /// May loop or index out of bounds if the links do not form a tree.
    pub fn from_immediate_dominators(
        root: NodeId,
        idom: Vec<Option<NodeId>>,
        reachable: Vec<bool>,
    ) -> Self {
        Self::from_idoms(root, idom, reachable)
    }

    /// Builds the derived structures from an immediate-dominator array.
    ///
    /// `idom[n]` must be `None` exactly for the root and for unreachable
    /// nodes; `reachable` flags which nodes were reached.
    pub(crate) fn from_idoms(
        root: NodeId,
        idom: Vec<Option<NodeId>>,
        reachable: Vec<bool>,
    ) -> Self {
        let n = idom.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, d) in idom.iter().enumerate() {
            if let Some(p) = d {
                children[p.index()].push(NodeId::from_index(i));
            }
        }
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut depth = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        pre[root.index()] = 0;
        clock += 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < children[v.index()].len() {
                let c = children[v.index()][*next];
                *next += 1;
                pre[c.index()] = clock;
                clock += 1;
                depth[c.index()] = depth[v.index()] + 1;
                stack.push((c, 0));
            } else {
                post[v.index()] = clock;
                clock += 1;
                stack.pop();
            }
        }
        DomTree {
            root,
            idom,
            reachable,
            children,
            pre,
            post,
            depth,
        }
    }

    /// The root of the tree (CFG entry for dominators, exit for
    /// postdominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immediate dominator of `node` (`None` for the root and for
    /// unreachable nodes).
    pub fn idom(&self, node: NodeId) -> Option<NodeId> {
        self.idom[node.index()]
    }

    /// Whether `node` was reachable from the root in the flow direction the
    /// tree was computed for.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.reachable[node.index()]
    }

    /// Children of `node` in the dominator tree.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Depth of `node` below the root (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.depth[node.index()] as usize
    }

    /// Whether `a` dominates `b` (reflexively). O(1).
    ///
    /// Returns `false` if either node is unreachable.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Whether `a` dominates `b` and `a != b`. O(1).
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// All nodes dominated by `node` (including itself), in tree preorder.
    pub fn dominated_by(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.children(v) {
                stack.push(c);
            }
        }
        out
    }

    /// Number of nodes the tree was computed over (reachable or not).
    pub fn node_count(&self) -> usize {
        self.idom.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominator_tree;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn chain_depths() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        for i in 0..4 {
            assert_eq!(dt.depth(n(i)), i);
        }
        assert!(dt.dominates(n(1), n(3)));
        assert!(!dt.dominates(n(3), n(1)));
        assert!(dt.strictly_dominates(n(0), n(1)));
        assert!(!dt.strictly_dominates(n(1), n(1)));
    }

    #[test]
    fn dominated_by_collects_subtree() {
        let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4").unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        let mut sub: Vec<usize> = dt.dominated_by(n(1)).iter().map(|x| x.index()).collect();
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 2, 3, 4]);
    }

    #[test]
    fn direction_swaps_adjacency() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let g = cfg.graph();
        let fwd: Vec<_> = Direction::Forward.successors(g, n(1)).collect();
        let bwd: Vec<_> = Direction::Backward.successors(g, n(1)).collect();
        assert_eq!(fwd, vec![n(2)]);
        assert_eq!(bwd, vec![n(0)]);
    }
}
