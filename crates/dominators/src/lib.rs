//! Dominator analyses for the Program Structure Tree workspace.
//!
//! Provides two independent dominator-tree constructions — the classical
//! Lengauer–Tarjan algorithm ([`dominator_tree`], [`dominator_tree_in`])
//! and the Cooper–Harvey–Kennedy iterative formulation
//! ([`iterative_dominator_tree`]) — plus dominance frontiers and iterated
//! dominance frontiers ([`dominance_frontiers`],
//! [`iterated_dominance_frontier`]).
//!
//! In the reproduced paper, Lengauer–Tarjan is the yardstick: the authors
//! report that their cycle-equivalence pass (`pst-core`) runs *faster* than
//! dominator computation, which is only the first step of all previous
//! control-region algorithms. The benches in `pst-bench` reproduce that
//! comparison. Postdominators (via [`Direction::Backward`] or
//! [`postdominator_tree`]) and frontiers feed the control-dependence
//! baselines (`pst-controldep`) and SSA construction (`pst-ssa`).
//!
//! # Examples
//!
//! ```
//! use pst_cfg::{parse_edge_list, NodeId};
//! use pst_dominators::{dominator_tree, postdominator_tree};
//! let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4 4->5").unwrap();
//! let dom = dominator_tree(cfg.graph(), cfg.entry());
//! let pdom = postdominator_tree(&cfg);
//! let n = |i| NodeId::from_index(i);
//! assert!(dom.dominates(n(1), n(4)));
//! assert!(pdom.dominates(n(4), n(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frontier;
mod iterative;
mod lengauer_tarjan;
mod loops;
mod tree;

pub use frontier::{dominance_frontiers, iterated_dominance_frontier};
pub use iterative::iterative_dominator_tree;
pub use lengauer_tarjan::{dominator_tree, dominator_tree_in, postdominator_tree};
pub use loops::{LoopForest, NaturalLoop};
pub use tree::{Direction, DomTree};
