//! Iterative (data-flow) dominator computation, after Cooper, Harvey &
//! Kennedy's *"A Simple, Fast Dominance Algorithm"*.
//!
//! Asymptotically worse than Lengauer–Tarjan but very fast in practice; we
//! keep it both as an independent oracle for the LT implementation and as a
//! second baseline for the paper's timing comparison.

use pst_cfg::{Graph, NodeId};

use crate::{Direction, DomTree};

const UNDEF: usize = usize::MAX;

/// Computes the dominator tree of `graph` from `root` following `dir`
/// using the Cooper–Harvey–Kennedy iterative algorithm.
///
/// Produces exactly the same tree as
/// [`dominator_tree_in`](crate::dominator_tree_in); the two implementations
/// cross-validate each other in the property tests.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_dominators::{dominator_tree, iterative_dominator_tree, Direction};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let a = dominator_tree(cfg.graph(), cfg.entry());
/// let b = iterative_dominator_tree(cfg.graph(), cfg.entry(), Direction::Forward);
/// for n in cfg.graph().nodes() {
///     assert_eq!(a.idom(n), b.idom(n));
/// }
/// ```
pub fn iterative_dominator_tree(graph: &Graph, root: NodeId, dir: Direction) -> DomTree {
    let n = graph.node_count();
    // Postorder numbering of reachable nodes (iterative DFS).
    let mut postorder_of = vec![UNDEF; n]; // node -> postorder number
    let mut by_postorder: Vec<usize> = Vec::new(); // postorder number -> node
    {
        let mut visited = vec![false; n];
        let mut stack: Vec<(usize, Vec<NodeId>, usize)> = Vec::new();
        visited[root.index()] = true;
        let succs: Vec<NodeId> = dir.successors(graph, root).collect();
        stack.push((root.index(), succs, 0));
        while let Some(&mut (v, ref succs, ref mut next)) = stack.last_mut() {
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    let ss: Vec<NodeId> = dir.successors(graph, s).collect();
                    stack.push((s.index(), ss, 0));
                }
            } else {
                postorder_of[v] = by_postorder.len();
                by_postorder.push(v);
                stack.pop();
            }
        }
    }
    let reached = by_postorder.len();

    // idoms in postorder-number space.
    let mut idom = vec![UNDEF; reached];
    let root_po = postorder_of[root.index()];
    idom[root_po] = root_po;

    let intersect = |idom: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while a < b {
                a = idom[a];
            }
            while b < a {
                b = idom[b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder, skipping the root.
        for po in (0..reached).rev() {
            if po == root_po {
                continue;
            }
            let node = by_postorder[po];
            let mut new_idom = UNDEF;
            for p in dir.predecessors(graph, NodeId::from_index(node)) {
                let ppo = postorder_of[p.index()];
                if ppo == UNDEF || idom[ppo] == UNDEF {
                    continue; // unreachable or not yet processed
                }
                new_idom = if new_idom == UNDEF {
                    ppo
                } else {
                    intersect(&idom, new_idom, ppo)
                };
            }
            if new_idom != UNDEF && idom[po] != new_idom {
                idom[po] = new_idom;
                changed = true;
            }
        }
    }

    let mut out = vec![None; n];
    let mut reachable = vec![false; n];
    for po in 0..reached {
        reachable[by_postorder[po]] = true;
    }
    for po in 0..reached {
        if po != root_po {
            out[by_postorder[po]] = Some(NodeId::from_index(by_postorder[idom[po]]));
        }
    }
    DomTree::from_idoms(root, out, reachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominator_tree_in;
    use pst_cfg::parse_edge_list;

    fn agree(desc: &str) {
        let cfg = parse_edge_list(desc).unwrap();
        for dir in [Direction::Forward, Direction::Backward] {
            let root = match dir {
                Direction::Forward => cfg.entry(),
                Direction::Backward => cfg.exit(),
            };
            let lt = dominator_tree_in(cfg.graph(), root, dir);
            let it = iterative_dominator_tree(cfg.graph(), root, dir);
            for node in cfg.graph().nodes() {
                assert_eq!(lt.idom(node), it.idom(node), "{desc} {dir:?} {node:?}");
            }
        }
    }

    #[test]
    fn agrees_with_lt_on_small_graphs() {
        agree("0->1 1->2");
        agree("0->1 0->2 1->3 2->3");
        agree("0->1 1->2 2->1 1->3");
        agree("0->1 0->2 1->2 2->1 1->3 2->3");
        agree("0->1 0->2 1->3 2->3 3->4 4->5 4->6 5->7 6->7 7->4 7->8");
        agree("0->1 1->1 1->2");
        agree("0->1 0->1 1->2");
    }

    #[test]
    fn root_has_no_idom() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let dt = iterative_dominator_tree(cfg.graph(), cfg.entry(), Direction::Forward);
        assert_eq!(dt.idom(cfg.entry()), None);
        assert_eq!(dt.root(), cfg.entry());
    }

    #[test]
    fn handles_unreachable_nodes() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(4);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[2], nodes[3]); // island
        let dt = iterative_dominator_tree(&g, nodes[0], Direction::Forward);
        assert!(!dt.is_reachable(nodes[2]));
        assert!(!dt.is_reachable(nodes[3]));
        assert_eq!(dt.idom(nodes[1]), Some(nodes[0]));
    }
}
