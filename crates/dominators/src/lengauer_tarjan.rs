//! The Lengauer–Tarjan dominator algorithm (simple path-compression
//! variant, `O(E log N)`).
//!
//! This is the algorithm the paper races its cycle-equivalence pass against
//! ("our empirical results show that it runs faster than Lengauer and
//! Tarjan's algorithm for finding dominators"), so we implement it
//! faithfully: DFS numbering, semidominators computed over the spanning
//! forest with path compression, deferred immediate-dominator resolution
//! through buckets, and a final sweep.

use pst_cfg::{Graph, NodeId};

use crate::{Direction, DomTree};

const NONE: usize = usize::MAX;

struct Forest {
    ancestor: Vec<usize>,
    label: Vec<usize>,
    semi: Vec<usize>,
}

impl Forest {
    fn new(n: usize) -> Self {
        Forest {
            ancestor: vec![NONE; n],
            label: (0..n).collect(),
            semi: (0..n).collect(),
        }
    }

    fn link(&mut self, parent: usize, child: usize) {
        self.ancestor[child] = parent;
    }

    /// Path-compressed eval: returns the vertex with minimal semidominator
    /// number on the forest path from `v` (exclusive of the forest root).
    fn eval(&mut self, v: usize) -> usize {
        if self.ancestor[v] == NONE {
            return self.label[v];
        }
        // Collect the path to the forest root.
        let mut path = Vec::new();
        let mut u = v;
        while self.ancestor[self.ancestor[u]] != NONE {
            path.push(u);
            u = self.ancestor[u];
        }
        // Compress from the top down, keeping labels minimal-by-semi.
        let root_of_path = self.ancestor[u];
        for &w in path.iter().rev() {
            let a = self.ancestor[w];
            if self.semi[self.label[a]] < self.semi[self.label[w]] {
                self.label[w] = self.label[a];
            }
            self.ancestor[w] = root_of_path;
        }
        self.label[v]
    }
}

/// Computes immediate dominators with Lengauer–Tarjan.
///
/// Returns `(idom, reachable)` indexed by node: `idom[n]` is `None` for the
/// root and for nodes unreachable from it.
pub(crate) fn lengauer_tarjan_idoms(
    graph: &Graph,
    root: NodeId,
    dir: Direction,
) -> (Vec<Option<NodeId>>, Vec<bool>) {
    let n = graph.node_count();
    // DFS numbering (iterative).
    let mut dfnum = vec![NONE; n]; // node index -> dfs number
    let mut vertex: Vec<usize> = Vec::with_capacity(n); // dfs number -> node index
    let mut parent = vec![NONE; n]; // in dfs-number space? keep node-index space
    {
        let mut stack = vec![(root.index(), NONE)];
        while let Some((v, p)) = stack.pop() {
            if dfnum[v] != NONE {
                continue;
            }
            dfnum[v] = vertex.len();
            vertex.push(v);
            parent[v] = p;
            // Push successors in reverse so the traversal order matches a
            // recursive DFS (not required for correctness, nice for tests).
            let succs: Vec<NodeId> = dir.successors(graph, NodeId::from_index(v)).collect();
            for s in succs.into_iter().rev() {
                if dfnum[s.index()] == NONE {
                    stack.push((s.index(), v));
                }
            }
        }
    }
    let reached = vertex.len();

    // Everything below works in node-index space with comparisons done on
    // dfnum; `semi[v]` stores a node index whose dfnum is the semidominator
    // number.
    let mut forest = Forest::new(n);
    // forest.semi compares by dfs number; initialize semi[v] = v meaning
    // dfnum of itself. We store dfs numbers directly in a parallel array to
    // keep eval comparisons cheap.
    forest.semi.copy_from_slice(&dfnum);
    let mut semi = forest.semi.clone(); // dfs numbers
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut idom = vec![NONE; n];

    for i in (1..reached).rev() {
        let w = vertex[i];
        // Step 2: semidominators.
        let preds: Vec<NodeId> = dir.predecessors(graph, NodeId::from_index(w)).collect();
        for v in preds {
            let v = v.index();
            if dfnum[v] == NONE {
                continue; // predecessor unreachable from root
            }
            let u = forest.eval(v);
            if forest.semi[u] < semi[w] {
                semi[w] = forest.semi[u];
            }
        }
        forest.semi[w] = semi[w];
        bucket[vertex[semi[w]]].push(w);
        let p = parent[w];
        forest.link(p, w);
        // Step 3: implicitly resolve idoms for parent's bucket.
        let drained = std::mem::take(&mut bucket[p]);
        for v in drained {
            let u = forest.eval(v);
            idom[v] = if forest.semi[u] < semi[v] { u } else { p };
        }
    }
    // Step 4: final pass in dfs order.
    for i in 1..reached {
        let w = vertex[i];
        if idom[w] != vertex[semi[w]] {
            idom[w] = idom[idom[w]];
        }
    }

    let mut out = vec![None; n];
    let mut reachable = vec![false; n];
    for &v in vertex.iter().take(reached) {
        reachable[v] = true;
    }
    for &w in vertex.iter().take(reached).skip(1) {
        out[w] = Some(NodeId::from_index(idom[w]));
    }
    (out, reachable)
}

/// Builds the dominator tree of `graph` from `root` following `dir`.
///
/// This is the Lengauer–Tarjan implementation; see
/// [`iterative_dominator_tree`](crate::iterative_dominator_tree) for the
/// data-flow formulation. Unreachable nodes are recorded as such in the
/// resulting [`DomTree`].
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_dominators::{dominator_tree_in, Direction};
/// let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4").unwrap();
/// let pdom = dominator_tree_in(cfg.graph(), cfg.exit(), Direction::Backward);
/// // The join node 4 postdominates the branch node 1.
/// assert!(pdom.dominates(NodeId::from_index(4), NodeId::from_index(1)));
/// ```
pub fn dominator_tree_in(graph: &Graph, root: NodeId, dir: Direction) -> DomTree {
    let (idom, reachable) = lengauer_tarjan_idoms(graph, root, dir);
    DomTree::from_idoms(root, idom, reachable)
}

/// Builds the (forward) dominator tree of `graph` from `root`.
///
/// Convenience wrapper over [`dominator_tree_in`] with
/// [`Direction::Forward`].
pub fn dominator_tree(graph: &Graph, root: NodeId) -> DomTree {
    dominator_tree_in(graph, root, Direction::Forward)
}

/// Builds the postdominator tree of a [`Cfg`](pst_cfg::Cfg).
///
/// Equivalent to a dominator computation on the reversed graph rooted at
/// the CFG's exit, but node/edge ids are preserved.
pub fn postdominator_tree(cfg: &pst_cfg::Cfg) -> DomTree {
    dominator_tree_in(cfg.graph(), cfg.exit(), Direction::Backward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn idoms(desc: &str) -> Vec<Option<usize>> {
        let cfg = parse_edge_list(desc).unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        (0..cfg.node_count())
            .map(|i| dt.idom(n(i)).map(|x| x.index()))
            .collect()
    }

    #[test]
    fn diamond() {
        assert_eq!(
            idoms("0->1 0->2 1->3 2->3"),
            vec![None, Some(0), Some(0), Some(0)]
        );
    }

    #[test]
    fn loop_with_exit() {
        assert_eq!(
            idoms("0->1 1->2 2->1 1->3"),
            vec![None, Some(0), Some(1), Some(1)]
        );
    }

    #[test]
    fn irreducible_graph() {
        // 0->1, 0->2, 1<->2, both exit to 3.
        assert_eq!(
            idoms("0->1 0->2 1->2 2->1 1->3 2->3"),
            vec![None, Some(0), Some(0), Some(0)]
        );
    }

    #[test]
    fn textbook_lt_example() {
        // Appel's example graph (adapted indices).
        let desc = "0->1 0->2 1->3 2->3 3->4 4->5 4->6 5->7 6->7 7->4 7->8";
        assert_eq!(
            idoms(desc),
            vec![
                None,
                Some(0),
                Some(0),
                Some(0),
                Some(3),
                Some(4),
                Some(4),
                Some(4),
                Some(7)
            ]
        );
    }

    #[test]
    fn postdominators_of_diamond() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let pdom = postdominator_tree(&cfg);
        assert_eq!(pdom.idom(n(0)), Some(n(3)));
        assert_eq!(pdom.idom(n(1)), Some(n(3)));
        assert!(pdom.dominates(n(3), n(0)));
    }

    #[test]
    fn unreachable_nodes_are_flagged() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(3);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[2], nodes[1]); // node 2 unreachable from 0
        let dt = dominator_tree(&g, nodes[0]);
        assert!(dt.is_reachable(nodes[1]));
        assert!(!dt.is_reachable(nodes[2]));
        assert_eq!(dt.idom(nodes[2]), None);
        assert!(!dt.dominates(nodes[0], nodes[2]));
    }

    #[test]
    fn self_loop_does_not_affect_dominance() {
        assert_eq!(idoms("0->1 1->1 1->2"), vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn parallel_edges_do_not_affect_dominance() {
        assert_eq!(idoms("0->1 0->1 1->2"), vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn deep_chain_is_stack_safe() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(30_000);
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let dt = dominator_tree(&g, nodes[0]);
        assert_eq!(dt.idom(nodes[29_999]), Some(nodes[29_998]));
        assert_eq!(dt.depth(nodes[29_999]), 29_999);
    }
}
