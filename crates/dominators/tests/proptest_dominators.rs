//! Property tests for the dominator crate against definitional oracles.

use proptest::prelude::*;
use pst_cfg::NodeId;
use pst_dominators::{
    dominance_frontiers, dominator_tree, dominator_tree_in, iterative_dominator_tree, Direction,
};
use pst_workloads::random_cfg;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `a dom b` iff removing `a` makes `b` unreachable from the entry —
    /// the path-based definition, checked by brute force.
    #[test]
    fn dominance_matches_path_definition(n in 3usize..16, extra in 0usize..16, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let g = cfg.graph();
        let dt = dominator_tree(g, cfg.entry());
        for a in g.nodes() {
            // Reachability avoiding node `a`: BFS that refuses to enter a.
            let mut seen = vec![false; g.node_count()];
            if a != cfg.entry() {
                seen[cfg.entry().index()] = true;
                let mut stack = vec![cfg.entry()];
                while let Some(v) = stack.pop() {
                    for s in g.successors(v) {
                        if s != a && !seen[s.index()] {
                            seen[s.index()] = true;
                            stack.push(s);
                        }
                    }
                }
            }
            for b in g.nodes() {
                // A node dominates itself, and the entry dominates
                // everything in a valid CFG.
                let dominated = a == b || a == cfg.entry() || !seen[b.index()];
                prop_assert_eq!(dt.dominates(a, b), dominated, "{:?} dom {:?}", a, b);
            }
        }
    }

    /// LT and CHK agree in both directions on random CFGs (wider coverage
    /// than the unit tests).
    #[test]
    fn lt_and_chk_agree(n in 3usize..40, extra in 0usize..50, seed in 0u64..50_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        for (root, dir) in [
            (cfg.entry(), Direction::Forward),
            (cfg.exit(), Direction::Backward),
        ] {
            let lt = dominator_tree_in(cfg.graph(), root, dir);
            let it = iterative_dominator_tree(cfg.graph(), root, dir);
            for v in cfg.graph().nodes() {
                prop_assert_eq!(lt.idom(v), it.idom(v));
            }
        }
    }

    /// Dominance frontier membership matches its definition:
    /// `m ∈ DF(d)` iff `d` dominates some predecessor of `m` but does not
    /// strictly dominate `m`.
    #[test]
    fn frontier_matches_definition(n in 3usize..14, extra in 0usize..14, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let g = cfg.graph();
        let dt = dominator_tree(g, cfg.entry());
        let df = dominance_frontiers(g, &dt, Direction::Forward);
        for d in g.nodes() {
            for m in g.nodes() {
                let expected = g.predecessors(m).any(|p| dt.dominates(d, p))
                    && !dt.strictly_dominates(d, m);
                prop_assert_eq!(
                    df[d.index()].contains(&m),
                    expected,
                    "DF({:?}) vs {:?}", d, m
                );
            }
        }
    }

    /// The dominator tree's O(1) interval queries agree with idom-chain
    /// walks.
    #[test]
    fn interval_queries_match_chain_walks(n in 3usize..20, extra in 0usize..20, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        for a in cfg.graph().nodes() {
            for b in cfg.graph().nodes() {
                let mut cur = Some(b);
                let mut chain = false;
                while let Some(v) = cur {
                    if v == a {
                        chain = true;
                        break;
                    }
                    cur = dt.idom(v);
                }
                prop_assert_eq!(dt.dominates(a, b), chain);
            }
        }
        let _ = NodeId::from_index(0);
    }
}
