//! Checker completeness on *correct* pipelines: no checker may ever flag
//! an unfaulted run, across random valid CFGs and the structured corpus.

use proptest::prelude::*;
use pst_verify::{
    compute_artifacts_for_cfg, verify_artifacts, verify_strong_on_digraph, VerifyConfig,
};
use pst_workloads::{
    diamond_ladder, irreducible_mesh, linear_chain, nested_repeat_until, nested_while_loops,
    random_cfg, random_digraph, DigraphConfig,
};

fn assert_clean(cfg: &pst_cfg::Cfg, what: &str) {
    let artifacts = compute_artifacts_for_cfg(cfg);
    let report = verify_artifacts(&artifacts, &VerifyConfig::default());
    assert!(
        report.is_clean(),
        "{what}: checkers flagged a correct pipeline:\n{report}"
    );
    assert!(
        report.exhausted_checkers().is_empty(),
        "{what}: default budget must cover test-sized graphs"
    );
}

#[test]
fn structured_corpus_passes_all_checkers() {
    assert_clean(&linear_chain(12), "linear_chain(12)");
    assert_clean(&diamond_ladder(5), "diamond_ladder(5)");
    assert_clean(&nested_while_loops(4), "nested_while_loops(4)");
    assert_clean(&nested_repeat_until(4), "nested_repeat_until(4)");
    assert_clean(&irreducible_mesh(3), "irreducible_mesh(3)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every valid random CFG passes every checker.
    #[test]
    fn random_valid_cfgs_pass_all_checkers(
        n in 3usize..24,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
    ) {
        let cfg = random_cfg(n, extra, seed).expect("random_cfg repairs to validity");
        assert_clean(&cfg, &format!("random_cfg({n}, {extra}, {seed})"));
    }

    /// The NTSCD/DOD oracles agree with the fast algorithms on raw,
    /// non-canonicalized digraphs — unreachable nodes, inescapable
    /// loops, multiple exits, and self-loops all left in place. This is
    /// exactly the input class where strong control dependence differs
    /// from the classic relation.
    #[test]
    fn strong_checkers_pass_on_raw_digraphs(
        n in 2usize..20,
        extra in 0usize..24,
        seed in 0u64..1_000_000,
        degenerate in 0u8..16,
    ) {
        let config = DigraphConfig {
            nodes: n,
            edges: n + extra,
            force_entry_predecessor: degenerate & 1 != 0,
            force_unreachable: degenerate & 2 != 0,
            force_infinite_loop: degenerate & 4 != 0,
            force_multiple_exits: degenerate & 8 != 0,
            force_self_loop: degenerate & 1 != 0,
        };
        let (graph, _entry) = random_digraph(&config, seed);
        let report = verify_strong_on_digraph(&graph, &VerifyConfig::default());
        prop_assert!(report.is_clean(), "digraph({n}, {extra}, {seed}, {degenerate}):\n{report}");
        prop_assert!(report.exhausted_checkers().is_empty());
    }
}
