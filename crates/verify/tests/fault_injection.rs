//! Checker *soundness*: every injected fault must be caught, and each
//! fault kind must trip the checker it was designed for. Compiled only
//! with `--features fault-inject`.
#![cfg(feature = "fault-inject")]

use proptest::prelude::*;
use pst_verify::{
    compute_artifacts_for_cfg, inject, verify_artifacts, FaultKind, FaultPlan, VerifyConfig,
};
use pst_workloads::random_cfg;

/// A CFG rich enough that every fault kind applies: nested loops and
/// branches give multi-edge cycle-equivalence classes, several PST
/// regions, multiple control regions, and φ sites.
fn rich_cfg() -> pst_cfg::Cfg {
    pst_cfg::parse_edge_list(
        "0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13",
    )
    .unwrap()
}

/// Each fault kind, applied to the rich CFG, trips its intended checker.
#[test]
fn every_fault_kind_trips_its_intended_checker() {
    for kind in FaultKind::ALL {
        let mut hit = false;
        // A handful of seeds: some picks may corrupt in ways that other
        // checkers also notice, but the intended one must fire for each.
        for seed in 0..8u64 {
            let mut artifacts = compute_artifacts_for_cfg(&rich_cfg());
            let plan = FaultPlan { kind, seed };
            let Some(what) = inject(&mut artifacts, &plan) else {
                panic!("{kind} must apply to the rich CFG (seed {seed})");
            };
            let report = verify_artifacts(&artifacts, &VerifyConfig::default());
            assert!(
                !report.is_clean(),
                "{kind} (seed {seed}, {what}) went undetected"
            );
            assert!(
                report.failing_checkers().contains(&kind.intended_checker()),
                "{kind} (seed {seed}, {what}) was caught by {:?}, not its intended checker {}",
                report.failing_checkers(),
                kind.intended_checker(),
            );
            hit = true;
        }
        assert!(hit);
    }
}

/// Fault names round-trip (the CLI parses them back from `--inject-fault`).
#[test]
fn fault_names_round_trip() {
    for kind in FaultKind::ALL {
        assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
    }
    assert_eq!(FaultKind::from_name("no-such-fault"), None);
}

/// Inapplicable faults leave the artifacts untouched and clean.
#[test]
fn inapplicable_faults_do_not_corrupt() {
    // A single-edge CFG: one cycle-equivalence class of interest, no
    // canonical regions to reparent, no φ sites, one control region.
    let cfg = pst_cfg::parse_edge_list("0->1").unwrap();
    for kind in [
        FaultKind::ReparentRegion,
        FaultKind::DropPhiSite,
        FaultKind::MergeControlRegions,
    ] {
        let mut artifacts = compute_artifacts_for_cfg(&cfg);
        let applied = inject(&mut artifacts, &FaultPlan { kind, seed: 0 });
        assert!(applied.is_none(), "{kind} cannot apply to a single edge");
        let report = verify_artifacts(&artifacts, &VerifyConfig::default());
        assert!(report.is_clean(), "inapplicable {kind} corrupted state:\n{report}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary valid CFGs, any fault that applies is detected by at
    /// least one checker — and the intended checker is among them.
    #[test]
    fn injected_faults_never_go_undetected(
        n in 4usize..20,
        extra in 2usize..14,
        cfg_seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        kind_index in 0usize..FaultKind::ALL.len(),
    ) {
        let kind = FaultKind::ALL[kind_index];
        let cfg = random_cfg(n, extra, cfg_seed).expect("random_cfg repairs to validity");
        let mut artifacts = compute_artifacts_for_cfg(&cfg);
        let plan = FaultPlan { kind, seed: fault_seed };
        if let Some(what) = inject(&mut artifacts, &plan) {
            let report = verify_artifacts(&artifacts, &VerifyConfig::default());
            prop_assert!(
                !report.is_clean(),
                "{} ({}) went undetected on random_cfg({}, {}, {})",
                kind, what, n, extra, cfg_seed
            );
            prop_assert!(
                report.failing_checkers().contains(&kind.intended_checker()),
                "{} ({}) missed by its intended checker {} on random_cfg({}, {}, {}); caught by {:?}",
                kind, what, kind.intended_checker(), n, extra, cfg_seed,
                report.failing_checkers()
            );
        }
    }
}
