//! Naive maximal-path oracles for the strong control-dependence
//! checkers.
//!
//! `pst-controldep` computes NTSCD by backward counter propagation;
//! this module re-derives the same facts from first principles so the
//! two cannot share a bug. The key reformulation: a maximal path from
//! `x` that *avoids* `w` exists iff, in the graph with `w` deleted,
//! `x` can reach an original sink (the path ends there) or any node on
//! a cycle (the path pumps the cycle forever). So inevitability is
//! answered with one SCC pass and one backward reachability sweep —
//! a completely different algorithm from the checked one.

use pst_cfg::{Graph, NodeId, Sccs};

/// `result[x]` = every maximal path from `x` contains `w`.
///
/// Derivation: `x != w` can *avoid* `w` iff in `G ∖ {w}` it reaches a
/// node that is a sink of the original `G`, or a node lying on a cycle
/// of `G ∖ {w}` (a node whose only successors were `w` is a sink of
/// the deleted graph but not of `G` — its every real continuation goes
/// through `w`, so it is not an escape).
pub(crate) fn oracle_inevitable(graph: &Graph, w: NodeId) -> Vec<bool> {
    let n = graph.node_count();
    // G' = G with every edge incident to w removed.
    let mut pruned = Graph::new();
    let nodes = pruned.add_nodes(n);
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        if u != w && v != w {
            pruned.add_edge(nodes[u.index()], nodes[v.index()]);
        }
    }
    let sccs = Sccs::new(&pruned);
    let mut comp_size = vec![0usize; sccs.count()];
    for x in pruned.nodes() {
        comp_size[sccs.component(x)] += 1;
    }
    let mut escape = vec![false; n];
    for x in graph.nodes() {
        if x == w {
            continue;
        }
        // Sinks of the *original* graph end a maximal path right there.
        if graph.out_degree(x) == 0 {
            escape[x.index()] = true;
        }
        // Nodes on a cycle of G' start an infinite w-free path.
        if comp_size[sccs.component(x)] >= 2
            || pruned.successors(x).any(|s| s == x)
        {
            escape[x.index()] = true;
        }
    }
    // Backward reachability to an escape within G'.
    let mut stack: Vec<NodeId> = graph.nodes().filter(|&x| escape[x.index()]).collect();
    while let Some(x) = stack.pop() {
        for p in pruned.predecessors(x) {
            if !escape[p.index()] && p != w {
                escape[p.index()] = true;
                stack.push(p);
            }
        }
    }
    (0..n)
        .map(|i| NodeId::from_index(i) == w || !escape[i])
        .collect()
}

/// Distinct successors of every node, for the branch scan. Local copy —
/// the oracle must not lean on `pst-controldep`'s helpers.
pub(crate) fn distinct_successors(graph: &Graph, p: NodeId) -> Vec<NodeId> {
    let mut succs: Vec<NodeId> = graph.successors(p).collect();
    succs.sort_unstable();
    succs.dedup();
    succs
}

/// The full NTSCD relation by the naive oracle: `deps[n]` = sorted
/// branches `n` depends on.
pub(crate) fn oracle_ntscd(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let branches: Vec<(NodeId, Vec<NodeId>)> = graph
        .nodes()
        .map(|p| (p, distinct_successors(graph, p)))
        .filter(|(_, s)| s.len() >= 2)
        .collect();
    let mut deps: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for w in graph.nodes() {
        let inevitable = oracle_inevitable(graph, w);
        for (p, succs) in &branches {
            let any_in = succs.iter().any(|s| inevitable[s.index()]);
            let any_out = succs.iter().any(|s| !inevitable[s.index()]);
            if any_in && any_out {
                deps[w.index()].push(*p);
            }
        }
    }
    deps
}

/// `result[x]` = every maximal path from `x` reaches `a` strictly
/// before any visit to `b` — inevitability of `a` once `b`'s out-edges
/// are cut (every maximal path of that graph is an original maximal
/// path truncated at its first visit to `b`).
pub(crate) fn oracle_ordered(graph: &Graph, a: NodeId, b: NodeId) -> Vec<bool> {
    let n = graph.node_count();
    let mut cut = Graph::new();
    let nodes = cut.add_nodes(n);
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        if u != b {
            cut.add_edge(nodes[u.index()], nodes[v.index()]);
        }
    }
    oracle_inevitable(&cut, a)
}

/// All DOD witnesses `(p, a, b)` with `a < b` by exhaustive
/// enumeration over branches × same-inevitability pairs. Quadratic in
/// nodes with an `O(N + E)` oracle call per pair — the checker budgets
/// how large a graph this is allowed to run on.
pub(crate) fn oracle_dod(graph: &Graph) -> Vec<(NodeId, NodeId, NodeId)> {
    let n = graph.node_count();
    let branches: Vec<(NodeId, Vec<NodeId>)> = graph
        .nodes()
        .map(|p| (p, distinct_successors(graph, p)))
        .filter(|(_, s)| s.len() >= 2)
        .collect();
    if branches.is_empty() {
        return Vec::new();
    }
    let inevitable: Vec<Vec<bool>> = graph
        .nodes()
        .map(|w| oracle_inevitable(graph, w))
        .collect();
    let mut witnesses = Vec::new();
    for ai in 0..n {
        for bi in (ai + 1)..n {
            let (a, b) = (NodeId::from_index(ai), NodeId::from_index(bi));
            // Some branch must find both inevitable for the pair to
            // matter at all.
            if !branches
                .iter()
                .any(|(p, _)| inevitable[ai][p.index()] && inevitable[bi][p.index()])
            {
                continue;
            }
            let a_first = oracle_ordered(graph, a, b);
            let b_first = oracle_ordered(graph, b, a);
            for (p, succs) in &branches {
                if inevitable[ai][p.index()]
                    && inevitable[bi][p.index()]
                    && succs.iter().any(|s| a_first[s.index()])
                    && succs.iter().any(|s| b_first[s.index()])
                {
                    witnesses.push((*p, a, b));
                }
            }
        }
    }
    witnesses.sort_unstable();
    witnesses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(node_count: usize, edges: &[(usize, usize)]) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n = g.add_nodes(node_count);
        for &(a, b) in edges {
            g.add_edge(n[a], n[b]);
        }
        (g, n)
    }

    #[test]
    fn oracle_inevitability_on_a_while_loop() {
        let (g, n) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        assert_eq!(oracle_inevitable(&g, n[1]), vec![true, true, true, false]);
        // The loop may spin: the exit is not inevitable from anywhere
        // but itself.
        assert_eq!(oracle_inevitable(&g, n[3]), vec![false, false, false, true]);
    }

    #[test]
    fn oracle_ntscd_on_a_while_loop() {
        let (g, n) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let deps = oracle_ntscd(&g);
        assert_eq!(deps[0], vec![]);
        assert_eq!(deps[1], vec![n[1]]);
        assert_eq!(deps[2], vec![n[1]]);
        assert_eq!(deps[3], vec![n[1]]);
    }

    #[test]
    fn oracle_dod_finds_the_canonical_witness() {
        let (g, n) = graph(3, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        assert_eq!(oracle_dod(&g), vec![(n[0], n[1], n[2])]);
    }

    #[test]
    fn oracle_dod_is_empty_on_an_escapable_loop() {
        let (g, _) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        assert_eq!(oracle_dod(&g), vec![]);
    }
}
