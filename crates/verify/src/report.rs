//! Structured verification verdicts.
//!
//! Checkers never panic: each returns a [`ViolationReport`] listing what
//! it found (or that its oracle ran out of budget), and
//! [`VerifyReport`](crate::VerifyReport) aggregates one report per
//! checker so callers can render, count, or map the outcome onto an exit
//! code.

/// Identifies one of the independent pipeline checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckerId {
    /// Edge cycle equivalence vs. the slow undirected oracle (Definition 3).
    CycleEquiv,
    /// SESE conditions per canonical region via dom/pdom (Definition, Thm 2).
    Sese,
    /// PST structural coherence and proper nesting (Theorem 1).
    Pst,
    /// Control regions vs. the CDG baseline partition (Theorem 7).
    ControlRegions,
    /// PST φ-placement vs. the Cytron baseline (Theorem 9).
    Phi,
    /// NTSCD vs. the naive maximal-path oracle (plus classic-CD
    /// equivalence on acyclic graphs).
    Ntscd,
    /// DOD witnesses vs. exhaustive maximal-path enumeration.
    Dod,
}

impl CheckerId {
    /// All checkers, in pipeline order.
    pub const ALL: [CheckerId; 7] = [
        CheckerId::CycleEquiv,
        CheckerId::Sese,
        CheckerId::Pst,
        CheckerId::ControlRegions,
        CheckerId::Phi,
        CheckerId::Ntscd,
        CheckerId::Dod,
    ];

    /// Stable lowercase name (used in reports, counters, and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            CheckerId::CycleEquiv => "cycle-equiv",
            CheckerId::Sese => "sese",
            CheckerId::Pst => "pst",
            CheckerId::ControlRegions => "control-regions",
            CheckerId::Phi => "phi",
            CheckerId::Ntscd => "ntscd",
            CheckerId::Dod => "dod",
        }
    }
}

impl std::fmt::Display for CheckerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reports keep at most this many violation messages; further violations
/// are only counted, so a badly corrupted input cannot balloon memory.
pub const MAX_RECORDED_VIOLATIONS: usize = 16;

/// Outcome of running one checker over one pipeline's artifacts.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// Which checker produced this report.
    pub checker: CheckerId,
    /// Human-readable violation descriptions (first
    /// [`MAX_RECORDED_VIOLATIONS`] only).
    pub violations: Vec<String>,
    /// Total violations found, including ones not recorded.
    pub violation_count: usize,
    /// The checker's oracle hit its step budget and the check is
    /// *inconclusive* (no violations were established).
    pub budget_exhausted: bool,
}

impl ViolationReport {
    /// A fresh, clean report for `checker`.
    pub fn new(checker: CheckerId) -> Self {
        ViolationReport {
            checker,
            violations: Vec::new(),
            violation_count: 0,
            budget_exhausted: false,
        }
    }

    /// Records one violation (message kept only below the cap).
    pub fn push(&mut self, message: String) {
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(message);
        }
        self.violation_count += 1;
    }

    /// Whether the checker found no violations (an exhausted budget still
    /// counts as "no violation" — the check is inconclusive, not failed).
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            if self.budget_exhausted {
                write!(f, "{}: inconclusive (oracle budget exhausted)", self.checker)
            } else {
                write!(f, "{}: ok", self.checker)
            }
        } else {
            writeln!(f, "{}: {} violation(s)", self.checker, self.violation_count)?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            if self.violation_count > self.violations.len() {
                writeln!(
                    f,
                    "  … and {} more",
                    self.violation_count - self.violations.len()
                )?;
            }
            Ok(())
        }
    }
}

/// Aggregated verdict of all checkers over one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// One report per checker that ran, in pipeline order.
    pub reports: Vec<ViolationReport>,
}

impl VerifyReport {
    /// Whether every checker came back clean.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.is_clean())
    }

    /// Total violations across all checkers.
    pub fn violation_count(&self) -> usize {
        self.reports.iter().map(|r| r.violation_count).sum()
    }

    /// Checkers whose oracle budget ran out (inconclusive checks).
    pub fn exhausted_checkers(&self) -> Vec<CheckerId> {
        self.reports
            .iter()
            .filter(|r| r.budget_exhausted)
            .map(|r| r.checker)
            .collect()
    }

    /// The report of a specific checker, if it ran.
    pub fn report_for(&self, checker: CheckerId) -> Option<&ViolationReport> {
        self.reports.iter().find(|r| r.checker == checker)
    }

    /// Checkers that found at least one violation.
    pub fn failing_checkers(&self) -> Vec<CheckerId> {
        self.reports
            .iter()
            .filter(|r| !r.is_clean())
            .map(|r| r.checker)
            .collect()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in &self.reports {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_caps_recorded_messages() {
        let mut r = ViolationReport::new(CheckerId::Pst);
        for i in 0..MAX_RECORDED_VIOLATIONS + 5 {
            r.push(format!("violation {i}"));
        }
        assert_eq!(r.violations.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(r.violation_count, MAX_RECORDED_VIOLATIONS + 5);
        assert!(!r.is_clean());
        assert!(r.to_string().contains("and 5 more"));
    }

    #[test]
    fn clean_and_exhausted_render() {
        let mut r = ViolationReport::new(CheckerId::CycleEquiv);
        assert!(r.is_clean());
        assert_eq!(r.to_string(), "cycle-equiv: ok");
        r.budget_exhausted = true;
        assert!(r.is_clean(), "budget exhaustion is not a violation");
        assert!(r.to_string().contains("inconclusive"));
    }

    #[test]
    fn aggregate_verdicts() {
        let mut v = VerifyReport::default();
        v.reports.push(ViolationReport::new(CheckerId::Sese));
        assert!(v.is_clean());
        let mut bad = ViolationReport::new(CheckerId::Phi);
        bad.push("missing φ".to_string());
        v.reports.push(bad);
        assert!(!v.is_clean());
        assert_eq!(v.violation_count(), 1);
        assert_eq!(v.failing_checkers(), vec![CheckerId::Phi]);
        assert!(v.report_for(CheckerId::Sese).unwrap().is_clean());
    }
}
