//! # pst-verify — certifying checks for the PST pipeline
//!
//! The paper's claims are structural: SESE regions satisfy dominance,
//! postdominance, and cycle equivalence (Definition, Theorem 2);
//! canonical regions nest into a tree (Theorem 1); control regions
//! coincide with node cycle equivalence (Theorem 7); PST-driven
//! φ-placement equals the classical one (Theorem 9). This crate makes
//! those claims *checkable at runtime*: each stage gets an independent
//! checker that re-derives the invariant via a slow oracle or a baseline
//! algorithm and reports violations as data ([`ViolationReport`]) rather
//! than panics.
//!
//! The `fault-inject` feature adds seeded artifact corruptions
//! (`FaultPlan`) whose sole purpose is to prove in tests that every
//! checker actually fires — a checker that cannot be tripped is a
//! tautology, not a check.
//!
//! ```
//! use pst_cfg::parse_edge_list;
//! use pst_verify::{compute_artifacts_for_cfg, verify_artifacts, VerifyConfig};
//! let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
//! let artifacts = compute_artifacts_for_cfg(&cfg);
//! let report = verify_artifacts(&artifacts, &VerifyConfig::default());
//! assert!(report.is_clean(), "{report}");
//! ```

mod checkers;
#[cfg(feature = "fault-inject")]
mod fault;
mod pipeline;
mod report;
mod strong_oracle;

pub use checkers::{
    check_control_regions, check_cycle_equiv, check_dod, check_ntscd, check_phi, check_pst,
    check_sese,
};
#[cfg(feature = "fault-inject")]
pub use fault::{inject, FaultKind, FaultPlan};
pub use pipeline::{
    compute_artifacts, compute_artifacts_for_cfg, synthetic_function, verify_artifacts,
    verify_strong_on_digraph, PipelineArtifacts, VerifyConfig, DEFAULT_ORACLE_BUDGET,
};
pub use report::{CheckerId, VerifyReport, ViolationReport, MAX_RECORDED_VIOLATIONS};

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    #[test]
    fn paper_figure_pipeline_is_clean() {
        let cfg = parse_edge_list(
            "0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13",
        )
        .unwrap();
        let artifacts = compute_artifacts_for_cfg(&cfg);
        let report = verify_artifacts(&artifacts, &VerifyConfig::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.reports.len(), CheckerId::ALL.len());
    }

    #[test]
    fn tiny_budget_is_inconclusive_not_failed() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let artifacts = compute_artifacts_for_cfg(&cfg);
        let config = VerifyConfig {
            oracle_budget: Some(1),
        };
        let report = verify_artifacts(&artifacts, &config);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            report.exhausted_checkers(),
            vec![CheckerId::CycleEquiv, CheckerId::Ntscd, CheckerId::Dod]
        );
    }

    #[test]
    fn degenerate_single_edge_cfg_is_clean() {
        let cfg = parse_edge_list("0->1").unwrap();
        let artifacts = compute_artifacts_for_cfg(&cfg);
        let report = verify_artifacts(&artifacts, &VerifyConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn hand_corrupted_phi_is_caught_without_fault_feature() {
        use pst_ssa::PhiPlacement;
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let mut artifacts = compute_artifacts_for_cfg(&cfg);
        // The diamond join at node 3 needs φs; erase them all.
        let empty: Vec<Vec<pst_cfg::NodeId>> =
            vec![Vec::new(); artifacts.function.var_count()];
        artifacts.phi = PhiPlacement::from_lists(empty);
        let report = verify_artifacts(&artifacts, &VerifyConfig::default());
        assert!(!report.is_clean());
        assert!(report.failing_checkers().contains(&CheckerId::Phi));
    }
}
