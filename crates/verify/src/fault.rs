//! Seeded fault injection: deliberate, minimal corruptions of pipeline
//! artifacts, used to prove the checkers are sound *detectors* rather
//! than tautologies. Compiled only under the `fault-inject` feature.
//!
//! Every mutation is designed to keep the corrupted artifact internally
//! plausible — dense class ids, coherent tree links — so only a checker
//! that re-derives the invariant from the CFG can notice. A checker that
//! merely re-reads the artifact would pass, and the proptests in
//! `tests/fault_injection.rs` would catch that vacuity.

use pst_cfg::NodeId;
use pst_controldep::{Dod, DodWitness, Ntscd, StrongControlDeps};
use pst_core::{ControlRegions, CycleEquiv, RegionId};
use pst_ssa::PhiPlacement;

use crate::pipeline::PipelineArtifacts;
use crate::report::CheckerId;

/// The kinds of deliberate corruption [`inject`] can apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Move one edge of a multi-edge cycle-equivalence class into a
    /// different existing class (mislabels one bracket name).
    SwapBracketNames,
    /// Relabel an entire cycle-equivalence class as another one.
    MergeCycleClasses,
    /// Move one edge of a multi-edge class into a fresh singleton class.
    SplitCycleClass,
    /// Reparent a PST region under a non-ancestor region, recomputing
    /// depths/intervals so the tree stays internally coherent.
    ReparentRegion,
    /// Remove one φ site from the computed placement.
    DropPhiSite,
    /// Merge two control regions into one.
    MergeControlRegions,
    /// Insert one `(node, branch)` pair the NTSCD relation does not
    /// contain.
    AddSpuriousNtscdDep,
    /// Append a fabricated DOD witness triple.
    ForgeDodWitness,
}

impl FaultKind {
    /// Every fault kind, for table-driven tests.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::SwapBracketNames,
        FaultKind::MergeCycleClasses,
        FaultKind::SplitCycleClass,
        FaultKind::ReparentRegion,
        FaultKind::DropPhiSite,
        FaultKind::MergeControlRegions,
        FaultKind::AddSpuriousNtscdDep,
        FaultKind::ForgeDodWitness,
    ];

    /// Stable lowercase name (used by the CLI's `--inject-fault`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SwapBracketNames => "swap-bracket-names",
            FaultKind::MergeCycleClasses => "merge-cycle-classes",
            FaultKind::SplitCycleClass => "split-cycle-class",
            FaultKind::ReparentRegion => "reparent-region",
            FaultKind::DropPhiSite => "drop-phi-site",
            FaultKind::MergeControlRegions => "merge-control-regions",
            FaultKind::AddSpuriousNtscdDep => "add-spurious-ntscd-dep",
            FaultKind::ForgeDodWitness => "forge-dod-witness",
        }
    }

    /// Parses a [`name`](Self::name) back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The checker this fault is designed to trip. Other checkers may
    /// also notice (a corrupted partition ruins region detection's
    /// bookkeeping too), but this one *must*.
    pub fn intended_checker(self) -> CheckerId {
        match self {
            FaultKind::SwapBracketNames
            | FaultKind::MergeCycleClasses
            | FaultKind::SplitCycleClass => CheckerId::CycleEquiv,
            FaultKind::ReparentRegion => CheckerId::Pst,
            FaultKind::DropPhiSite => CheckerId::Phi,
            FaultKind::MergeControlRegions => CheckerId::ControlRegions,
            FaultKind::AddSpuriousNtscdDep => CheckerId::Ntscd,
            FaultKind::ForgeDodWitness => CheckerId::Dod,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded, reproducible corruption: the same plan applied to the same
/// artifacts always mutates the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Picks *which* edge/class/region/φ-site is corrupted.
    pub seed: u64,
}

/// Minimal deterministic generator (SplitMix64) so fault selection does
/// not pull the `rand` crate into a non-test dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish pick from a non-empty slice.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

/// Applies `plan` to `artifacts`, corrupting exactly one artifact.
///
/// Returns a description of what was done, or `None` when the input is
/// too degenerate for this fault to apply (e.g. splitting a class when
/// every class is a singleton) — the artifacts are untouched in that
/// case. Inapplicability is *structural*, so callers can skip rather
/// than fail.
pub fn inject(artifacts: &mut PipelineArtifacts, plan: &FaultPlan) -> Option<String> {
    let mut rng = SplitMix64(plan.seed ^ 0xda94_2042_e4dd_58b5);
    match plan.kind {
        FaultKind::SwapBracketNames => {
            // Move one edge out of a multi-edge class into another class:
            // after renumbering, the partition genuinely differs (moving
            // between two singletons would merely rename labels).
            let labels = artifacts.detection.cycle_equiv.classes().to_vec();
            let groups = artifacts.detection.cycle_equiv.groups();
            let donors: Vec<usize> = (0..groups.len()).filter(|&c| groups[c].len() >= 2).collect();
            if donors.is_empty() || groups.len() < 2 {
                return None;
            }
            let donor = *rng.pick(&donors);
            let edge = *rng.pick(&groups[donor]);
            let others: Vec<u32> =
                (0..groups.len() as u32).filter(|&c| c as usize != donor).collect();
            let target = *rng.pick(&others);
            let mut mutated = labels;
            mutated[edge.index()] = target;
            artifacts.detection.cycle_equiv = CycleEquiv::from_classes(mutated);
            Some(format!(
                "moved edge {edge} from cycle-equivalence class {donor} to class {target}"
            ))
        }
        FaultKind::MergeCycleClasses => {
            let labels = artifacts.detection.cycle_equiv.classes().to_vec();
            let num = artifacts.detection.cycle_equiv.num_classes();
            if num < 2 {
                return None;
            }
            let a = rng.next() % num as u64;
            let b = (a + 1 + rng.next() % (num as u64 - 1)) % num as u64;
            let mutated: Vec<u32> = labels
                .into_iter()
                .map(|l| if l as u64 == b { a as u32 } else { l })
                .collect();
            artifacts.detection.cycle_equiv = CycleEquiv::from_classes(mutated);
            Some(format!("merged cycle-equivalence class {b} into class {a}"))
        }
        FaultKind::SplitCycleClass => {
            let labels = artifacts.detection.cycle_equiv.classes().to_vec();
            let groups = artifacts.detection.cycle_equiv.groups();
            let splittable: Vec<usize> =
                (0..groups.len()).filter(|&c| groups[c].len() >= 2).collect();
            if splittable.is_empty() {
                return None;
            }
            let class = *rng.pick(&splittable);
            let edge = *rng.pick(&groups[class]);
            let mut mutated = labels;
            mutated[edge.index()] = groups.len() as u32;
            artifacts.detection.cycle_equiv = CycleEquiv::from_classes(mutated);
            Some(format!(
                "split edge {edge} out of cycle-equivalence class {class}"
            ))
        }
        FaultKind::ReparentRegion => {
            let pst = &mut artifacts.pst;
            // Every (region, new-parent) pair fault_reparent accepts:
            // non-root region, destination outside the region's subtree,
            // destination not already the parent.
            let mut candidates: Vec<(RegionId, RegionId)> = Vec::new();
            for r in pst.regions() {
                if pst.parent(r).is_none() {
                    continue;
                }
                for p in pst.regions() {
                    if p != r && pst.parent(r) != Some(p) && !pst.region_contains(r, p) {
                        candidates.push((r, p));
                    }
                }
            }
            if candidates.is_empty() {
                return None;
            }
            let &(region, new_parent) = rng.pick(&candidates);
            let applied = pst.fault_reparent(region, new_parent);
            debug_assert!(applied, "candidate enumeration mirrors the guards");
            Some(format!("reparented {region} under {new_parent}"))
        }
        FaultKind::DropPhiSite => {
            let mut lists: Vec<Vec<_>> = artifacts
                .phi
                .iter()
                .map(|(_, nodes)| nodes.to_vec())
                .collect();
            let occupied: Vec<usize> =
                (0..lists.len()).filter(|&v| !lists[v].is_empty()).collect();
            if occupied.is_empty() {
                return None;
            }
            let var = *rng.pick(&occupied);
            let at = (rng.next() % lists[var].len() as u64) as usize;
            let node = lists[var].remove(at);
            artifacts.phi = PhiPlacement::from_lists(lists);
            Some(format!(
                "dropped the φ for variable v{var} at node {}",
                node.index()
            ))
        }
        FaultKind::MergeControlRegions => {
            let labels = artifacts.control_regions.classes().to_vec();
            let num = artifacts.control_regions.num_classes();
            if num < 2 {
                return None;
            }
            let a = rng.next() % num as u64;
            let b = (a + 1 + rng.next() % (num as u64 - 1)) % num as u64;
            let mutated: Vec<u32> = labels
                .into_iter()
                .map(|l| if l as u64 == b { a as u32 } else { l })
                .collect();
            artifacts.control_regions = ControlRegions::from_classes(mutated);
            Some(format!("merged control region {b} into region {a}"))
        }
        FaultKind::AddSpuriousNtscdDep => {
            let n = artifacts.cfg().node_count();
            if n == 0 {
                return None;
            }
            let mut deps = artifacts.strong.ntscd().clone().into_raw();
            // Scan from a random offset for a (node, branch) pair the
            // relation does not contain; only a complete relation (every
            // node depending on every node) leaves nothing to add.
            let total = n * n;
            let start = (rng.next() % total as u64) as usize;
            let mut found = None;
            for k in 0..total {
                let idx = (start + k) % total;
                let (node, branch) = (idx / n, idx % n);
                if let Err(pos) = deps[node].binary_search(&NodeId::from_index(branch)) {
                    found = Some((node, branch, pos));
                    break;
                }
            }
            let (node, branch, pos) = found?;
            deps[node].insert(pos, NodeId::from_index(branch));
            artifacts.strong = StrongControlDeps::from_parts(
                Ntscd::from_raw(deps),
                artifacts.strong.dod().clone(),
                artifacts.strong.classic().cloned(),
            );
            Some(format!(
                "added a spurious NTSCD dependence of node {node} on node {branch}"
            ))
        }
        FaultKind::ForgeDodWitness => {
            let n = artifacts.cfg().node_count();
            if n < 3 {
                return None;
            }
            let mut witnesses = artifacts.strong.dod().clone().into_raw();
            let complete = artifacts.strong.dod().is_complete();
            for _attempt in 0..64 {
                let p = (rng.next() % n as u64) as usize;
                let x = (rng.next() % n as u64) as usize;
                let y = (rng.next() % n as u64) as usize;
                if x == y {
                    continue;
                }
                let (a, b) = if x < y { (x, y) } else { (y, x) };
                let forged = DodWitness {
                    branch: NodeId::from_index(p),
                    first: NodeId::from_index(a),
                    second: NodeId::from_index(b),
                };
                let Err(pos) = witnesses.binary_search(&forged) else {
                    continue;
                };
                witnesses.insert(pos, forged);
                artifacts.strong = StrongControlDeps::from_parts(
                    artifacts.strong.ntscd().clone(),
                    Dod::from_raw(witnesses, complete),
                    artifacts.strong.classic().cloned(),
                );
                return Some(format!("forged a DOD witness ({p}; {a}, {b})"));
            }
            None
        }
    }
}
