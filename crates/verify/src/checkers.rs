//! Independent invariant checkers for every pipeline stage.
//!
//! Each checker re-derives its invariant from first principles — slow
//! oracles, the edge-split dominance oracle, or an independent baseline
//! algorithm — and compares against the fast pipeline's output. None of
//! them share code with the computation they check, so a bug in the
//! linear-time algorithms cannot silently cancel out in the checker.
//!
//! | checker | paper claim | oracle |
//! |---|---|---|
//! | [`check_cycle_equiv`] | Definition 3 | `cycle_equiv_slow_undirected` |
//! | [`check_sese`] | Definition / Theorem 2 | edge-split dom + pdom trees |
//! | [`check_pst`] | Theorem 1 | dominance membership vs. tree containment |
//! | [`check_control_regions`] | Theorem 7 | `fow_control_regions` (CDG baseline) |
//! | [`check_phi`] | Theorem 9 | `place_phis_cytron` (IDF baseline) |
//! | [`check_ntscd`] | NTSCD (Chalupa et al.) | SCC + reachability maximal-path oracle |
//! | [`check_dod`] | DOD (Chalupa et al.) | exhaustive pair enumeration |
//!
//! Partition comparison is delegated to `pst_controldep::canonical_partition`
//! — the one canonical helper the whole workspace shares.

use pst_cfg::{Cfg, EdgeId, EdgeSplit, Graph, NodeId, Sccs};
use pst_controldep::{canonical_partition, fow_control_regions, StrongControlDeps};
use pst_core::{
    cycle_equiv_slow_undirected, CanonicalRegions, ControlRegions, ProgramStructureTree,
};
use pst_dominators::{dominator_tree, dominator_tree_in, Direction, DomTree};
use pst_lang::LoweredFunction;
use pst_ssa::{place_phis_cytron, PhiPlacement};

use crate::report::{CheckerId, ViolationReport};
use crate::strong_oracle::{
    distinct_successors, oracle_dod, oracle_inevitable, oracle_ntscd, oracle_ordered,
};

/// Checks the fast cycle-equivalence partition over `S = G + (end→start)`
/// against the slow undirected oracle (Definition 3), under `budget`
/// oracle steps (`None` = unlimited).
///
/// The partition being checked is the one region detection ran on —
/// [`CanonicalRegions::cycle_equiv`] — so a corrupted partition is caught
/// even when recomputing from the CFG would come back clean.
pub fn check_cycle_equiv(
    cfg: &Cfg,
    detection: &CanonicalRegions,
    budget: Option<u64>,
) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::CycleEquiv);
    let (s, _virtual_edge) = cfg.to_strongly_connected();
    if detection.cycle_equiv.classes().len() != s.edge_count() {
        report.push(format!(
            "partition covers {} edges but S has {}",
            detection.cycle_equiv.classes().len(),
            s.edge_count()
        ));
        return report;
    }
    let slow = match cycle_equiv_slow_undirected(&s, budget) {
        Ok(slow) => slow,
        Err(_) => {
            report.budget_exhausted = true;
            return report;
        }
    };
    let fast = canonical_partition(detection.cycle_equiv.classes());
    let oracle = canonical_partition(slow.classes());
    if fast == oracle {
        return report;
    }
    // Pin the mismatch to concrete edge pairs for the report.
    for i in 0..fast.len() {
        for j in i + 1..fast.len() {
            let fast_same = fast[i] == fast[j];
            if fast_same != (oracle[i] == oracle[j]) {
                report.push(format!(
                    "edges e{i} and e{j} are {} per the oracle but {} in the checked partition",
                    if fast_same { "inequivalent" } else { "equivalent" },
                    if fast_same { "equivalent" } else { "inequivalent" },
                ));
                if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                    return report;
                }
            }
        }
    }
    report
}

/// The dominance oracle every structural checker shares: dominator and
/// postdominator trees of the edge-split graph, where edge dominance
/// reduces to node dominance of midpoints.
pub(crate) struct DomOracle {
    split: EdgeSplit,
    dom: DomTree,
    pdom: DomTree,
}

impl DomOracle {
    pub(crate) fn new(cfg: &Cfg) -> Self {
        let split = EdgeSplit::of_cfg(cfg);
        let dom = dominator_tree(split.graph(), cfg.entry());
        let pdom = dominator_tree_in(split.graph(), cfg.exit(), Direction::Backward);
        DomOracle { split, dom, pdom }
    }

    fn edge_dom(&self, a: EdgeId, b: EdgeId) -> bool {
        self.dom
            .dominates(self.split.midpoint(a), self.split.midpoint(b))
    }

    fn edge_pdom(&self, a: EdgeId, b: EdgeId) -> bool {
        self.pdom
            .dominates(self.split.midpoint(a), self.split.midpoint(b))
    }

    /// Definition-6 membership: node `n` lies in region `(entry, exit)`
    /// iff the entry edge dominates it and the exit edge postdominates it.
    fn node_in_region(&self, entry: EdgeId, exit: EdgeId, n: NodeId) -> bool {
        self.dom.dominates(self.split.midpoint(entry), n)
            && self.pdom.dominates(self.split.midpoint(exit), n)
    }
}

/// Checks every canonical region against the definitional SESE triple —
/// entry dominates exit, exit postdominates entry, the two are cycle
/// equivalent — plus canonicity: each class's dominance order and the
/// adjacent-pair completeness count (Definition 5).
pub fn check_sese(cfg: &Cfg, detection: &CanonicalRegions) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::Sese);
    let oracle = DomOracle::new(cfg);
    let m = cfg.edge_count();
    for r in &detection.regions {
        if r.entry.index() >= m || r.exit.index() >= m {
            report.push(format!(
                "region ({}, {}) references an edge outside the CFG",
                r.entry, r.exit
            ));
            continue;
        }
        if !oracle.edge_dom(r.entry, r.exit) {
            report.push(format!(
                "region ({}, {}): entry does not dominate exit",
                r.entry, r.exit
            ));
        }
        if !oracle.edge_pdom(r.exit, r.entry) {
            report.push(format!(
                "region ({}, {}): exit does not postdominate entry",
                r.entry, r.exit
            ));
        }
        if !detection.cycle_equiv.same_class(r.entry, r.exit) {
            report.push(format!(
                "region ({}, {}): boundary edges are not cycle equivalent",
                r.entry, r.exit
            ));
        }
    }
    for class in &detection.ordered_classes {
        for w in class.windows(2) {
            if !oracle.edge_dom(w[0], w[1]) || !oracle.edge_pdom(w[1], w[0]) {
                report.push(format!(
                    "class edges {} and {} are not adjacent in dominance order",
                    w[0], w[1]
                ));
            }
        }
    }
    let expected: usize = detection
        .ordered_classes
        .iter()
        .map(|c| c.len().saturating_sub(1))
        .sum();
    if detection.regions.len() != expected {
        report.push(format!(
            "{} regions reported but the classes imply {}",
            detection.regions.len(),
            expected
        ));
    }
    report
}

/// Checks the PST against Theorem 1: tree coherence (parent/child/depth
/// links, every region reachable from the root), semantic membership
/// (tree containment of every node agrees with the dom/pdom membership
/// oracle — this is what catches a reparented region), and
/// `region_of_node`/`region_of_edge` consistency.
pub fn check_pst(cfg: &Cfg, pst: &ProgramStructureTree) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::Pst);

    // --- Tree coherence (no CFG semantics involved). ---
    let root = pst.root();
    if pst.parent(root).is_some() {
        report.push("root region has a parent".to_string());
    }
    if pst.bounds(root).is_some() {
        report.push("root region has boundary edges".to_string());
    }
    let mut seen = vec![false; pst.region_count()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(r) = stack.pop() {
        for &c in pst.children(r) {
            if pst.parent(c) != Some(r) {
                report.push(format!("{c} is listed as a child of {r} but has another parent"));
            }
            if pst.depth(c) != pst.depth(r) + 1 {
                report.push(format!("{c} has depth {} under {r}", pst.depth(c)));
            }
            if !pst.region_contains(r, c) {
                report.push(format!("containment intervals deny that {r} contains child {c}"));
            }
            if seen[c.index()] {
                report.push(format!("{c} appears twice in the tree"));
                continue;
            }
            seen[c.index()] = true;
            stack.push(c);
        }
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            report.push(format!("r{i} is unreachable from the root"));
        }
    }
    if !report.is_clean() {
        // The tree is not even well formed; semantic checks below would
        // only repeat the damage in less direct terms.
        return report;
    }

    // --- Semantic membership: tree containment must agree with the
    // dominance oracle for every (canonical region, node) pair. ---
    let oracle = DomOracle::new(cfg);
    let n_nodes = cfg.node_count();
    if pst.node_count() != n_nodes {
        report.push(format!(
            "PST indexes {} nodes but the CFG has {n_nodes}",
            pst.node_count()
        ));
        return report;
    }
    for r in pst.regions() {
        let Some(b) = pst.bounds(r) else { continue };
        for i in 0..n_nodes {
            let node = NodeId::from_index(i);
            let semantic = oracle.node_in_region(b.entry, b.exit, node);
            let tree = pst.contains_node(r, node);
            if semantic != tree {
                report.push(format!(
                    "node {i} is {} region {r} per dominance but {} per the tree",
                    if semantic { "inside" } else { "outside" },
                    if tree { "inside" } else { "outside" },
                ));
            }
        }
    }

    // --- region_of_edge threading: a region's entry edge belongs to the
    // region itself, its exit edge to the parent; any other edge belongs
    // to the innermost region containing its midpoint. ---
    let mut entry_of = vec![None; cfg.edge_count()];
    let mut exit_of = vec![None; cfg.edge_count()];
    for r in pst.regions() {
        if let Some(b) = pst.bounds(r) {
            entry_of[b.entry.index()] = Some(r);
            exit_of[b.exit.index()] = Some(r);
        }
    }
    for e in cfg.graph().edges() {
        let got = pst.region_of_edge(e);
        let expected = if let Some(r) = entry_of[e.index()] {
            Some(r)
        } else if let Some(r) = exit_of[e.index()] {
            pst.parent(r).or(Some(root))
        } else {
            // Innermost canonical region whose boundary pair semantically
            // contains both endpoints (the root when none does).
            let (u, v) = cfg.graph().endpoints(e);
            pst.regions()
                .filter(|&r| {
                    pst.bounds(r).is_some_and(|b| {
                        oracle.node_in_region(b.entry, b.exit, u)
                            && oracle.node_in_region(b.entry, b.exit, v)
                    })
                })
                .max_by_key(|&r| pst.depth(r))
                .or(Some(root))
        };
        if Some(got) != expected {
            report.push(format!(
                "edge {e} is threaded into {got} but belongs to {}",
                expected.expect("expected region is always set")
            ));
        }
    }
    report
}

/// Checks the linear-time control-region partition against the
/// Cytron–Ferrante–Sarkar CDG baseline (Theorem 7 says they coincide).
pub fn check_control_regions(cfg: &Cfg, control_regions: &ControlRegions) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::ControlRegions);
    let n = cfg.node_count();
    if control_regions.classes().len() != n {
        report.push(format!(
            "partition covers {} nodes but the CFG has {n}",
            control_regions.classes().len()
        ));
        return report;
    }
    let baseline = fow_control_regions(cfg);
    if *control_regions == baseline {
        return report;
    }
    let got = canonical_partition(control_regions.classes());
    let want = canonical_partition(baseline.classes());
    for i in 0..n {
        for j in i + 1..n {
            let got_same = got[i] == got[j];
            if got_same != (want[i] == want[j]) {
                report.push(format!(
                    "nodes {i} and {j} are {} per the CDG baseline but {} in the checked partition",
                    if got_same { "in different regions" } else { "in one region" },
                    if got_same { "in one region" } else { "in different regions" },
                ));
                if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                    return report;
                }
            }
        }
    }
    report
}

/// Checks a PST-driven φ-placement against the Cytron iterated-
/// dominance-frontier baseline (Theorem 9 says they are equal).
pub fn check_phi(function: &LoweredFunction, placement: &PhiPlacement) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::Phi);
    let baseline = place_phis_cytron(function);
    if *placement == baseline {
        return report;
    }
    if placement.var_count() != baseline.var_count() {
        report.push(format!(
            "placement covers {} variables but the function has {}",
            placement.var_count(),
            baseline.var_count()
        ));
        return report;
    }
    for (var, want) in baseline.iter() {
        let got = placement.phis_of(var);
        if got == want {
            continue;
        }
        let name = &function.vars[var.index()];
        for node in want {
            if !got.contains(node) {
                report.push(format!(
                    "variable `{name}` is missing a φ at node {}",
                    node.index()
                ));
            }
        }
        for node in got {
            if !want.contains(node) {
                report.push(format!(
                    "variable `{name}` has a spurious φ at node {}",
                    node.index()
                ));
            }
        }
    }
    report
}

/// Whether the graph is acyclic: every SCC trivial and no self-loops.
/// On a valid CFG this is exactly the guaranteed-termination class —
/// every node reaches the exit, so any cycle could be pumped into an
/// infinite maximal path (see docs/CONTROLDEP.md).
fn is_acyclic(graph: &Graph) -> bool {
    let sccs = Sccs::new(graph);
    let mut size = vec![0usize; sccs.count()];
    for x in graph.nodes() {
        size[sccs.component(x)] += 1;
    }
    size.iter().all(|&s| s <= 1) && !graph.nodes().any(|x| graph.successors(x).any(|s| s == x))
}

fn fmt_nodes(nodes: &[NodeId]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.index().to_string()).collect();
    format!("{{{}}}", items.join(", "))
}

/// Checks the NTSCD relation against the naive maximal-path oracle
/// (`strong_oracle`), node by node, under `budget` oracle steps. When
/// the artifact carries a classic relation and the graph is acyclic
/// (every maximal path terminates), additionally asserts NTSCD ≡
/// classic control dependence — the theorem that the strong relation
/// degrades to the paper's weak one on the guaranteed-termination
/// class.
pub fn check_ntscd(
    graph: &Graph,
    strong: &StrongControlDeps,
    budget: Option<u64>,
) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::Ntscd);
    let n = graph.node_count();
    let ntscd = strong.ntscd();
    if ntscd.node_count() != n {
        report.push(format!(
            "relation covers {} nodes but the graph has {n}",
            ntscd.node_count()
        ));
        return report;
    }
    let cost = (n as u64) * (n as u64 + graph.edge_count() as u64 + 1);
    if budget.is_some_and(|b| cost > b) {
        report.budget_exhausted = true;
        return report;
    }
    let oracle = oracle_ntscd(graph);
    for (i, want) in oracle.iter().enumerate() {
        let node = NodeId::from_index(i);
        let got = ntscd.deps_of(node);
        if got != want.as_slice() {
            report.push(format!(
                "node {i}: NTSCD set {} but the maximal-path oracle derives {}",
                fmt_nodes(got),
                fmt_nodes(want),
            ));
            if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                return report;
            }
        }
    }
    if let Some(classic) = strong.classic() {
        if is_acyclic(graph) {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if ntscd.deps_of(node) != classic.deps_of(node) {
                    report.push(format!(
                        "acyclic graph, node {i}: NTSCD {} differs from classic CD {}",
                        fmt_nodes(ntscd.deps_of(node)),
                        fmt_nodes(classic.deps_of(node)),
                    ));
                    if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                        return report;
                    }
                }
            }
        }
    }
    report
}

/// Checks the DOD witness set. Every reported witness is re-proved
/// from its definition via the maximal-path oracles (soundness); when
/// the artifact claims completeness and the budget allows, the
/// exhaustive enumeration is compared in full (no missing witnesses).
pub fn check_dod(graph: &Graph, strong: &StrongControlDeps, budget: Option<u64>) -> ViolationReport {
    let mut report = ViolationReport::new(CheckerId::Dod);
    let dod = strong.dod();
    let n = graph.node_count() as u64;
    let per_pass = n + graph.edge_count() as u64 + 1;
    let full_cost = n * n * per_pass;
    if dod.is_complete() && budget.is_none_or(|b| full_cost <= b) {
        // Exact comparison both ways.
        let got: Vec<(NodeId, NodeId, NodeId)> = dod
            .witnesses()
            .iter()
            .map(|w| (w.branch, w.first, w.second))
            .collect();
        let want = oracle_dod(graph);
        for w in &want {
            if !got.contains(w) {
                report.push(format!(
                    "missing witness: branch {} decides the order of ({}, {})",
                    w.0.index(),
                    w.1.index(),
                    w.2.index()
                ));
                if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                    return report;
                }
            }
        }
        for w in &got {
            if !want.contains(w) {
                report.push(format!(
                    "spurious witness: branch {} does not decide the order of ({}, {})",
                    w.0.index(),
                    w.1.index(),
                    w.2.index()
                ));
                if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                    return report;
                }
            }
        }
        return report;
    }
    // Budget (or declared truncation) forbids full enumeration: still
    // re-prove each reported witness individually.
    let witness_cost = (dod.witnesses().len() as u64) * 4 * per_pass;
    if budget.is_some_and(|b| witness_cost > b) {
        report.budget_exhausted = true;
        return report;
    }
    if dod.is_complete() {
        // We had the budget for the soundness pass but not the
        // completeness sweep: the check is partial.
        report.budget_exhausted = true;
    }
    for w in dod.witnesses() {
        let (p, a, b) = (w.branch, w.first, w.second);
        if a >= b {
            report.push(format!(
                "witness ({}, {}, {}) is not normalized (first < second)",
                p.index(),
                a.index(),
                b.index()
            ));
            continue;
        }
        let succs = distinct_successors(graph, p);
        let in_a = oracle_inevitable(graph, a);
        let in_b = oracle_inevitable(graph, b);
        let a_first = oracle_ordered(graph, a, b);
        let b_first = oracle_ordered(graph, b, a);
        let holds = in_a[p.index()]
            && in_b[p.index()]
            && succs.iter().any(|s| a_first[s.index()])
            && succs.iter().any(|s| b_first[s.index()]);
        if !holds {
            report.push(format!(
                "witness rejected by the oracle: branch {} does not decide the order of ({}, {})",
                p.index(),
                a.index(),
                b.index()
            ));
            if report.violations.len() == crate::report::MAX_RECORDED_VIOLATIONS {
                return report;
            }
        }
    }
    report
}
