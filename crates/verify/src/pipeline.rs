//! One-stop pipeline driver for verification: computes every artifact the
//! checkers need from a single CFG, then runs all checkers over them.
//!
//! The artifacts are held by value (not recomputed inside the checkers)
//! so fault injection can corrupt them *between* computation and
//! checking — exactly the seam where a real bug would sit.

use pst_cfg::{Cfg, Graph};
use pst_controldep::StrongControlDeps;
use pst_core::{collapse_all, CanonicalRegions, ControlRegions, ProgramStructureTree};
use pst_lang::{BlockInfo, LoweredFunction, StmtInfo, VarId};
use pst_ssa::{place_phis_pst_unchecked, PhiPlacement};

use crate::checkers::{
    check_control_regions, check_cycle_equiv, check_dod, check_ntscd, check_phi, check_pst,
    check_sese,
};
use crate::report::VerifyReport;

/// Default step budget for the slow cycle-equivalence oracle: ample for
/// fuzz-sized graphs, small enough that a pathological input degrades to
/// "inconclusive" instead of stalling the run.
pub const DEFAULT_ORACLE_BUDGET: u64 = 20_000_000;

/// Number of synthetic variables woven into [`synthetic_function`].
const SYNTHETIC_VARS: usize = 3;

/// Tuning for [`verify_artifacts`].
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// Step budget for the slow cycle-equivalence oracle (`None` =
    /// unlimited). Exhaustion marks the check inconclusive, not failed.
    pub oracle_budget: Option<u64>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            oracle_budget: Some(DEFAULT_ORACLE_BUDGET),
        }
    }
}

/// Everything the five checkers consume, computed once per input.
#[derive(Clone, Debug)]
pub struct PipelineArtifacts {
    /// The function the pipeline ran over; `function.cfg` is the CFG.
    pub function: LoweredFunction,
    /// Region detection output (cycle-equivalence classes + canonical
    /// regions) the PST was built from.
    pub detection: CanonicalRegions,
    /// The program structure tree.
    pub pst: ProgramStructureTree,
    /// The linear-time control-region partition.
    pub control_regions: ControlRegions,
    /// PST-driven φ-placement for the function's variables.
    pub phi: PhiPlacement,
    /// Strong control dependence: NTSCD, DOD, and the classic
    /// node-level relation over the same CFG.
    pub strong: StrongControlDeps,
}

impl PipelineArtifacts {
    /// The CFG all artifacts were computed over.
    pub fn cfg(&self) -> &Cfg {
        &self.function.cfg
    }
}

/// Wraps a bare CFG in a [`LoweredFunction`] with a deterministic def/use
/// pattern so φ-placement has something to place: variable `v` is defined
/// at every node with `index % SYNTHETIC_VARS == v` and used at every
/// other node. This exercises joins everywhere without depending on the
/// source language front end.
pub fn synthetic_function(cfg: &Cfg) -> LoweredFunction {
    let n = cfg.node_count();
    let mut blocks = Vec::with_capacity(n);
    for i in 0..n {
        let def = VarId::from_index(i % SYNTHETIC_VARS);
        let uses: Vec<VarId> = (0..SYNTHETIC_VARS)
            .filter(|&v| v != i % SYNTHETIC_VARS)
            .map(VarId::from_index)
            .collect();
        blocks.push(BlockInfo {
            stmts: vec![StmtInfo {
                def: Some(def),
                uses: uses.clone(),
                text: format!("v{} = mix(...)", i % SYNTHETIC_VARS),
                expr_key: None,
                pos: None,
            }],
            branch_uses: uses,
            branch_pos: None,
        });
    }
    LoweredFunction {
        name: "synthetic".to_string(),
        cfg: cfg.clone(),
        blocks,
        vars: (0..SYNTHETIC_VARS).map(|v| format!("v{v}")).collect(),
    }
}

/// Runs the full pipeline — region detection, PST, control regions,
/// φ-placement — over `function`, retaining every intermediate artifact.
pub fn compute_artifacts(function: LoweredFunction) -> PipelineArtifacts {
    let pst = ProgramStructureTree::build(&function.cfg);
    let detection = pst
        .detection()
        .cloned()
        .expect("build always records detection");
    let control_regions = ControlRegions::compute(&function.cfg);
    let collapsed = collapse_all(&function.cfg, &pst);
    let phi = place_phis_pst_unchecked(&function, &pst, &collapsed).placement;
    let strong = StrongControlDeps::of_cfg(&function.cfg);
    PipelineArtifacts {
        function,
        detection,
        pst,
        control_regions,
        phi,
        strong,
    }
}

/// [`compute_artifacts`] over a bare CFG, via [`synthetic_function`].
pub fn compute_artifacts_for_cfg(cfg: &Cfg) -> PipelineArtifacts {
    compute_artifacts(synthetic_function(cfg))
}

/// Runs all seven checkers over `artifacts` and aggregates the verdicts.
///
/// Never panics on corrupted artifacts; records obs counters
/// `verify_checks_run`, `verify_violations`, and
/// `verify_budget_exhausted` for the metrics report.
pub fn verify_artifacts(artifacts: &PipelineArtifacts, config: &VerifyConfig) -> VerifyReport {
    let _span = pst_obs::Span::enter("verify");
    let cfg = artifacts.cfg();
    let reports = vec![
        check_cycle_equiv(cfg, &artifacts.detection, config.oracle_budget),
        check_sese(cfg, &artifacts.detection),
        check_pst(cfg, &artifacts.pst),
        check_control_regions(cfg, &artifacts.control_regions),
        check_phi(&artifacts.function, &artifacts.phi),
        check_ntscd(cfg.graph(), &artifacts.strong, config.oracle_budget),
        check_dod(cfg.graph(), &artifacts.strong, config.oracle_budget),
    ];
    let report = VerifyReport { reports };
    pst_obs::counter!("verify_checks_run", report.reports.len() as u64);
    pst_obs::counter!("verify_violations", report.violation_count() as u64);
    pst_obs::counter!(
        "verify_budget_exhausted",
        report.exhausted_checkers().len() as u64
    );
    report
}

/// Strong-control-dependence verification for an **arbitrary digraph**
/// — no canonicalization, no exit node, non-terminating regions left
/// intact. This is the form `pst fuzz` runs on every raw input before
/// repairing it: NTSCD and DOD are defined on exactly these graphs,
/// and their most interesting behaviour (termination-sensitive deps,
/// order witnesses) lives on the inputs canonicalization would patch.
pub fn verify_strong_on_digraph(graph: &Graph, config: &VerifyConfig) -> VerifyReport {
    let _span = pst_obs::Span::enter("verify_strong");
    let strong = StrongControlDeps::of_graph(graph);
    let reports = vec![
        check_ntscd(graph, &strong, config.oracle_budget),
        check_dod(graph, &strong, config.oracle_budget),
    ];
    let report = VerifyReport { reports };
    pst_obs::counter!("verify_checks_run", report.reports.len() as u64);
    pst_obs::counter!("verify_violations", report.violation_count() as u64);
    pst_obs::counter!(
        "verify_budget_exhausted",
        report.exhausted_checkers().len() as u64
    );
    report
}
