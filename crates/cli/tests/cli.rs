//! End-to-end tests of the `pst` binary: every subcommand over a sample
//! program, plus error handling and exit codes.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SAMPLE: &str = "
fn sample(n) {
    s = 0;
    while (n > 0) {
        if (n % 2 == 0) { s = s + n; }
        n = n - 1;
    }
    return s;
}
";

fn run(args: &[&str], stdin: Option<&str>) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pst"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("binary runs");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("write stdin");
    }
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn sample_file() -> std::path::PathBuf {
    let path = std::env::temp_dir().join("pst_cli_sample.mini");
    std::fs::write(&path, SAMPLE).expect("write sample");
    path
}

#[test]
fn regions_prints_tree_and_stats() {
    let f = sample_file();
    let (out, _, code) = run(&["regions", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("fn sample"));
    assert!(out.contains("<procedure>"));
    assert!(out.contains("canonical regions"));
}

#[test]
fn kinds_reports_structure() {
    let f = sample_file();
    let (out, _, code) = run(&["kinds", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("loop"));
    assert!(out.contains("if-then-else"));
    assert!(out.contains("completely structured: true"));
}

#[test]
fn dot_emits_graphviz() {
    let f = sample_file();
    let (out, _, code) = run(&["dot", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("digraph"));
    assert!(out.contains("fillcolor"));
}

#[test]
fn control_regions_partitions_blocks() {
    let f = sample_file();
    let (out, _, code) = run(&["control-regions", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("control regions"));
    assert!(out.contains("class 0:"));
}

#[test]
fn ssa_places_phis() {
    let f = sample_file();
    let (out, _, code) = run(&["ssa", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("φ-functions"));
    assert!(out.contains("= φ("));
}

#[test]
fn dataflow_verifies_qpg_solutions() {
    let f = sample_file();
    let (out, _, code) = run(&["dataflow", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("(ok)"));
    assert!(!out.contains("MISMATCH"));
}

#[test]
fn reads_from_stdin() {
    let (out, _, code) = run(&["regions", "-"], Some(SAMPLE));
    assert_eq!(code, 0);
    assert!(out.contains("fn sample"));
}

#[test]
fn parse_errors_exit_1_with_position() {
    let (_, err, code) = run(&["regions", "-"], Some("fn broken( { }"));
    assert_eq!(code, 1);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn usage_errors_exit_2() {
    let (_, err, code) = run(&["frobnicate", "-"], Some(SAMPLE));
    assert_eq!(code, 2);
    assert!(err.contains("unknown command"), "{err}");

    let (_, err, code) = run(&[], None);
    assert_eq!(code, 2);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn missing_file_exits_2() {
    let (_, err, code) = run(&["regions", "/nonexistent/x.mini"], None);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn clusters_emits_nested_subgraphs() {
    let f = sample_file();
    let (out, _, code) = run(&["clusters", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("subgraph cluster_r1"));
    assert_eq!(out.matches('{').count(), out.matches('}').count());
}

#[test]
fn loops_and_intervals_commands() {
    let f = sample_file();
    let (out, _, code) = run(&["loops", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("natural loops"), "{out}");
    assert!(out.contains("header"), "{out}");

    let (out, _, code) = run(&["intervals", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("reducible"), "{out}");
}

#[test]
fn lint_clean_program_exits_0() {
    let f = sample_file();
    let (out, _, code) = run(&["lint", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("0 diagnostic(s)"), "{out}");
}

#[test]
fn lint_findings_exit_5_with_rule_ids() {
    let defective = "fn f(n) { x = 1; x = 2; return x; }";
    let (out, err, code) = run(&["lint", "-"], Some(defective));
    assert_eq!(code, 5);
    assert!(out.contains("[PST-D002]"), "{out}");
    assert!(err.contains("1 lint finding(s)"), "{err}");
}

#[test]
fn lint_json_is_parseable_and_stable() {
    let defective = "fn f(n) { return m; }";
    let (out, _, code) = run(&["lint", "-", "--json"], Some(defective));
    assert_eq!(code, 5);
    let parsed = pst_obs::json::Json::parse(out.trim()).expect("stdout is valid JSON");
    let reports = match parsed {
        pst_obs::json::Json::Arr(a) => a,
        other => panic!("expected a JSON array, got {other:?}"),
    };
    assert_eq!(reports.len(), 1);
    assert!(out.contains("\"rule\":\"PST-D001\""), "{out}");
    assert!(out.contains("\"severity\":\"error\""), "{out}");
}

#[test]
fn lint_allow_silences_and_deny_escalates() {
    let defective = "fn f(n) { x = 1; x = 2; return x; }";
    let (out, _, code) = run(&["lint", "-", "--allow", "dead-definition"], Some(defective));
    assert_eq!(code, 0, "{out}");

    let (out, _, code) = run(&["lint", "-", "--deny", "PST-D002"], Some(defective));
    assert_eq!(code, 5);
    assert!(out.contains("error: dead definition"), "{out}");

    let (_, err, code) = run(&["lint", "-", "--allow", "no-such-rule"], Some(defective));
    assert_eq!(code, 2);
    assert!(err.contains("unknown lint rule"), "{err}");
}

#[test]
fn lint_edges_mode_flags_graph_defects() {
    let (out, _, code) = run(&["lint", "-", "--edges"], Some("0->1\n0->1\n1->2\n"));
    assert_eq!(code, 5);
    assert!(out.contains("[PST-C001]"), "{out}");

    let (out, _, code) = run(&["lint", "-", "--edges"], Some("0->1\n1->2\n"));
    assert_eq!(code, 0, "{out}");
}

#[test]
fn lint_dot_export_highlights_findings() {
    let dot_path = std::env::temp_dir().join("pst_cli_lint.dot");
    let _ = std::fs::remove_file(&dot_path);
    let (_, _, code) = run(
        &["lint", "-", "--edges", "--dot", dot_path.to_str().unwrap()],
        Some("0->1\n0->1\n1->2\n"),
    );
    assert_eq!(code, 5);
    let dot = std::fs::read_to_string(&dot_path).expect("dot file written");
    assert!(dot.contains("digraph"), "{dot}");
    assert!(dot.contains("color=red"), "{dot}");
}

// --- pst bench ------------------------------------------------------------

/// Like [`run`], but with the working directory pinned (bench writes its
/// report relative to the cwd).
fn run_in(dir: &std::path::Path, args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_pst"))
        .args(args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pst_cli_bench_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// A fast bench invocation: tiny iteration count, quick matrix.
const QUICK: &[&str] = &["bench", "--quick", "--iters", "2", "--warmup", "0"];

#[test]
fn bench_quick_writes_schema_valid_report_and_trace() {
    let dir = bench_dir("report");
    let mut args = QUICK.to_vec();
    args.extend(["--label", "e2e", "--trace-out", "trace.json"]);
    let (out, err, code) = run_in(&dir, &args);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("report written to BENCH_e2e.json"), "{out}");

    let text = std::fs::read_to_string(dir.join("BENCH_e2e.json")).expect("report written");
    let report = pst_perf::BenchReport::parse(&text).expect("schema-valid report");
    assert_eq!(report.label, "e2e");
    assert!(report.config.quick && report.config.iters == 2);
    assert!(!report.workloads.is_empty());
    for w in &report.workloads {
        assert!(!w.phases.is_empty(), "workload {} has phases", w.name);
        for p in &w.phases {
            assert_eq!(p.time.samples, 2);
            assert!(p.time.ci_lo <= p.time.median && p.time.median <= p.time.ci_hi);
        }
        // The allocator is installed in the binary, so the pipeline must
        // have allocated, and phase attribution can't exceed the total.
        assert!(w.alloc_total.bytes_total > 0, "workload {}", w.name);
        let attributed: u64 = w.phases.iter().map(|p| p.alloc.bytes_total).sum();
        assert_eq!(
            attributed + w.alloc_unattributed_bytes,
            w.alloc_total.bytes_total,
            "workload {}",
            w.name
        );
    }
    // The CLI builds with observability on by default, so the embedded
    // obs report has spans and the trace export is non-trivial.
    let spans = report.obs.get("spans").expect("obs spans");
    assert!(matches!(spans, pst_obs::json::Json::Arr(s) if !s.is_empty()));

    let trace_text = std::fs::read_to_string(dir.join("trace.json")).expect("trace written");
    let trace = pst_obs::json::Json::parse(&trace_text).expect("trace parses");
    pst_perf::validate_chrome_trace(&trace).expect("trace schema");
}

#[test]
fn bench_compare_passes_on_identical_reports_and_gates_regressions() {
    let dir = bench_dir("compare");
    let mut args = QUICK.to_vec();
    args.extend(["--label", "base"]);
    let (_, err, code) = run_in(&dir, &args);
    assert_eq!(code, 0, "{err}");

    // Identical baseline and candidate: the gate must stay quiet.
    let (out, _, code) = run_in(
        &dir,
        &[
            "bench",
            "--compare",
            "BENCH_base.json",
            "--candidate",
            "BENCH_base.json",
        ],
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("regression gate: PASS"), "{out}");

    // Shrink every baseline number 100x: the candidate now regresses
    // everything, with disjoint CIs — exit code 6.
    let text = std::fs::read_to_string(dir.join("BENCH_base.json")).expect("report");
    let mut shrunk = pst_perf::BenchReport::parse(&text).expect("valid report");
    let shrink = |s: &mut pst_perf::Summary| {
        s.min = (s.min / 100).max(1);
        s.median = (s.median / 100).max(1);
        s.max = (s.max / 100).max(s.median);
        s.mad /= 100;
        s.ci_lo = (s.ci_lo / 100).max(1).min(s.median);
        s.ci_hi = (s.ci_hi / 100).max(s.median);
        s.mean /= 100.0;
        // Quantiles must stay internally consistent (p50 <= p90 <= p99
        // within [min, max]) or schema validation rejects the report.
        s.p50 = (s.p50 / 100).clamp(s.min, s.max);
        s.p90 = (s.p90 / 100).clamp(s.p50, s.max);
        s.p99 = (s.p99 / 100).clamp(s.p90, s.max);
    };
    for w in &mut shrunk.workloads {
        for p in &mut w.phases {
            shrink(&mut p.time);
            p.alloc.allocs /= 100;
            p.alloc.bytes_total /= 100;
        }
        shrink(&mut w.total_time);
        w.alloc_total.allocs /= 100;
        w.alloc_total.bytes_total /= 100;
    }
    std::fs::write(
        dir.join("BENCH_shrunk.json"),
        format!("{}\n", shrunk.to_json()),
    )
    .expect("write shrunk baseline");
    let (out, err, code) = run_in(
        &dir,
        &[
            "bench",
            "--compare",
            "BENCH_shrunk.json",
            "--candidate",
            "BENCH_base.json",
        ],
    );
    assert_eq!(code, 6, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("regression gate: FAIL"), "{out}");
    assert!(err.contains("performance regression finding(s)"), "{err}");
}

#[test]
fn bench_usage_errors_exit_2() {
    let dir = bench_dir("usage");
    // --candidate without --compare is meaningless.
    let (_, err, code) = run_in(&dir, &["bench", "--candidate", "x.json"]);
    assert_eq!(code, 2);
    assert!(err.contains("--candidate"), "{err}");
    // A malformed baseline is caught by schema validation (exit 1).
    std::fs::write(dir.join("bad.json"), "{\"schema_version\": 99}").expect("write");
    let (_, err, code) = run_in(
        &dir,
        &["bench", "--compare", "bad.json", "--candidate", "bad.json"],
    );
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("not a valid report"), "{err}");
}

// --- journal + pst obs ----------------------------------------------------

/// Like [`run_in`], but with extra environment variables set.
fn run_env(dir: &std::path::Path, args: &[&str], envs: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pst"));
    cmd.args(args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

const TWO_FNS: &str = "
fn alpha(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }
fn beta(n) { if (n > 0) { n = 1; } else { n = 2; } return n; }
";

fn parse_journal(path: &std::path::Path) -> Vec<pst_obs::journal::Record> {
    let text = std::fs::read_to_string(path).expect("journal written");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| pst_obs::journal::Record::parse_line(l).expect("journal line parses"))
        .collect()
}

#[test]
fn journal_records_run_lifecycle_and_unit_summaries() {
    let dir = bench_dir("journal");
    std::fs::write(dir.join("two.mini"), TWO_FNS).expect("write program");
    let (_, err, code) = run_env(
        &dir,
        &["regions", "two.mini", "--journal", "j.jsonl", "--metrics-json", "m.json"],
        &[("PST_TRACE_SEED", "7")],
    );
    assert_eq!(code, 0, "{err}");

    let records = parse_journal(&dir.join("j.jsonl"));
    // One trace, contiguous sequence numbers, bracketed by the lifecycle.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
        assert_eq!(r.trace, records[0].trace);
    }
    assert!(matches!(
        &records.first().expect("run_start").event,
        pst_obs::journal::Event::RunStart { command, .. } if command == "regions"
    ));
    assert!(matches!(
        &records.last().expect("run_end").event,
        pst_obs::journal::Event::RunEnd { command, exit_code: 0, .. } if command == "regions"
    ));

    // The journaled unit summaries mirror the metrics JSON's `units`
    // sub-reports exactly (same names, nanos, and counts).
    let metrics_text = std::fs::read_to_string(dir.join("m.json")).expect("metrics written");
    let metrics = pst_obs::json::Json::parse(&metrics_text).expect("metrics parse");
    let pst_obs::json::Json::Obj(units) = metrics.get("units").expect("units section") else {
        panic!("units is an object");
    };
    let mut journaled: Vec<(String, u64, u64)> = records
        .iter()
        .filter_map(|r| match &r.event {
            pst_obs::journal::Event::UnitSummary { unit, nanos, count } => {
                Some((unit.clone(), *nanos, *count))
            }
            _ => None,
        })
        .collect();
    journaled.sort();
    let mut expected: Vec<(String, u64, u64)> = units
        .iter()
        .map(|(name, u)| {
            (
                name.clone(),
                u.get("nanos").unwrap().as_u64().unwrap(),
                u.get("count").unwrap().as_u64().unwrap(),
            )
        })
        .collect();
    expected.sort();
    assert_eq!(journaled, expected);
    assert_eq!(journaled.len(), 2, "{journaled:?}");

    // PST_TRACE_SEED pins the trace id: a second seeded run appends
    // records with the same trace.
    let (_, _, code) = run_env(
        &dir,
        &["regions", "two.mini", "--journal", "j.jsonl"],
        &[("PST_TRACE_SEED", "7")],
    );
    assert_eq!(code, 0);
    let records = parse_journal(&dir.join("j.jsonl"));
    assert!(records.iter().all(|r| r.trace == records[0].trace));
}

#[test]
fn obs_merges_two_journals_and_agrees_with_metrics() {
    let dir = bench_dir("obs");
    std::fs::write(dir.join("two.mini"), TWO_FNS).expect("write program");
    for i in 1..=2 {
        let (_, err, code) = run_env(
            &dir,
            &[
                "regions",
                "two.mini",
                "--journal",
                &format!("j{i}.jsonl"),
                "--metrics-json",
                &format!("m{i}.json"),
            ],
            &[("PST_TRACE_SEED", if i == 1 { "11" } else { "22" })],
        );
        assert_eq!(code, 0, "{err}");
    }

    let (out, err, code) = run_in(&dir, &["obs", "j1.jsonl", "j2.jsonl", "--format", "json"]);
    assert_eq!(code, 0, "{err}");
    let fleet = pst_obs::json::Json::parse(out.trim()).expect("obs json parses");

    // Two distinct traces were merged.
    let pst_obs::json::Json::Arr(traces) = fleet.get("traces").expect("traces") else {
        panic!("traces is an array");
    };
    assert_eq!(traces.len(), 2);

    // The fleet's per-unit totals are the sum of each run's `units`
    // sub-reports from the metrics JSON — same names, summed nanos.
    let mut expected: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
    for i in 1..=2 {
        let text = std::fs::read_to_string(dir.join(format!("m{i}.json"))).expect("metrics");
        let metrics = pst_obs::json::Json::parse(&text).expect("metrics parse");
        let pst_obs::json::Json::Obj(units) = metrics.get("units").expect("units") else {
            panic!("units is an object");
        };
        for (name, u) in units {
            let slot = expected.entry(name.clone()).or_insert((0, 0));
            slot.0 += u.get("nanos").unwrap().as_u64().unwrap();
            slot.1 += u.get("count").unwrap().as_u64().unwrap();
        }
    }
    let pst_obs::json::Json::Arr(top) = fleet.get("top_units").expect("top_units") else {
        panic!("top_units is an array");
    };
    let ranked: Vec<(String, u64, u64)> = top
        .iter()
        .map(|u| {
            (
                match u.get("unit").unwrap() {
                    pst_obs::json::Json::Str(s) => s.clone(),
                    other => panic!("unit name: {other:?}"),
                },
                u.get("nanos").unwrap().as_u64().unwrap(),
                u.get("count").unwrap().as_u64().unwrap(),
            )
        })
        .collect();
    assert_eq!(ranked.len(), expected.len());
    for (name, nanos, count) in &ranked {
        assert_eq!(expected.get(name), Some(&(*nanos, *count)), "unit {name}");
    }
    // Slowest-first ordering.
    assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "{ranked:?}");
}

#[test]
fn bench_compare_gates_tail_only_regression_exit_6() {
    use pst_perf::{AllocStats, PhaseReport, Summary, WorkloadReport};

    // Identical medians within the threshold, disjoint CIs, and a 4.5x
    // p99 blowup: only the tail gate should fire.
    let summary = |median: u64, half: u64, p99: u64| Summary {
        samples: 30,
        min: median - 2 * half,
        max: p99.max(median + 2 * half),
        median,
        mad: half,
        ci_lo: median - half,
        ci_hi: median + half,
        mean: median as f64,
        p50: median,
        p90: median + half,
        p99,
    };
    let report = |label: &str, s: Summary| pst_perf::BenchReport {
        schema_version: pst_perf::BENCH_SCHEMA_VERSION,
        label: label.to_string(),
        config: pst_perf::BenchConfig {
            iters: 30,
            warmup: 5,
            bootstrap: pst_perf::BootstrapConfig::default(),
            quick: false,
        },
        workloads: vec![WorkloadReport {
            name: "w".to_string(),
            nodes: 64,
            edges: 96,
            phases: vec![PhaseReport {
                name: "pst".to_string(),
                time: s.clone(),
                alloc: AllocStats {
                    allocs: 100,
                    bytes_total: 8192,
                    peak_live_bytes: 8192,
                },
            }],
            total_time: s,
            alloc_total: AllocStats {
                allocs: 100,
                bytes_total: 8192,
                peak_live_bytes: 8192,
            },
            alloc_unattributed_bytes: 0,
        }],
        obs: pst_obs::json::Json::Obj(Vec::new()),
    };
    let baseline = report("base", summary(10_000, 200, 11_000));
    let candidate = report("cand", summary(10_600, 50, 50_000));

    let dir = bench_dir("tailgate");
    std::fs::write(dir.join("base.json"), format!("{}\n", baseline.to_json())).expect("write");
    std::fs::write(dir.join("cand.json"), format!("{}\n", candidate.to_json())).expect("write");
    let (out, err, code) = run_in(
        &dir,
        &[
            "bench",
            "--compare",
            "base.json",
            "--candidate",
            "cand.json",
            "--journal",
            "j.jsonl",
        ],
    );
    assert_eq!(code, 6, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("[p99]"), "{out}");
    assert!(!out.contains("[time]"), "{out}");

    // The verdict is journaled for fleet aggregation.
    let records = parse_journal(&dir.join("j.jsonl"));
    let verdict = records
        .iter()
        .find_map(|r| match &r.event {
            pst_obs::journal::Event::BenchVerdict {
                baseline,
                candidate,
                findings,
                passed,
            } => Some((baseline.clone(), candidate.clone(), *findings, *passed)),
            _ => None,
        })
        .expect("bench_verdict journaled");
    assert_eq!(
        verdict,
        ("base.json".to_string(), "cand.json".to_string(), 2, false)
    );
}

/// A contained fuzz crash must leave a `fuzz_crash` journal event whose
/// reproducer path points at the minimized edge list. Clean builds never
/// crash, so this runs only with `--features fault-inject`.
#[cfg(feature = "fault-inject")]
#[test]
fn fuzz_crash_lands_in_journal_with_reproducer() {
    let dir = bench_dir("fuzzjournal");
    let (out, err, code) = run_in(
        &dir,
        &[
            "fuzz",
            "--seed-range",
            "0..6",
            "--inject-fault",
            "merge-cycle-classes",
            "--out-dir",
            "repro",
            "--journal",
            "j.jsonl",
        ],
    );
    assert_eq!(code, 3, "stdout: {out}\nstderr: {err}");
    let records = parse_journal(&dir.join("j.jsonl"));
    let crashes: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            pst_obs::journal::Event::FuzzCrash {
                seed,
                kind,
                reproducer,
                ..
            } => Some((*seed, kind.clone(), reproducer.clone())),
            _ => None,
        })
        .collect();
    assert!(!crashes.is_empty(), "{records:?}");
    for (seed, kind, reproducer) in &crashes {
        assert_eq!(kind, "violation");
        let path = reproducer.as_deref().expect("reproducer path journaled");
        assert_eq!(path, &format!("repro/{seed}.edges"));
        assert!(dir.join(path).exists(), "reproducer file missing: {path}");
    }
    // Crash events carry the error level so `--level error` isolates them.
    assert!(records
        .iter()
        .filter(|r| matches!(r.event, pst_obs::journal::Event::FuzzCrash { .. }))
        .all(|r| r.level == pst_obs::journal::Level::Error));
}

// --- serve daemon ---------------------------------------------------------

/// Runs `pst serve` with the given extra args, feeds `input` on stdin,
/// and returns one parsed JSON reply per stdout line plus the exit code.
fn serve(extra: &[&str], input: &str) -> (Vec<pst_obs::json::Json>, i32) {
    let mut args = vec!["serve"];
    args.extend_from_slice(extra);
    let (out, err, code) = run(&args, Some(input));
    let replies = out
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            pst_obs::json::Json::parse(l)
                .unwrap_or_else(|e| panic!("reply is not JSON ({e}): {l}\nstderr: {err}"))
        })
        .collect();
    (replies, code)
}

fn reply_ok(reply: &pst_obs::json::Json) -> bool {
    reply.get("ok") == Some(&pst_obs::json::Json::Bool(true))
}

fn error_code(reply: &pst_obs::json::Json) -> String {
    match reply.get("error").and_then(|e| e.get("code")) {
        Some(pst_obs::json::Json::Str(s)) => s.clone(),
        other => panic!("no error code in {reply} ({other:?})"),
    }
}

fn source_request(id: u64, method: &str) -> String {
    pst_obs::json::Json::obj([
        ("id", pst_obs::json::Json::UInt(id)),
        ("method", pst_obs::json::Json::Str(method.into())),
        ("source", pst_obs::json::Json::Str(SAMPLE.into())),
    ])
    .to_string()
}

#[test]
fn serve_answers_every_method_over_ndjson() {
    let mut input = String::new();
    for (i, method) in ["pst", "control_regions", "lint", "ssa", "dataflow"]
        .iter()
        .enumerate()
    {
        input.push_str(&source_request(i as u64, method));
        input.push('\n');
    }
    input.push_str(r#"{"id":90,"method":"canonicalize","edges":"0->1 1->2 0->2"}"#);
    input.push_str("\n{\"id\":91,\"method\":\"stats\"}\n{\"id\":92,\"method\":\"shutdown\"}\n");
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 8);
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply_ok(reply), "reply {i} not ok: {reply}");
    }
    // Analysis replies name their unit; repeated sources share one hash.
    let unit = |r: &pst_obs::json::Json| match r.get("unit") {
        Some(pst_obs::json::Json::Str(s)) => s.clone(),
        other => panic!("no unit in reply: {other:?}"),
    };
    let first = unit(&replies[0]);
    assert_eq!(first.len(), 16, "unit ids are 16 hex digits: {first}");
    assert!(replies[1..5].iter().all(|r| unit(r) == first));
    assert_ne!(unit(&replies[5]), first, "edge units hash separately");
    // Stats reflect the traffic so far; shutdown acknowledges.
    let stats = replies[6].get("result").expect("stats result");
    assert_eq!(stats.get("requests").unwrap().as_u64(), Some(7));
    assert_eq!(
        replies[7].get("result").unwrap().get("stopping"),
        Some(&pst_obs::json::Json::Bool(true))
    );
}

#[test]
fn serve_repeat_queries_come_from_the_cache() {
    let dir = bench_dir("serve_cache");
    let input = format!(
        "{}\n{}\n{}\n",
        source_request(1, "pst"),
        source_request(2, "pst"),
        r#"{"id":3,"method":"shutdown"}"#
    );
    let metrics_path = dir.join("m.json");
    let (out, err, code) = run(
        &["serve", "--metrics-json", metrics_path.to_str().unwrap()],
        Some(&input),
    );
    assert_eq!(code, 0, "{err}");
    let replies: Vec<_> = out
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| pst_obs::json::Json::parse(l).expect("reply parses"))
        .collect();
    assert_eq!(replies.len(), 3);
    assert!(replies.iter().all(reply_ok));
    // The first query computes, the repeat is served from the memo.
    assert_eq!(
        replies[0].get("cached"),
        Some(&pst_obs::json::Json::Bool(false))
    );
    assert_eq!(
        replies[1].get("cached"),
        Some(&pst_obs::json::Json::Bool(true))
    );
    assert_eq!(replies[0].get("result"), replies[1].get("result"));

    // The cache-hit counters land in the metrics report.
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics written");
    let metrics = pst_obs::json::Json::parse(&metrics_text).expect("metrics parse");
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    assert_eq!(counter("serve_requests"), 3);
    assert_eq!(counter("serve_cache_miss"), 1);
    assert_eq!(counter("serve_cache_hit"), 1);
    assert_eq!(counter("serve_stage_hit"), 1);
}

#[test]
fn serve_survives_malformed_and_invalid_requests() {
    let input = format!(
        "this is not json\n\
         [1,2,3]\n\
         {{\"id\":1,\"method\":\"frobnicate\",\"source\":\"fn f() {{ return 0; }}\"}}\n\
         {{\"id\":2,\"method\":\"pst\",\"unit\":\"00000000deadbeef\"}}\n\
         {{\"id\":3,\"method\":\"pst\",\"source\":\"fn f( {{\"}}\n\
         {{\"id\":4,\"method\":\"ssa\",\"edges\":\"0->1\"}}\n\
         {}\n",
        source_request(5, "pst")
    );
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0, "daemon exits cleanly at EOF");
    assert_eq!(replies.len(), 7);
    assert_eq!(error_code(&replies[0]), "parse_error");
    assert_eq!(error_code(&replies[1]), "invalid_request");
    assert_eq!(error_code(&replies[2]), "unknown_method");
    assert_eq!(error_code(&replies[3]), "unknown_unit");
    assert_eq!(error_code(&replies[4]), "analysis_error");
    assert_eq!(error_code(&replies[5]), "unsupported");
    // After all that, the daemon still answers real work.
    assert!(reply_ok(&replies[6]), "{}", replies[6]);
}

#[test]
fn serve_rejects_oversized_requests_but_keeps_serving() {
    let huge = format!(
        "{{\"id\":1,\"method\":\"pst\",\"source\":\"{}\"}}",
        "x".repeat(512)
    );
    let input = format!("{huge}\n{{\"id\":2,\"method\":\"stats\"}}\n");
    let (replies, code) = serve(&["--max-request-bytes", "256"], &input);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 2);
    assert_eq!(error_code(&replies[0]), "oversized_request");
    assert!(reply_ok(&replies[1]), "{}", replies[1]);
}

#[test]
fn serve_registered_units_answer_by_id() {
    // Register via a source request, then re-query by the returned unit
    // id with a different method: no source re-send, still a unit hit.
    let (replies, code) = serve(
        &[],
        &format!("{}\n", source_request(1, "pst")),
    );
    assert_eq!(code, 0);
    let unit = match replies[0].get("unit") {
        Some(pst_obs::json::Json::Str(s)) => s.clone(),
        other => panic!("no unit: {other:?}"),
    };
    let input = format!(
        "{}\n{{\"id\":2,\"method\":\"lint\",\"unit\":\"{unit}\"}}\n",
        source_request(1, "pst")
    );
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0);
    assert!(replies.iter().all(reply_ok), "{replies:?}");
    assert_eq!(
        replies[1].get("unit"),
        Some(&pst_obs::json::Json::Str(unit))
    );
}

#[test]
fn serve_journals_one_unit_summary_per_request() {
    let dir = bench_dir("serve_journal");
    let input = format!(
        "{}\n{}\n",
        source_request(1, "pst"),
        source_request(2, "pst")
    );
    let journal = dir.join("j.jsonl");
    let (_, err, code) = run(
        &["serve", "--journal", journal.to_str().unwrap()],
        Some(&input),
    );
    assert_eq!(code, 0, "{err}");
    let records = parse_journal(&journal);
    let units: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            pst_obs::journal::Event::UnitSummary { unit, count, .. } => {
                Some((unit.clone(), *count))
            }
            _ => None,
        })
        .collect();
    // One summary per request — not a run-end mirror of the unit
    // registry, which would double-count the repeated unit.
    assert_eq!(units.len(), 2, "{units:?}");
    assert!(units.iter().all(|(u, c)| u.starts_with("serve:") && *c == 1));
    assert_eq!(units[0].0, units[1].0, "same unit+method, same scope name");
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_contains_injected_panics_and_keeps_serving() {
    let panic_req = pst_obs::json::Json::obj([
        ("id", pst_obs::json::Json::UInt(1)),
        ("method", pst_obs::json::Json::Str("pst".into())),
        ("source", pst_obs::json::Json::Str(SAMPLE.into())),
        ("inject", pst_obs::json::Json::Str("panic".into())),
    ])
    .to_string();
    let input = format!(
        "{panic_req}\n{}\n{{\"id\":3,\"method\":\"stats\"}}\n",
        source_request(2, "pst")
    );
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0, "daemon survives the panic");
    assert_eq!(replies.len(), 3);
    assert_eq!(error_code(&replies[0]), "panic");
    assert!(reply_ok(&replies[1]), "{}", replies[1]);
    // The panicking request's unit was quarantined, so the follow-up
    // recomputed it from scratch.
    assert_eq!(
        replies[1].get("cached"),
        Some(&pst_obs::json::Json::Bool(false))
    );
    let stats = replies[2].get("result").expect("stats");
    assert_eq!(stats.get("contained_panics").unwrap().as_u64(), Some(1));
}

#[cfg(not(feature = "fault-inject"))]
#[test]
fn serve_reports_fault_injection_unsupported_without_the_feature() {
    let req = pst_obs::json::Json::obj([
        ("id", pst_obs::json::Json::UInt(1)),
        ("method", pst_obs::json::Json::Str("pst".into())),
        ("source", pst_obs::json::Json::Str(SAMPLE.into())),
        ("inject", pst_obs::json::Json::Str("panic".into())),
    ])
    .to_string();
    let (replies, code) = serve(&[], &format!("{req}\n"));
    assert_eq!(code, 0);
    assert_eq!(error_code(&replies[0]), "unsupported");
}

#[test]
fn serve_usage_errors_exit_2() {
    for bad in [
        &["serve", "--cache-entries", "many"][..],
        &["serve", "--max-request-bytes", "0"][..],
        &["serve", "extra-arg"][..],
        &["serve", "--listen"][..],
    ] {
        let (_, err, code) = run(bad, Some(""));
        assert_eq!(code, 2, "{bad:?}: {err}");
    }
}

// --- serve: deadlines, drain, snapshots, and TCP fleet behavior -----------

#[test]
fn serve_stdio_drain_acknowledges_in_flight_then_exits() {
    let input = format!(
        "{}\n{{\"id\":2,\"method\":\"drain\"}}\n",
        source_request(1, "pst")
    );
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0, "drain is a clean exit");
    assert_eq!(replies.len(), 2);
    assert!(reply_ok(&replies[0]), "{}", replies[0]);
    assert_eq!(
        replies[1].get("result").and_then(|r| r.get("draining")),
        Some(&pst_obs::json::Json::Bool(true))
    );
}

#[test]
fn serve_snapshot_warm_restart_hits_cache_on_first_query() {
    let dir = bench_dir("serve_snapshot");
    let snap = dir.join("cache.snapshot");
    let snap = snap.to_str().unwrap();

    // First life: compute one unit, drain (which flushes a snapshot).
    let input = format!(
        "{}\n{{\"id\":2,\"method\":\"drain\"}}\n",
        source_request(1, "pst")
    );
    let (replies, code) = serve(&["--cache-snapshot", snap], &input);
    assert_eq!(code, 0);
    assert!(reply_ok(&replies[0]), "{}", replies[0]);
    assert!(std::path::Path::new(snap).exists(), "snapshot written");

    // Second life: the very first repeat query is already a memo hit,
    // and stats show where the warmth came from.
    let input = format!(
        "{}\n{{\"id\":2,\"method\":\"stats\"}}\n{{\"id\":3,\"method\":\"shutdown\"}}\n",
        source_request(1, "pst")
    );
    let (replies, code) = serve(&["--cache-snapshot", snap], &input);
    assert_eq!(code, 0);
    assert_eq!(
        replies[0].get("cached"),
        Some(&pst_obs::json::Json::Bool(true)),
        "warm restart answers the first query from the restored cache: {}",
        replies[0]
    );
    let stats = replies[1].get("result").expect("stats result");
    assert!(
        stats.get("snapshot_restored_units").unwrap().as_u64() >= Some(1),
        "{stats}"
    );
}

#[test]
fn serve_corrupt_snapshot_means_cold_start_not_death() {
    let dir = bench_dir("serve_snapshot_corrupt");
    let snap = dir.join("cache.snapshot");
    std::fs::write(&snap, "{\"pst_snapshot\":1,\"entries\":9}\ngarbage").unwrap();
    let input = format!(
        "{}\n{{\"id\":2,\"method\":\"shutdown\"}}\n",
        source_request(1, "pst")
    );
    let (replies, code) = serve(&["--cache-snapshot", snap.to_str().unwrap()], &input);
    assert_eq!(code, 0, "a bad snapshot is a cold start, not a crash");
    assert!(reply_ok(&replies[0]), "{}", replies[0]);
    assert_eq!(
        replies[0].get("cached"),
        Some(&pst_obs::json::Json::Bool(false))
    );
}

#[cfg(feature = "fault-inject")]
fn slow_request(id: u64) -> String {
    pst_obs::json::Json::obj([
        ("id", pst_obs::json::Json::UInt(id)),
        ("method", pst_obs::json::Json::Str("pst".into())),
        ("source", pst_obs::json::Json::Str(SAMPLE.into())),
        ("inject", pst_obs::json::Json::Str("slow".into())),
    ])
    .to_string()
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_deadline_exceeded_is_answered_in_band() {
    // The injected 50ms stall blows a 5ms budget; the next request is
    // unaffected because deadlines are per-request.
    let input = format!(
        "{}\n{}\n{{\"id\":3,\"method\":\"stats\"}}\n",
        slow_request(1),
        source_request(2, "pst")
    );
    let (replies, code) = serve(&["--request-timeout-ms", "5"], &input);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 3);
    assert_eq!(error_code(&replies[0]), "deadline_exceeded");
    assert!(reply_ok(&replies[1]), "{}", replies[1]);
    assert!(reply_ok(&replies[2]), "{}", replies[2]);
}

/// A `pst serve --listen` child process: spawns on port 0, parses the
/// announced address, and kills the daemon on drop so a failed test
/// never leaks a process.
struct ServeDaemon {
    child: std::process::Child,
}

impl ServeDaemon {
    fn spawn(extra: &[&str]) -> (ServeDaemon, String) {
        use std::io::BufRead as _;
        let mut args = vec!["serve", "--listen", "127.0.0.1:0"];
        args.extend_from_slice(extra);
        let mut child = Command::new(env!("CARGO_BIN_EXE_pst"))
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let mut line = String::new();
        std::io::BufReader::new(child.stdout.as_mut().expect("stdout piped"))
            .read_line(&mut line)
            .expect("announce line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .unwrap_or_else(|| panic!("no address in announce line {line:?}"))
            .to_string();
        (ServeDaemon { child }, addr)
    }

    /// Like [`ServeDaemon::spawn`], but with a metrics responder on a
    /// free port; returns the scrape address announced on the second
    /// stdout line.
    fn spawn_with_metrics(extra: &[&str]) -> (ServeDaemon, String, String) {
        use std::io::BufRead as _;
        let mut args = vec![
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
        ];
        args.extend_from_slice(extra);
        let mut child = Command::new(env!("CARGO_BIN_EXE_pst"))
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let mut reader = std::io::BufReader::new(child.stdout.as_mut().expect("stdout piped"));
        let mut read_addr = || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("announce line");
            line.trim()
                .rsplit(' ')
                .next()
                .unwrap_or_else(|| panic!("no address in announce line {line:?}"))
                .to_string()
        };
        let addr = read_addr();
        let metrics_addr = read_addr();
        (ServeDaemon { child }, addr, metrics_addr)
    }

    /// Waits up to ~10s for a clean exit (after shutdown/drain).
    fn wait_exit(&mut self) -> i32 {
        for _ in 0..200 {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code().unwrap_or(-1);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("daemon did not exit after drain/shutdown");
    }

    fn alive(&mut self) -> bool {
        self.child.try_wait().expect("try_wait").is_none()
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One NDJSON client connection to a TCP daemon.
struct Conn {
    stream: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("read timeout");
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        Conn { stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
        self.stream.flush().expect("flush");
    }

    fn recv(&mut self) -> pst_obs::json::Json {
        use std::io::BufRead as _;
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        pst_obs::json::Json::parse(line.trim())
            .unwrap_or_else(|e| panic!("reply is not JSON ({e}): {line:?}"))
    }

    fn request(&mut self, line: &str) -> pst_obs::json::Json {
        self.send(line);
        self.recv()
    }
}

#[test]
fn serve_tcp_survives_abrupt_disconnects() {
    let (mut daemon, addr) = ServeDaemon::spawn(&["--workers", "2"]);
    // Three clients connect, one does half a request, all vanish.
    for i in 0..3u64 {
        let mut conn = Conn::open(&addr);
        if i == 0 {
            write!(conn.stream, "{{\"id\":1,\"meth").expect("partial write");
        }
        drop(conn);
    }
    // The daemon still answers a well-behaved client afterwards.
    let mut conn = Conn::open(&addr);
    let reply = conn.request(&source_request(1, "pst"));
    assert!(reply_ok(&reply), "{reply}");
    assert!(daemon.alive(), "abrupt disconnects never kill the daemon");
    conn.send(r#"{"id":2,"method":"shutdown"}"#);
    assert_eq!(daemon.wait_exit(), 0);
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_tcp_overload_shed_carries_retry_hint_and_retry_succeeds() {
    let (mut daemon, addr) =
        ServeDaemon::spawn(&["--workers", "2", "--max-inflight", "1"]);

    // Client A pipelines slow requests, holding the single admission
    // slot for ~50ms apiece; client B keeps knocking until it is shed.
    let mut a = Conn::open(&addr);
    for i in 0..4u64 {
        a.send(&slow_request(10 + i));
    }
    let mut b = Conn::open(&addr);
    let mut shed = None;
    for _ in 0..20 {
        let reply = b.request(&source_request(2, "control_regions"));
        if reply.get("ok") == Some(&pst_obs::json::Json::Bool(false)) {
            shed = Some(reply);
            break;
        }
    }
    let shed = shed.expect("the saturated gate sheds at least one request");
    assert_eq!(error_code(&shed), "overloaded");
    let retry_after = shed
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(|v| v.as_u64())
        .expect("shed envelope carries a backoff hint");
    assert!(retry_after >= 10, "{shed}");

    // Backing off and retrying succeeds once the slot clears.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let reply = b.request(&source_request(3, "control_regions"));
    assert!(reply_ok(&reply), "retry after backoff: {reply}");
    for _ in 0..4 {
        assert!(reply_ok(&a.recv()), "slow requests still complete");
    }
    assert!(daemon.alive());
    b.send(r#"{"id":4,"method":"shutdown"}"#);
    assert_eq!(daemon.wait_exit(), 0);
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_tcp_drain_finishes_in_flight_requests_then_exits() {
    let (mut daemon, addr) = ServeDaemon::spawn(&["--workers", "2"]);
    let mut a = Conn::open(&addr);
    let mut b = Conn::open(&addr);
    // A's request stalls ~50ms in the daemon; B drains mid-flight.
    a.send(&slow_request(1));
    std::thread::sleep(std::time::Duration::from_millis(10));
    let bye = b.request(r#"{"id":2,"method":"drain"}"#);
    assert_eq!(
        bye.get("result").and_then(|r| r.get("draining")),
        Some(&pst_obs::json::Json::Bool(true)),
        "{bye}"
    );
    // Drain finishes in-flight work: A's reply still arrives.
    let reply = a.recv();
    assert!(reply_ok(&reply), "in-flight request completes: {reply}");
    assert_eq!(daemon.wait_exit(), 0);
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_tcp_chaos_panics_are_envelopes_and_the_daemon_outlives_them() {
    let (mut daemon, addr) =
        ServeDaemon::spawn(&["--workers", "2", "--inject-fault", "panic"]);
    let mut conn = Conn::open(&addr);
    let (mut oks, mut panics) = (0, 0);
    for i in 0..12u64 {
        let reply = conn.request(&source_request(i, "pst"));
        if reply_ok(&reply) {
            oks += 1;
        } else {
            assert_eq!(error_code(&reply), "panic");
            panics += 1;
        }
    }
    assert!(oks > 0 && panics > 0, "chaos mixes clean and faulty replies");
    let stats = conn.request(r#"{"id":90,"method":"stats"}"#);
    assert!(reply_ok(&stats), "{stats}");
    let result = stats.get("result").expect("stats result");
    assert_eq!(
        result.get("contained_panics").unwrap().as_u64(),
        Some(panics)
    );
    assert!(daemon.alive(), "the chaos daemon never dies");
    conn.send(r#"{"id":91,"method":"shutdown"}"#);
    assert_eq!(daemon.wait_exit(), 0);
}

// --- live telemetry: metrics, slowlog, pst top ----------------------------

#[test]
fn serve_metrics_rpc_reports_windowed_series_in_json_and_text() {
    use pst_obs::json::Json;
    let input = format!(
        "{}\n{}\n{}\n{{\"id\":4,\"method\":\"metrics\"}}\n\
         {{\"id\":5,\"method\":\"metrics\",\"format\":\"text\"}}\n\
         {{\"id\":6,\"method\":\"slowlog\"}}\n",
        source_request(1, "pst"),
        source_request(2, "pst"),
        source_request(3, "lint"),
    );
    let (replies, code) = serve(&[], &input);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 6);
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply_ok(reply), "reply {i} not ok: {reply}");
    }

    // JSON view: per-method totals plus the merged window, and the
    // repeated `pst` request shows up as a windowed cache hit.
    let metrics = replies[3].get("result").expect("metrics result");
    let pst = metrics
        .get("methods")
        .and_then(|m| m.get("pst"))
        .expect("pst series");
    assert_eq!(pst.get("requests_total").unwrap().as_u64(), Some(2));
    assert_eq!(pst.get("cache_hits_total").unwrap().as_u64(), Some(1));
    let window = pst.get("window").expect("window");
    assert_eq!(window.get("requests").unwrap().as_u64(), Some(2));
    assert!(window.get("p99_nanos").unwrap().as_u64().unwrap() > 0);
    let lint = metrics
        .get("methods")
        .and_then(|m| m.get("lint"))
        .expect("lint series");
    assert_eq!(lint.get("requests_total").unwrap().as_u64(), Some(1));

    // Text view: the same series as a Prometheus-style exposition.
    let text = replies[4].get("result").expect("text result");
    assert_eq!(text.get("format"), Some(&Json::Str("text".into())));
    let body = match text.get("body") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("no text body: {other:?}"),
    };
    assert!(body.contains("# TYPE pst_serve_requests_total counter"), "{body}");
    assert!(body.contains("pst_serve_requests_total{method=\"pst\"} 2"), "{body}");
    assert!(body.contains("# TYPE pst_serve_latency_nanos summary"), "{body}");
    assert!(body.contains("quantile=\"0.99\""), "{body}");
    assert!(body.contains("pst_serve_shard_requests_total{shard=\"0\"}"), "{body}");

    // The slowlog ring captures the slowest requests even without a
    // `--slowlog-ms` threshold (the threshold only gates journaling).
    let slowlog = replies[5].get("result").expect("slowlog result");
    let entries = match slowlog.get("entries") {
        Some(Json::Arr(v)) => v,
        other => panic!("no slowlog entries: {other:?}"),
    };
    assert!(!entries.is_empty(), "{slowlog}");
    assert!(entries[0].get("phases").is_some(), "{slowlog}");
}

/// Scrapes the one-shot HTTP metrics responder once, returning the raw
/// HTTP response (status line, headers, body).
fn scrape(addr: &str) -> String {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("scrape response");
    response
}

#[test]
fn serve_tcp_metrics_listener_answers_scrapes_and_pst_top_snapshots() {
    let (mut daemon, addr, metrics_addr) = ServeDaemon::spawn_with_metrics(&[]);
    let mut conn = Conn::open(&addr);
    for id in 1..=4u64 {
        let reply = conn.request(&source_request(id, "pst"));
        assert!(reply_ok(&reply), "{reply}");
    }

    // First scrape: proper HTTP framing and typed families.
    let first = scrape(&metrics_addr);
    assert!(first.starts_with("HTTP/1.0 200 OK"), "{first}");
    assert!(first.contains("Content-Type: text/plain; version=0.0.4"), "{first}");
    let body = first.split("\r\n\r\n").nth(1).expect("scrape body");
    assert!(body.contains("# TYPE pst_serve_requests_total counter"), "{body}");
    assert!(body.contains("pst_serve_requests_total{method=\"pst\"} 4"), "{body}");
    assert!(body.contains("# TYPE pst_serve_in_flight gauge"), "{body}");

    // Counters are monotone across scrapes: more traffic, bigger totals.
    let reply = conn.request(&source_request(5, "pst"));
    assert!(reply_ok(&reply), "{reply}");
    let second = scrape(&metrics_addr);
    assert!(
        second.contains("pst_serve_requests_total{method=\"pst\"} 5"),
        "{second}"
    );

    // `pst top --once --format json` pairs the metrics and stats views.
    let (out, err, code) = run(&["top", "--addr", &addr, "--once", "--format", "json"], None);
    assert_eq!(code, 0, "pst top failed: {err}");
    let snapshot = pst_obs::json::Json::parse(out.trim()).expect("top JSON");
    let total = snapshot
        .get("metrics")
        .and_then(|m| m.get("methods"))
        .and_then(|m| m.get("pst"))
        .and_then(|p| p.get("requests_total"))
        .and_then(|v| v.as_u64());
    assert_eq!(total, Some(5), "{snapshot}");
    assert!(snapshot.get("stats").and_then(|s| s.get("workers")).is_some(), "{snapshot}");

    // The human table renders a header and the active method row.
    let (out, err, code) = run(&["top", "--addr", &addr, "--once"], None);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("METHOD"), "{out}");
    assert!(out.contains("pst  "), "{out}");

    conn.send(r#"{"id":90,"method":"shutdown"}"#);
    assert_eq!(daemon.wait_exit(), 0);
}

#[cfg(feature = "fault-inject")]
#[test]
fn serve_slowlog_attributes_injected_stalls_and_journals_slow_requests() {
    use pst_obs::json::Json;
    let dir = bench_dir("serve_slowlog");
    let journal = dir.join("journal.jsonl");
    let journal_arg = journal.to_string_lossy().into_owned();
    let input = format!(
        "{}\n{}\n{{\"id\":3,\"method\":\"slowlog\"}}\n",
        slow_request(1),
        source_request(2, "pst"),
    );
    let (replies, code) = serve(&["--slowlog-ms", "10", "--journal", &journal_arg], &input);
    assert_eq!(code, 0);
    assert_eq!(replies.len(), 3);
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply_ok(reply), "reply {i} not ok: {reply}");
    }

    // Slowest first: the injected 50ms stall leads, and the stall is
    // attributed to the inject phase rather than compute.
    let result = replies[2].get("result").expect("slowlog result");
    let entries = match result.get("entries") {
        Some(Json::Arr(v)) => v,
        other => panic!("no slowlog entries: {other:?}"),
    };
    assert_eq!(entries.len(), 2, "{result}");
    let top = &entries[0];
    assert_eq!(top.get("method"), Some(&Json::Str("pst".into())));
    let phases = top.get("phases").expect("phases");
    let inject = phases.get("inject_nanos").unwrap().as_u64().unwrap();
    assert!(inject >= 40_000_000, "stall not attributed to inject: {phases}");
    assert!(
        top.get("total_nanos").unwrap().as_u64().unwrap() >= inject,
        "{top}"
    );

    // Only the stalled request crossed the 10ms threshold, so exactly
    // one slow_request event lands in the journal.
    let slow: Vec<_> = parse_journal(&journal)
        .into_iter()
        .filter(|r| matches!(r.event, pst_obs::journal::Event::SlowRequest { .. }))
        .collect();
    assert_eq!(slow.len(), 1, "{slow:?}");
    assert_eq!(slow[0].level, pst_obs::journal::Level::Warn);
    match &slow[0].event {
        pst_obs::journal::Event::SlowRequest { method, total_nanos, .. } => {
            assert_eq!(method, "pst");
            assert!(*total_nanos >= 10_000_000);
        }
        other => panic!("not a slow_request: {other:?}"),
    }
}

// --- stdin edge cases -----------------------------------------------------

/// Like [`run`], but feeds raw bytes (possibly invalid UTF-8) on stdin.
fn run_bytes(args: &[&str], stdin: &[u8]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pst"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin)
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn empty_stdin_is_a_usage_error() {
    let (_, err, code) = run(&["regions", "-"], Some(""));
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("stdin is empty"), "{err}");
}

#[test]
fn non_utf8_stdin_reports_the_offending_offset() {
    let mut bytes = b"fn f(n) { return ".to_vec();
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    bytes.extend_from_slice(b"; }\n");
    let (_, err, code) = run_bytes(&["regions", "-"], &bytes);
    assert_eq!(code, 2, "{err}");
    assert!(
        err.contains("not valid UTF-8 (first invalid byte at offset 17)"),
        "{err}"
    );
}

#[test]
fn unterminated_final_line_on_stdin_still_parses() {
    let (out, err, code) = run(
        &["regions", "-"],
        Some("fn f(n) { return n; }"), // no trailing newline
    );
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("fn f"), "{out}");
}

#[test]
fn non_utf8_file_reports_the_offending_offset() {
    let path = std::env::temp_dir().join("pst_cli_bad_utf8.mini");
    std::fs::write(&path, [0x66, 0x6E, 0xC0, 0x0A]).expect("write file");
    let (_, err, code) = run(&["regions", path.to_str().unwrap()], None);
    assert_eq!(code, 2, "{err}");
    assert!(
        err.contains("not valid UTF-8 (first invalid byte at offset 2)"),
        "{err}"
    );
}
