//! End-to-end tests of the `pst` binary: every subcommand over a sample
//! program, plus error handling and exit codes.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SAMPLE: &str = "
fn sample(n) {
    s = 0;
    while (n > 0) {
        if (n % 2 == 0) { s = s + n; }
        n = n - 1;
    }
    return s;
}
";

fn run(args: &[&str], stdin: Option<&str>) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pst"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("binary runs");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("write stdin");
    }
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn sample_file() -> std::path::PathBuf {
    let path = std::env::temp_dir().join("pst_cli_sample.mini");
    std::fs::write(&path, SAMPLE).expect("write sample");
    path
}

#[test]
fn regions_prints_tree_and_stats() {
    let f = sample_file();
    let (out, _, code) = run(&["regions", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("fn sample"));
    assert!(out.contains("<procedure>"));
    assert!(out.contains("canonical regions"));
}

#[test]
fn kinds_reports_structure() {
    let f = sample_file();
    let (out, _, code) = run(&["kinds", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("loop"));
    assert!(out.contains("if-then-else"));
    assert!(out.contains("completely structured: true"));
}

#[test]
fn dot_emits_graphviz() {
    let f = sample_file();
    let (out, _, code) = run(&["dot", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("digraph"));
    assert!(out.contains("fillcolor"));
}

#[test]
fn control_regions_partitions_blocks() {
    let f = sample_file();
    let (out, _, code) = run(&["control-regions", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("control regions"));
    assert!(out.contains("class 0:"));
}

#[test]
fn ssa_places_phis() {
    let f = sample_file();
    let (out, _, code) = run(&["ssa", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("φ-functions"));
    assert!(out.contains("= φ("));
}

#[test]
fn dataflow_verifies_qpg_solutions() {
    let f = sample_file();
    let (out, _, code) = run(&["dataflow", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("(ok)"));
    assert!(!out.contains("MISMATCH"));
}

#[test]
fn reads_from_stdin() {
    let (out, _, code) = run(&["regions", "-"], Some(SAMPLE));
    assert_eq!(code, 0);
    assert!(out.contains("fn sample"));
}

#[test]
fn parse_errors_exit_1_with_position() {
    let (_, err, code) = run(&["regions", "-"], Some("fn broken( { }"));
    assert_eq!(code, 1);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn usage_errors_exit_2() {
    let (_, err, code) = run(&["frobnicate", "-"], Some(SAMPLE));
    assert_eq!(code, 2);
    assert!(err.contains("unknown command"), "{err}");

    let (_, err, code) = run(&[], None);
    assert_eq!(code, 2);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn missing_file_exits_2() {
    let (_, err, code) = run(&["regions", "/nonexistent/x.mini"], None);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn clusters_emits_nested_subgraphs() {
    let f = sample_file();
    let (out, _, code) = run(&["clusters", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("subgraph cluster_r1"));
    assert_eq!(out.matches('{').count(), out.matches('}').count());
}

#[test]
fn loops_and_intervals_commands() {
    let f = sample_file();
    let (out, _, code) = run(&["loops", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("natural loops"), "{out}");
    assert!(out.contains("header"), "{out}");

    let (out, _, code) = run(&["intervals", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("reducible"), "{out}");
}

#[test]
fn lint_clean_program_exits_0() {
    let f = sample_file();
    let (out, _, code) = run(&["lint", f.to_str().unwrap()], None);
    assert_eq!(code, 0);
    assert!(out.contains("0 diagnostic(s)"), "{out}");
}

#[test]
fn lint_findings_exit_5_with_rule_ids() {
    let defective = "fn f(n) { x = 1; x = 2; return x; }";
    let (out, err, code) = run(&["lint", "-"], Some(defective));
    assert_eq!(code, 5);
    assert!(out.contains("[PST-D002]"), "{out}");
    assert!(err.contains("1 lint finding(s)"), "{err}");
}

#[test]
fn lint_json_is_parseable_and_stable() {
    let defective = "fn f(n) { return m; }";
    let (out, _, code) = run(&["lint", "-", "--json"], Some(defective));
    assert_eq!(code, 5);
    let parsed = pst_obs::json::Json::parse(out.trim()).expect("stdout is valid JSON");
    let reports = match parsed {
        pst_obs::json::Json::Arr(a) => a,
        other => panic!("expected a JSON array, got {other:?}"),
    };
    assert_eq!(reports.len(), 1);
    assert!(out.contains("\"rule\":\"PST-D001\""), "{out}");
    assert!(out.contains("\"severity\":\"error\""), "{out}");
}

#[test]
fn lint_allow_silences_and_deny_escalates() {
    let defective = "fn f(n) { x = 1; x = 2; return x; }";
    let (out, _, code) = run(&["lint", "-", "--allow", "dead-definition"], Some(defective));
    assert_eq!(code, 0, "{out}");

    let (out, _, code) = run(&["lint", "-", "--deny", "PST-D002"], Some(defective));
    assert_eq!(code, 5);
    assert!(out.contains("error: dead definition"), "{out}");

    let (_, err, code) = run(&["lint", "-", "--allow", "no-such-rule"], Some(defective));
    assert_eq!(code, 2);
    assert!(err.contains("unknown lint rule"), "{err}");
}

#[test]
fn lint_edges_mode_flags_graph_defects() {
    let (out, _, code) = run(&["lint", "-", "--edges"], Some("0->1\n0->1\n1->2\n"));
    assert_eq!(code, 5);
    assert!(out.contains("[PST-C001]"), "{out}");

    let (out, _, code) = run(&["lint", "-", "--edges"], Some("0->1\n1->2\n"));
    assert_eq!(code, 0, "{out}");
}

#[test]
fn lint_dot_export_highlights_findings() {
    let dot_path = std::env::temp_dir().join("pst_cli_lint.dot");
    let _ = std::fs::remove_file(&dot_path);
    let (_, _, code) = run(
        &["lint", "-", "--edges", "--dot", dot_path.to_str().unwrap()],
        Some("0->1\n0->1\n1->2\n"),
    );
    assert_eq!(code, 5);
    let dot = std::fs::read_to_string(&dot_path).expect("dot file written");
    assert!(dot.contains("digraph"), "{dot}");
    assert!(dot.contains("color=red"), "{dot}");
}

// --- pst bench ------------------------------------------------------------

/// Like [`run`], but with the working directory pinned (bench writes its
/// report relative to the cwd).
fn run_in(dir: &std::path::Path, args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_pst"))
        .args(args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pst_cli_bench_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// A fast bench invocation: tiny iteration count, quick matrix.
const QUICK: &[&str] = &["bench", "--quick", "--iters", "2", "--warmup", "0"];

#[test]
fn bench_quick_writes_schema_valid_report_and_trace() {
    let dir = bench_dir("report");
    let mut args = QUICK.to_vec();
    args.extend(["--label", "e2e", "--trace-out", "trace.json"]);
    let (out, err, code) = run_in(&dir, &args);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("report written to BENCH_e2e.json"), "{out}");

    let text = std::fs::read_to_string(dir.join("BENCH_e2e.json")).expect("report written");
    let report = pst_perf::BenchReport::parse(&text).expect("schema-valid report");
    assert_eq!(report.label, "e2e");
    assert!(report.config.quick && report.config.iters == 2);
    assert!(!report.workloads.is_empty());
    for w in &report.workloads {
        assert!(!w.phases.is_empty(), "workload {} has phases", w.name);
        for p in &w.phases {
            assert_eq!(p.time.samples, 2);
            assert!(p.time.ci_lo <= p.time.median && p.time.median <= p.time.ci_hi);
        }
        // The allocator is installed in the binary, so the pipeline must
        // have allocated, and phase attribution can't exceed the total.
        assert!(w.alloc_total.bytes_total > 0, "workload {}", w.name);
        let attributed: u64 = w.phases.iter().map(|p| p.alloc.bytes_total).sum();
        assert_eq!(
            attributed + w.alloc_unattributed_bytes,
            w.alloc_total.bytes_total,
            "workload {}",
            w.name
        );
    }
    // The CLI builds with observability on by default, so the embedded
    // obs report has spans and the trace export is non-trivial.
    let spans = report.obs.get("spans").expect("obs spans");
    assert!(matches!(spans, pst_obs::json::Json::Arr(s) if !s.is_empty()));

    let trace_text = std::fs::read_to_string(dir.join("trace.json")).expect("trace written");
    let trace = pst_obs::json::Json::parse(&trace_text).expect("trace parses");
    pst_perf::validate_chrome_trace(&trace).expect("trace schema");
}

#[test]
fn bench_compare_passes_on_identical_reports_and_gates_regressions() {
    let dir = bench_dir("compare");
    let mut args = QUICK.to_vec();
    args.extend(["--label", "base"]);
    let (_, err, code) = run_in(&dir, &args);
    assert_eq!(code, 0, "{err}");

    // Identical baseline and candidate: the gate must stay quiet.
    let (out, _, code) = run_in(
        &dir,
        &[
            "bench",
            "--compare",
            "BENCH_base.json",
            "--candidate",
            "BENCH_base.json",
        ],
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("regression gate: PASS"), "{out}");

    // Shrink every baseline number 100x: the candidate now regresses
    // everything, with disjoint CIs — exit code 6.
    let text = std::fs::read_to_string(dir.join("BENCH_base.json")).expect("report");
    let mut shrunk = pst_perf::BenchReport::parse(&text).expect("valid report");
    let shrink = |s: &mut pst_perf::Summary| {
        s.min = (s.min / 100).max(1);
        s.median = (s.median / 100).max(1);
        s.max = (s.max / 100).max(s.median);
        s.mad /= 100;
        s.ci_lo = (s.ci_lo / 100).max(1).min(s.median);
        s.ci_hi = (s.ci_hi / 100).max(s.median);
        s.mean /= 100.0;
    };
    for w in &mut shrunk.workloads {
        for p in &mut w.phases {
            shrink(&mut p.time);
            p.alloc.allocs /= 100;
            p.alloc.bytes_total /= 100;
        }
        shrink(&mut w.total_time);
        w.alloc_total.allocs /= 100;
        w.alloc_total.bytes_total /= 100;
    }
    std::fs::write(
        dir.join("BENCH_shrunk.json"),
        format!("{}\n", shrunk.to_json()),
    )
    .expect("write shrunk baseline");
    let (out, err, code) = run_in(
        &dir,
        &[
            "bench",
            "--compare",
            "BENCH_shrunk.json",
            "--candidate",
            "BENCH_base.json",
        ],
    );
    assert_eq!(code, 6, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("regression gate: FAIL"), "{out}");
    assert!(err.contains("performance regression finding(s)"), "{err}");
}

#[test]
fn bench_usage_errors_exit_2() {
    let dir = bench_dir("usage");
    // --candidate without --compare is meaningless.
    let (_, err, code) = run_in(&dir, &["bench", "--candidate", "x.json"]);
    assert_eq!(code, 2);
    assert!(err.contains("--candidate"), "{err}");
    // A malformed baseline is caught by schema validation (exit 1).
    std::fs::write(dir.join("bad.json"), "{\"schema_version\": 99}").expect("write");
    let (_, err, code) = run_in(
        &dir,
        &["bench", "--compare", "bad.json", "--candidate", "bad.json"],
    );
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("not a valid report"), "{err}");
}
