//! `pst serve` — the long-lived analysis daemon (see `docs/SERVING.md`).
//!
//! Speaks newline-delimited JSON-RPC over stdin/stdout by default, or
//! over TCP with `--listen addr:port` (std::net only; port 0 picks a
//! free port and the bound address is announced on stdout). Session
//! state lives in `pst-serve`: a content-hash LRU cache that interns
//! parsed units and per-stage pipeline artifacts, budgeted by
//! `--cache-entries` / `--cache-bytes` (0 = unlimited). Lines longer
//! than `--max-request-bytes` are answered with an `oversized_request`
//! envelope instead of being buffered.
//!
//! Fleet knobs (`docs/SERVING.md` § Operations): `--workers` sizes the
//! TCP worker pool and session shard count, `--request-timeout-ms` arms
//! the cooperative per-request deadline, `--max-inflight` bounds the
//! admission gate (excess is shed with an `overloaded` envelope),
//! `--cache-snapshot`/`--snapshot-every` persist the cache across
//! restarts, and `--inject-fault` (fault-inject builds only) turns the
//! daemon into its own chaos monkey.
//!
//! Live telemetry (`docs/SERVING.md` § Live telemetry):
//! `--metrics-window-ms` sets the windowed-series tick width (0
//! disables the `metrics`/`slowlog` methods entirely), `--slowlog-ms`
//! arms `slow_request` journal events past the threshold, and
//! `--metrics-listen addr:port` opens a one-shot HTTP responder with
//! the Prometheus-style text exposition (scrape with `curl`, watch
//! with `pst top`).
//!
//! The daemon composes with the global observability flags: `--trace` /
//! `--metrics-json` report the `serve_*` counters and latency
//! histograms at exit, and `--journal` records one `unit_summary` event
//! per request as it happens (which is why `finish_journal` skips the
//! exit-time unit mirror for this command).

use pst_serve::{ServeConfig, ServeFault};

use crate::{take_value_flag, Failure};

/// Parsed `pst serve` options.
pub struct ServeOptions {
    /// TCP listen address (`addr:port`); stdin/stdout when absent.
    pub listen: Option<String>,
    /// Cache budgets, request size cap, and fleet knobs.
    pub config: ServeConfig,
}

impl ServeOptions {
    /// Parses serve-specific flags out of the remaining CLI arguments.
    pub fn from_args(args: &mut Vec<String>) -> Result<ServeOptions, String> {
        let listen = take_value_flag(args, "--listen")?;
        let number = |name: &str, value: Option<String>| -> Result<Option<usize>, String> {
            value
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| format!("`{name}` expects a non-negative integer, got `{s}`"))
                })
                .transpose()
        };
        let cache_entries = number("--cache-entries", take_value_flag(args, "--cache-entries")?)?;
        let cache_bytes = number("--cache-bytes", take_value_flag(args, "--cache-bytes")?)?;
        let max_request_bytes = number(
            "--max-request-bytes",
            take_value_flag(args, "--max-request-bytes")?,
        )?;
        let workers = number("--workers", take_value_flag(args, "--workers")?)?;
        let request_timeout_ms = number(
            "--request-timeout-ms",
            take_value_flag(args, "--request-timeout-ms")?,
        )?;
        let max_inflight = number("--max-inflight", take_value_flag(args, "--max-inflight")?)?;
        let snapshot_path = take_value_flag(args, "--cache-snapshot")?;
        let snapshot_every = number(
            "--snapshot-every",
            take_value_flag(args, "--snapshot-every")?,
        )?;
        let inject_fault = take_value_flag(args, "--inject-fault")?;
        let metrics_window_ms = number(
            "--metrics-window-ms",
            take_value_flag(args, "--metrics-window-ms")?,
        )?;
        let slowlog_ms = number("--slowlog-ms", take_value_flag(args, "--slowlog-ms")?)?;
        let metrics_listen = take_value_flag(args, "--metrics-listen")?;
        if let Some(extra) = args.first() {
            return Err(format!("serve does not take `{extra}`"));
        }
        let mut config = ServeConfig::default();
        if let Some(n) = cache_entries {
            config.cache.max_entries = n;
        }
        if let Some(n) = cache_bytes {
            config.cache.max_bytes = n;
        }
        if let Some(n) = max_request_bytes {
            if n == 0 {
                return Err("`--max-request-bytes` must be at least 1".to_string());
            }
            config.max_request_bytes = n;
        }
        if let Some(n) = workers {
            if n == 0 {
                return Err("`--workers` must be at least 1".to_string());
            }
            config.workers = n;
        }
        if let Some(n) = request_timeout_ms {
            config.request_timeout_ms = n as u64;
        }
        if let Some(n) = max_inflight {
            config.max_inflight = n;
        }
        config.snapshot_path = snapshot_path;
        if let Some(n) = snapshot_every {
            config.snapshot_every = n as u64;
        }
        if let Some(n) = metrics_window_ms {
            config.metrics_window_ms = n as u64;
        }
        if let Some(n) = slowlog_ms {
            config.slowlog_ms = n as u64;
        }
        config.metrics_listen = metrics_listen;
        if let Some(kind) = inject_fault {
            if !cfg!(feature = "fault-inject") {
                return Err(
                    "`--inject-fault` needs a build with the fault-inject feature".to_string(),
                );
            }
            config.inject_fault = Some(ServeFault::parse(&kind).ok_or_else(|| {
                format!(
                    "`--inject-fault` expects panic|slow|drop-conn|corrupt-snapshot, got `{kind}`"
                )
            })?);
        }
        Ok(ServeOptions { listen, config })
    }
}

/// Runs the daemon until EOF, disconnect-after-shutdown, drain, or a
/// fatal transport error. Request-level failures never reach this
/// result — they are answered in-band as structured error envelopes.
pub fn serve_command(opts: &ServeOptions) -> Result<(), Failure> {
    let _span = pst_obs::Span::enter("serve");
    let outcome = match &opts.listen {
        Some(addr) => pst_serve::serve_tcp(opts.config.clone(), addr),
        None => pst_serve::serve_stdio(opts.config.clone()),
    };
    outcome.map_err(|e| Failure::Analysis(format!("serve transport error: {e}")))
}
