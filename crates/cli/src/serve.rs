//! `pst serve` — the long-lived analysis daemon (see `docs/SERVING.md`).
//!
//! Speaks newline-delimited JSON-RPC over stdin/stdout by default, or
//! over TCP with `--listen addr:port` (std::net only; port 0 picks a
//! free port and the bound address is announced on stdout). Session
//! state lives in `pst-serve`: a content-hash LRU cache that interns
//! parsed units and per-stage pipeline artifacts, budgeted by
//! `--cache-entries` / `--cache-bytes` (0 = unlimited). Lines longer
//! than `--max-request-bytes` are answered with an `oversized_request`
//! envelope instead of being buffered.
//!
//! The daemon composes with the global observability flags: `--trace` /
//! `--metrics-json` report the `serve_*` counters and latency
//! histograms at exit, and `--journal` records one `unit_summary` event
//! per request as it happens (which is why `finish_journal` skips the
//! exit-time unit mirror for this command).

use pst_serve::ServeConfig;

use crate::{take_value_flag, Failure};

/// Parsed `pst serve` options.
pub struct ServeOptions {
    /// TCP listen address (`addr:port`); stdin/stdout when absent.
    pub listen: Option<String>,
    /// Cache budgets and request size cap.
    pub config: ServeConfig,
}

impl ServeOptions {
    /// Parses serve-specific flags out of the remaining CLI arguments.
    pub fn from_args(args: &mut Vec<String>) -> Result<ServeOptions, String> {
        let listen = take_value_flag(args, "--listen")?;
        let number = |name: &str, value: Option<String>| -> Result<Option<usize>, String> {
            value
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| format!("`{name}` expects a non-negative integer, got `{s}`"))
                })
                .transpose()
        };
        let cache_entries = number("--cache-entries", take_value_flag(args, "--cache-entries")?)?;
        let cache_bytes = number("--cache-bytes", take_value_flag(args, "--cache-bytes")?)?;
        let max_request_bytes = number(
            "--max-request-bytes",
            take_value_flag(args, "--max-request-bytes")?,
        )?;
        if let Some(extra) = args.first() {
            return Err(format!("serve does not take `{extra}`"));
        }
        let mut config = ServeConfig::default();
        if let Some(n) = cache_entries {
            config.cache.max_entries = n;
        }
        if let Some(n) = cache_bytes {
            config.cache.max_bytes = n;
        }
        if let Some(n) = max_request_bytes {
            if n == 0 {
                return Err("`--max-request-bytes` must be at least 1".to_string());
            }
            config.max_request_bytes = n;
        }
        Ok(ServeOptions { listen, config })
    }
}

/// Runs the daemon until EOF, disconnect-after-shutdown, or a fatal
/// transport error. Request-level failures never reach this result —
/// they are answered in-band as structured error envelopes.
pub fn serve_command(opts: &ServeOptions) -> Result<(), Failure> {
    let _span = pst_obs::Span::enter("serve");
    let outcome = match &opts.listen {
        Some(addr) => pst_serve::serve_tcp(opts.config, addr),
        None => pst_serve::serve_stdio(opts.config),
    };
    outcome.map_err(|e| Failure::Analysis(format!("serve transport error: {e}")))
}
