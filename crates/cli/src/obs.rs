//! `pst obs` — fleet-level aggregation of telemetry artifacts.
//!
//! Reads any mix of structured-event journals (`--journal` JSONL),
//! metrics reports (`--metrics-json` output), and `BENCH_<label>.json`
//! benchmark reports, and renders one merged view: global histograms
//! (exact integer bucket merges), the top-N slowest units across every
//! run, and the journal event stream filtered by `--level` (minimum
//! severity) and `--type` (exact event type).
//!
//! Each input file should describe a *different* run: a run's journal
//! mirrors its per-unit summaries, so feeding both the journal and the
//! metrics JSON of the same run counts its units twice.

use std::collections::BTreeMap;

use pst_obs::journal::{Level, Record};
use pst_obs::json::Json;
use pst_obs::{Histogram, UnitReport};

use crate::{take_value_flag, Failure};

/// Output format for the aggregated view.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable summary (default).
    Text,
    /// One JSON object with the merged state.
    Json,
}

/// Parsed `pst obs` options.
pub struct ObsOptions {
    /// Input artifacts: journals, metrics JSON, or BENCH reports.
    pub inputs: Vec<String>,
    /// Output format.
    pub format: Format,
    /// Minimum journal level to keep (`info` keeps everything).
    pub level: Level,
    /// Exact event type to keep (e.g. `fuzz_crash`); `None` keeps all.
    pub event_type: Option<String>,
    /// How many of the slowest units to list.
    pub top: usize,
}

impl ObsOptions {
    /// Parses obs-specific flags; every remaining argument is an input.
    pub fn from_args(args: &mut Vec<String>) -> Result<ObsOptions, String> {
        let format = match take_value_flag(args, "--format")?.as_deref() {
            None | Some("text") => Format::Text,
            Some("json") => Format::Json,
            Some(other) => return Err(format!("`--format` expects text|json, got `{other}`")),
        };
        let level = match take_value_flag(args, "--level")? {
            None => Level::Info,
            Some(name) => Level::parse(&name)
                .ok_or_else(|| format!("`--level` expects info|warn|error, got `{name}`"))?,
        };
        let event_type = take_value_flag(args, "--type")?;
        if let Some(t) = &event_type {
            const TYPES: [&str; 6] = [
                "run_start",
                "run_end",
                "unit_summary",
                "lint_finding",
                "fuzz_crash",
                "bench_verdict",
            ];
            if !TYPES.contains(&t.as_str()) {
                return Err(format!(
                    "`--type` expects one of {}, got `{t}`",
                    TYPES.join("|")
                ));
            }
        }
        let top = match take_value_flag(args, "--top")? {
            None => 10,
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("`--top` expects a positive integer, got `{v}`"))?,
        };
        if let Some(stray) = args.iter().find(|a| a.starts_with("--")) {
            return Err(format!("unexpected obs flag `{stray}`"));
        }
        let inputs = std::mem::take(args);
        if inputs.is_empty() {
            return Err("obs expects at least one journal/metrics/BENCH file".to_string());
        }
        Ok(ObsOptions {
            inputs,
            format,
            level,
            event_type,
            top,
        })
    }
}

/// What kind of artifact one input file turned out to be.
#[derive(Clone, Copy, PartialEq, Eq)]
enum InputKind {
    Journal,
    Metrics,
    Bench,
}

impl InputKind {
    fn label(self) -> &'static str {
        match self {
            InputKind::Journal => "journal",
            InputKind::Metrics => "metrics",
            InputKind::Bench => "bench",
        }
    }
}

/// The merged fleet state accumulated over every input.
#[derive(Default)]
struct Fleet {
    /// `(path, kind)` per input, in command-line order.
    files: Vec<(String, InputKind)>,
    /// Distinct trace ids seen across the journals, sorted.
    traces: Vec<String>,
    /// Every journal record, in input order.
    records: Vec<Record>,
    /// Global histograms merged by name (exact bucket addition).
    histograms: BTreeMap<String, Histogram>,
    /// Per-unit sub-reports merged by unit id.
    units: BTreeMap<String, UnitReport>,
}

impl Fleet {
    fn ingest(&mut self, path: &str) -> Result<(), Failure> {
        let text = crate::read_source(path).map_err(Failure::Usage)?;
        let kind = self.classify_and_merge(path, &text)?;
        self.files.push((path.to_string(), kind));
        Ok(())
    }

    fn classify_and_merge(&mut self, path: &str, text: &str) -> Result<InputKind, Failure> {
        let first = text.lines().find(|l| !l.trim().is_empty());
        if first.is_some_and(|l| Record::parse_line(l).is_some()) {
            self.merge_journal(path, text)?;
            return Ok(InputKind::Journal);
        }
        let json = Json::parse(text).map_err(|e| {
            Failure::Analysis(format!(
                "`{path}` is neither a journal nor a JSON document: {e}"
            ))
        })?;
        if json.get("schema_version").is_some() {
            // A BENCH report embeds the run's full observability report
            // under "obs"; aggregate its histograms and units.
            if let Some(obs) = json.get("obs") {
                self.merge_report_json(path, obs)?;
            }
            return Ok(InputKind::Bench);
        }
        if json.get("counters").is_some() || json.get("spans").is_some() {
            self.merge_report_json(path, &json)?;
            return Ok(InputKind::Metrics);
        }
        Err(Failure::Analysis(format!(
            "`{path}` is not a journal, metrics report, or BENCH report"
        )))
    }

    fn merge_journal(&mut self, path: &str, text: &str) -> Result<(), Failure> {
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = Record::parse_line(line).ok_or_else(|| {
                Failure::Analysis(format!("`{path}` line {}: not a journal record", i + 1))
            })?;
            if !self.traces.contains(&record.trace) {
                self.traces.push(record.trace.clone());
            }
            // A journaled unit summary mirrors one entry of the run's
            // `Report::units`, so fold it in as a bare sub-report.
            if let pst_obs::journal::Event::UnitSummary { unit, nanos, count } = &record.event {
                self.units.entry(unit.clone()).or_default().merge_from(&UnitReport {
                    count: *count,
                    nanos: *nanos,
                    ..UnitReport::default()
                });
            }
            self.records.push(record);
        }
        self.traces.sort();
        Ok(())
    }

    /// Merges the "histograms" and "units" sections of a metrics report
    /// (or the "obs" object of a BENCH report). Reports written by a
    /// build without the `obs` feature simply lack the keys.
    fn merge_report_json(&mut self, path: &str, json: &Json) -> Result<(), Failure> {
        let malformed =
            |what: &str| Failure::Analysis(format!("`{path}`: malformed `{what}` section"));
        if let Some(Json::Obj(hists)) = json.get("histograms") {
            for (name, h) in hists {
                let h = Histogram::from_json(h).ok_or_else(|| malformed("histograms"))?;
                self.histograms.entry(name.clone()).or_default().merge_from(&h);
            }
        }
        if let Some(Json::Obj(units)) = json.get("units") {
            for (name, u) in units {
                let u = UnitReport::from_json(u).ok_or_else(|| malformed("units"))?;
                self.units.entry(name.clone()).or_default().merge_from(&u);
            }
        }
        Ok(())
    }

    /// Records surviving the `--level` / `--type` filters, in input order.
    fn selected<'a>(&'a self, opts: &'a ObsOptions) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| {
            r.level >= opts.level
                && opts
                    .event_type
                    .as_deref()
                    .is_none_or(|t| r.event.type_str() == t)
        })
    }

    /// Event counts by type over the *selected* records.
    fn counts_by_type(&self, opts: &ObsOptions) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for r in self.selected(opts) {
            *counts.entry(r.event.type_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Units sorted by total attributed wall time, slowest first (name
    /// breaks ties so the ranking is deterministic).
    fn top_units(&self, n: usize) -> Vec<(&String, &UnitReport)> {
        let mut ranked: Vec<_> = self.units.iter().collect();
        ranked.sort_by(|(an, a), (bn, b)| b.nanos.cmp(&a.nanos).then(an.cmp(bn)));
        ranked.truncate(n);
        ranked
    }

    fn render_text(&self, opts: &ObsOptions) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let journals = self.files.iter().filter(|(_, k)| *k == InputKind::Journal).count();
        let _ = writeln!(
            out,
            "fleet: {} file(s) ({journals} journal(s)), {} trace(s)",
            self.files.len(),
            self.traces.len()
        );
        for (path, kind) in &self.files {
            let _ = writeln!(out, "  [{}] {path}", kind.label());
        }
        let selected: Vec<&Record> = self.selected(opts).collect();
        let _ = writeln!(
            out,
            "events: {} selected of {} (level >= {}{})",
            selected.len(),
            self.records.len(),
            opts.level.as_str(),
            match &opts.event_type {
                Some(t) => format!(", type == {t}"),
                None => String::new(),
            }
        );
        for (ty, n) in self.counts_by_type(opts) {
            let _ = writeln!(out, "  {ty:<14} {n:>6}");
        }
        // The full stream is only interesting once a filter narrows it.
        if opts.level > Level::Info || opts.event_type.is_some() {
            for r in &selected {
                let _ = writeln!(
                    out,
                    "  {}#{:<4} [{:<5}] {:<14} {}",
                    r.trace,
                    r.seq,
                    r.level.as_str(),
                    r.event.type_str(),
                    r.event.data_json()
                );
            }
        }
        if !self.units.is_empty() {
            let _ = writeln!(out, "top {} unit(s) by total time:", opts.top.min(self.units.len()));
            for (i, (name, u)) in self.top_units(opts.top).iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {:>3}. {:<40} {:>10} ({}x)",
                    i + 1,
                    name,
                    pst_perf::fmt_ns(u.nanos),
                    u.count
                );
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "merged histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(out, "  {name:<30} {}", h.render_line());
            }
        }
        out
    }

    fn to_json(&self, opts: &ObsOptions) -> Json {
        Json::obj([
            (
                "files",
                Json::Arr(
                    self.files
                        .iter()
                        .map(|(path, kind)| {
                            Json::obj([
                                ("path", Json::Str(path.clone())),
                                ("kind", Json::Str(kind.label().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "traces",
                Json::Arr(self.traces.iter().map(|t| Json::Str(t.clone())).collect()),
            ),
            (
                "event_counts",
                Json::Obj(
                    self.counts_by_type(opts)
                        .into_iter()
                        .map(|(ty, n)| (ty.to_string(), Json::UInt(n)))
                        .collect(),
                ),
            ),
            (
                "events",
                Json::Arr(self.selected(opts).map(Record::to_json).collect()),
            ),
            (
                "top_units",
                Json::Arr(
                    self.top_units(opts.top)
                        .into_iter()
                        .map(|(name, u)| {
                            Json::obj([
                                ("unit", Json::Str(name.clone())),
                                ("nanos", Json::UInt(u.nanos)),
                                ("count", Json::UInt(u.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs `pst obs`: merge every input, then render the fleet view.
pub fn obs_command(opts: &ObsOptions) -> Result<(), Failure> {
    let mut fleet = Fleet::default();
    for path in &opts.inputs {
        fleet.ingest(path)?;
    }
    match opts.format {
        Format::Text => print!("{}", fleet.render_text(opts)),
        Format::Json => println!("{}", fleet.to_json(opts)),
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn journal_line(seq: u64, trace: &str, event: pst_obs::journal::Event) -> String {
        Record {
            seq,
            trace: trace.to_string(),
            level: event.level(),
            event,
        }
        .to_json()
        .to_string()
    }

    #[test]
    fn two_journals_merge_units_and_traces() {
        use pst_obs::journal::Event;
        let a = [
            journal_line(0, "aaaa", Event::RunStart { command: "regions".into(), args: vec![] }),
            journal_line(1, "aaaa", Event::UnitSummary { unit: "f".into(), nanos: 100, count: 1 }),
            journal_line(2, "aaaa", Event::RunEnd { command: "regions".into(), exit_code: 0, nanos: 200 }),
        ]
        .join("\n");
        let b = [
            journal_line(0, "bbbb", Event::UnitSummary { unit: "f".into(), nanos: 50, count: 2 }),
            journal_line(1, "bbbb", Event::UnitSummary { unit: "g".into(), nanos: 500, count: 1 }),
        ]
        .join("\n");
        let mut fleet = Fleet::default();
        fleet.classify_and_merge("a.jsonl", &a).unwrap();
        fleet.classify_and_merge("b.jsonl", &b).unwrap();
        assert_eq!(fleet.traces, vec!["aaaa".to_string(), "bbbb".to_string()]);
        assert_eq!(fleet.records.len(), 5);
        let ranked = fleet.top_units(10);
        assert_eq!(ranked[0].0, "g");
        assert_eq!((ranked[1].0.as_str(), ranked[1].1.nanos, ranked[1].1.count), ("f", 150, 3));
    }

    #[test]
    fn level_and_type_filters_select_events() {
        use pst_obs::journal::Event;
        let text = [
            journal_line(0, "t", Event::RunStart { command: "lint".into(), args: vec![] }),
            journal_line(1, "t", Event::LintFinding {
                unit: "u".into(),
                rule: "PST-S001".into(),
                severity: "warning".into(),
                message: "m".into(),
            }),
            journal_line(2, "t", Event::FuzzCrash {
                seed: 7,
                kind: "panic".into(),
                detail: "boom".into(),
                reproducer: None,
            }),
        ]
        .join("\n");
        let mut fleet = Fleet::default();
        fleet.classify_and_merge("j", &text).unwrap();
        let mut opts = ObsOptions {
            inputs: vec![],
            format: Format::Text,
            level: Level::Warn,
            event_type: None,
            top: 10,
        };
        let kinds: Vec<_> = fleet.selected(&opts).map(|r| r.event.type_str()).collect();
        assert_eq!(kinds, vec!["lint_finding", "fuzz_crash"]);
        opts.event_type = Some("fuzz_crash".to_string());
        assert_eq!(fleet.selected(&opts).count(), 1);
    }

    #[test]
    fn metrics_reports_contribute_histograms_and_units() {
        let mut h = Histogram::new();
        h.record_n(10, 4);
        let metrics = Json::obj([
            ("spans", Json::Arr(vec![])),
            ("counters", Json::obj([("c", Json::UInt(3u64))])),
            ("gauges", Json::Obj(vec![])),
            ("histograms", Json::obj([("lat", h.to_json())])),
            (
                "units",
                Json::obj([(
                    "f",
                    UnitReport { count: 1, nanos: 42, ..UnitReport::default() }.to_json(),
                )]),
            ),
        ])
        .to_string();
        let mut fleet = Fleet::default();
        let kind = fleet.classify_and_merge("m.json", &metrics).unwrap();
        assert!(kind == InputKind::Metrics);
        // Same file merged twice doubles the histogram exactly.
        fleet.classify_and_merge("m.json", &metrics).unwrap();
        assert_eq!(fleet.histograms["lat"].count(), 8);
        assert_eq!(fleet.units["f"].nanos, 84);
    }
}
