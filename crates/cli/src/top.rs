//! `pst top` — a terminal dashboard for a serving daemon.
//!
//! Connects to a running `pst serve --listen` daemon over TCP, asks for
//! the live `metrics` and `stats` views in one NDJSON round trip, and
//! renders a per-method table: lifetime totals, windowed request rate,
//! errors, p50/p99 latency, and cache hit ratio, with a daemon-wide
//! header (in-flight, shed, workers, draining). By default the view
//! refreshes every `--interval-ms` (ANSI clear between frames, like
//! `top(1)`); `--once` takes a single snapshot and exits, and
//! `--once --format json` emits the raw `{"metrics": ..., "stats": ...}`
//! pair for scripts — that mode is what `scripts/verify.sh` drives.
//!
//! The daemon only serves the `metrics` method when started with
//! `--metrics-window-ms > 0` (the default); against a daemon with live
//! telemetry disabled this command reports the refusal and exits 1.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use pst_obs::json::Json;

use crate::{take_flag, take_value_flag, Failure};

/// Output format for `pst top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopFormat {
    /// Human-readable table (the default).
    Text,
    /// Raw `{"metrics": ..., "stats": ...}` JSON, one document per poll.
    Json,
}

/// Parsed `pst top` options.
#[derive(Debug)]
pub struct TopOptions {
    /// Daemon address (`addr:port`), as announced by `pst serve --listen`.
    pub addr: String,
    /// Take one snapshot and exit instead of refreshing.
    pub once: bool,
    /// Table or raw JSON.
    pub format: TopFormat,
    /// Refresh interval between polls (clamped to >= 100ms).
    pub interval_ms: u64,
}

impl TopOptions {
    /// Parses top-specific flags out of the remaining CLI arguments.
    pub fn from_args(args: &mut Vec<String>) -> Result<TopOptions, String> {
        let addr = take_value_flag(args, "--addr")?.ok_or_else(|| {
            "top needs `--addr addr:port` (the address a `pst serve --listen` daemon announced)"
                .to_string()
        })?;
        let once = take_flag(args, "--once");
        let format = match take_value_flag(args, "--format")?.as_deref() {
            None | Some("text") => TopFormat::Text,
            Some("json") => TopFormat::Json,
            Some(other) => return Err(format!("`--format` expects text|json, got `{other}`")),
        };
        let interval_ms = match take_value_flag(args, "--interval-ms")? {
            None => 1000,
            Some(s) => s.parse::<u64>().map_err(|_| {
                format!("`--interval-ms` expects a non-negative integer, got `{s}`")
            })?,
        };
        if let Some(extra) = args.first() {
            return Err(format!("top does not take `{extra}`"));
        }
        Ok(TopOptions {
            addr,
            once,
            format,
            interval_ms,
        })
    }
}

/// Polls the daemon until interrupted (or once, with `--once`).
pub fn top_command(opts: &TopOptions) -> Result<(), Failure> {
    loop {
        let (metrics, stats) = poll(&opts.addr)?;
        match opts.format {
            TopFormat::Json => {
                println!(
                    "{}",
                    Json::obj([("metrics", metrics), ("stats", stats)])
                );
            }
            TopFormat::Text => {
                if !opts.once {
                    // Same idiom as top(1): clear and home between frames.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&opts.addr, &metrics, &stats));
            }
        }
        if opts.once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(100)));
    }
}

/// One NDJSON round trip: send `metrics` + `stats`, return both results.
fn poll(addr: &str) -> Result<(Json, Json), Failure> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| Failure::Analysis(format!("top: cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| Failure::Analysis(format!("top: cannot arm read timeout: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| Failure::Analysis(format!("top: cannot clone connection: {e}")))?;
    writer
        .write_all(b"{\"id\": 1, \"method\": \"metrics\"}\n{\"id\": 2, \"method\": \"stats\"}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| Failure::Analysis(format!("top: write to {addr} failed: {e}")))?;
    let mut reader = BufReader::new(stream);
    let metrics = read_result(&mut reader, addr, "metrics")?;
    let stats = read_result(&mut reader, addr, "stats")?;
    Ok((metrics, stats))
}

/// Reads one reply line and unwraps the `{"ok": true, "result": ...}`
/// envelope, surfacing the daemon's error message on refusal (the
/// common one: live telemetry disabled via `--metrics-window-ms 0`).
fn read_result(reader: &mut impl BufRead, addr: &str, method: &str) -> Result<Json, Failure> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| Failure::Analysis(format!("top: read from {addr} failed: {e}")))?;
    if n == 0 {
        return Err(Failure::Analysis(format!(
            "top: {addr} closed the connection before answering `{method}`"
        )));
    }
    let reply = Json::parse(line.trim())
        .map_err(|e| Failure::Analysis(format!("top: `{method}` reply is not JSON: {e:?}")))?;
    if !matches!(reply.get("ok"), Some(Json::Bool(true))) {
        let message = match reply.get("error").and_then(|e| e.get("message")) {
            Some(Json::Str(s)) => s.clone(),
            _ => "no error message".to_string(),
        };
        return Err(Failure::Analysis(format!(
            "top: daemon refused `{method}`: {message}"
        )));
    }
    reply
        .get("result")
        .cloned()
        .ok_or_else(|| Failure::Analysis(format!("top: `{method}` reply has no result")))
}

/// A `u64` field of a JSON object, defaulting to 0.
fn u64_field(value: &Json, key: &str) -> u64 {
    value.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Renders the dashboard: a daemon-wide header plus one row per method
/// that has served at least one request.
fn render(addr: &str, metrics: &Json, stats: &Json) -> String {
    let window_ms = u64_field(metrics, "window_ms");
    let windows = u64_field(metrics, "windows");
    let span_secs = (window_ms.saturating_mul(windows)) as f64 / 1000.0;
    let draining = matches!(stats.get("draining"), Some(Json::Bool(true)));
    let cache = stats.get("cache");
    let mut out = format!(
        "pst top — {addr}  tick {}  window {window_ms}ms x{windows}\n",
        u64_field(metrics, "tick"),
    );
    out.push_str(&format!(
        "in-flight {}  shed {}  conn-errors {}  workers {}  draining {}  slowlog {}\n",
        u64_field(stats, "in_flight"),
        u64_field(stats, "shed"),
        u64_field(stats, "conn_errors"),
        u64_field(stats, "workers"),
        draining,
        u64_field(metrics, "slowlog_entries"),
    ));
    if let Some(cache) = cache {
        out.push_str(&format!(
            "cache: {} entries, {} bytes, {} hits / {} misses, {} evictions\n",
            u64_field(cache, "entries"),
            u64_field(cache, "bytes"),
            u64_field(cache, "hits"),
            u64_field(cache, "misses"),
            u64_field(cache, "evictions"),
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<10} {:>10} {:>8} {:>6} {:>10} {:>10} {:>6}\n",
        "METHOD", "TOTAL", "RATE/S", "ERRS", "P50(us)", "P99(us)", "HIT%"
    ));
    let mut active = 0usize;
    if let Some(Json::Obj(methods)) = metrics.get("methods") {
        for (name, series) in methods {
            let total = u64_field(series, "requests_total");
            if total == 0 {
                continue;
            }
            active += 1;
            let window = series.get("window");
            let in_window = window.map(|w| u64_field(w, "requests")).unwrap_or(0);
            let rate = if span_secs > 0.0 {
                in_window as f64 / span_secs
            } else {
                0.0
            };
            let hit_pct = if in_window > 0 {
                let hits = window.map(|w| u64_field(w, "cache_hits")).unwrap_or(0);
                100.0 * hits as f64 / in_window as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<10} {:>10} {:>8.1} {:>6} {:>10} {:>10} {:>5.0}%\n",
                name,
                total,
                rate,
                u64_field(series, "errors_total"),
                window.map(|w| u64_field(w, "p50_nanos")).unwrap_or(0) / 1_000,
                window.map(|w| u64_field(w, "p99_nanos")).unwrap_or(0) / 1_000,
                hit_pct,
            ));
        }
    }
    if active == 0 {
        out.push_str("(no requests served yet)\n");
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn flag(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_args_requires_addr_and_validates_format() {
        let err = TopOptions::from_args(&mut flag(&["--once"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err =
            TopOptions::from_args(&mut flag(&["--addr", "x:1", "--format", "xml"])).unwrap_err();
        assert!(err.contains("text|json"), "{err}");
        let opts =
            TopOptions::from_args(&mut flag(&["--addr", "x:1", "--once", "--format", "json"]))
                .unwrap();
        assert!(opts.once);
        assert!(opts.format == TopFormat::Json);
        assert_eq!(opts.interval_ms, 1000);
    }

    #[test]
    fn render_shows_active_methods_and_the_daemon_header() {
        let metrics = Json::parse(
            r#"{"window_ms": 1000, "windows": 8, "tick": 3, "slowlog_entries": 2,
                "methods": {
                  "pst": {"requests_total": 40, "errors_total": 1, "cache_hits_total": 10,
                          "window": {"requests": 8, "errors": 0, "cache_hits": 4, "count": 8,
                                     "p50_nanos": 2000000, "p99_nanos": 9000000, "max_nanos": 9000000}},
                  "lint": {"requests_total": 0, "errors_total": 0, "cache_hits_total": 0,
                           "window": {"requests": 0, "errors": 0, "cache_hits": 0, "count": 0,
                                      "p50_nanos": 0, "p99_nanos": 0, "max_nanos": 0}}}}"#,
        )
        .unwrap();
        let stats = Json::parse(
            r#"{"in_flight": 1, "shed": 0, "conn_errors": 0, "workers": 4, "draining": false,
                "cache": {"entries": 3, "bytes": 900, "hits": 10, "misses": 30, "evictions": 0}}"#,
        )
        .unwrap();
        let table = render("127.0.0.1:9", &metrics, &stats);
        assert!(table.contains("pst top — 127.0.0.1:9"), "{table}");
        assert!(table.contains("workers 4"), "{table}");
        assert!(table.contains("slowlog 2"), "{table}");
        // The active method renders with p50 in microseconds and the
        // windowed hit ratio; the idle method is hidden.
        // Two spaces: the method column is left-padded to 10, which
        // distinguishes the row from the "pst top — ..." banner.
        let pst_row = table.lines().find(|l| l.starts_with("pst  ")).unwrap();
        assert!(pst_row.contains("2000"), "{pst_row}");
        assert!(pst_row.contains("50%"), "{pst_row}");
        assert!(!table.contains("\nlint"), "{table}");
    }

    #[test]
    fn render_without_traffic_says_so() {
        let metrics =
            Json::parse(r#"{"window_ms": 1000, "windows": 8, "tick": 0, "methods": {}}"#).unwrap();
        let stats = Json::parse(r#"{"workers": 1, "draining": false}"#).unwrap();
        let table = render("h:1", &metrics, &stats);
        assert!(table.contains("(no requests served yet)"), "{table}");
    }
}
