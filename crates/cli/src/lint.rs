//! `pst lint` — rule-based structural diagnostics over the pipeline's
//! artifacts (see `docs/ANALYSIS.md` for the rule catalog).
//!
//! Mini-language inputs run every applicable rule per function; `--edges`
//! inputs canonicalize a raw edge list first and run the graph-level rules.
//! `--json` prints one JSON array of per-unit reports on stdout; `--dot`
//! writes Graphviz with flagged nodes and edges highlighted. Any finding
//! makes the process exit 5 (after `--allow`/`--deny` filtering), so the
//! command slots into CI next to the 0/1/2/3/4 taxonomy of the other modes.
//! `--explain <rule>` prints a rule's documentation card (summary,
//! severity, example, fix hint) and exits without reading any input.

use pst_analysis::{find_rule, dot_with_findings, lint_function, lint_graph, LintConfig, LintReport};
use pst_cfg::{parse_edge_list_graph, CanonicalizeOptions};
use pst_lang::{lower_program, parse_program};

use crate::{read_source, Failure};

/// Parsed `pst lint` options.
pub struct LintOptions {
    /// Print the documentation card of this rule and exit (no input read).
    pub explain: Option<String>,
    /// Input path (`-` = stdin). Unused (and empty) under `--explain`.
    pub path: String,
    /// Emit machine-readable JSON instead of human text.
    pub json: bool,
    /// Treat the input as a raw edge list instead of a mini program.
    pub edges: bool,
    /// Write a highlighted DOT dump here (`-` = stderr).
    pub dot: Option<String>,
    /// Per-rule allow/deny overrides, in command-line order.
    pub config: LintConfig,
    /// Canonicalization knobs for `--edges` inputs.
    pub canonicalize: CanonicalizeOptions,
}

impl LintOptions {
    /// Parses lint-specific flags out of the remaining CLI arguments.
    pub fn from_args(
        args: &mut Vec<String>,
        canonicalize: CanonicalizeOptions,
    ) -> Result<LintOptions, String> {
        let json = crate::take_flag(args, "--json");
        let edges = crate::take_flag(args, "--edges");
        let dot = crate::take_value_flag(args, "--dot")?;
        let explain = crate::take_value_flag(args, "--explain")?;
        let mut config = LintConfig::new();
        // `--allow`/`--deny` repeat and interact (last mention of a rule
        // wins), so consume them in order rather than via take_value_flag.
        let mut i = 0;
        while i < args.len() {
            let (name, inline) = match args[i].split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (args[i].clone(), None),
            };
            if name != "--allow" && name != "--deny" {
                i += 1;
                continue;
            }
            args.remove(i);
            let value = match inline {
                Some(v) => v,
                None => {
                    if i >= args.len() {
                        return Err(format!("`{name}` requires a rule id or name"));
                    }
                    args.remove(i)
                }
            };
            let result = if name == "--allow" {
                config.allow(&value)
            } else {
                config.deny(&value)
            };
            result.map_err(|unknown| {
                format!("unknown lint rule `{unknown}` (see docs/ANALYSIS.md for the catalog)")
            })?;
        }
        let path = match (args.first(), args.get(1)) {
            _ if explain.is_some() => {
                if !args.is_empty() {
                    return Err("`--explain` takes no input path".to_string());
                }
                String::new()
            }
            (Some(p), None) => p.clone(),
            _ => return Err("lint expects exactly one input path".to_string()),
        };
        Ok(LintOptions {
            explain,
            path,
            json,
            edges,
            dot,
            config,
            canonicalize,
        })
    }
}

/// Runs `pst lint`. Exit code 5 (via [`Failure::Lint`]) when any
/// diagnostic survives the configuration.
pub fn lint_command(opts: &LintOptions) -> Result<(), Failure> {
    if let Some(key) = &opts.explain {
        let rule = find_rule(key).ok_or_else(|| {
            Failure::Usage(format!(
                "unknown lint rule `{key}` (see docs/ANALYSIS.md for the catalog)"
            ))
        })?;
        print!("{}", rule.explain());
        return Ok(());
    }
    let source = read_source(&opts.path).map_err(Failure::Usage)?;
    // (unit name, report, DOT dump if requested)
    let mut units: Vec<(String, LintReport, Option<String>)> = Vec::new();
    if opts.edges {
        let unit_name = opts.path.clone();
        let _unit = pst_obs::UnitScope::enter(unit_name.as_str());
        let (graph, entry) = parse_edge_list_graph(&source)
            .map_err(|e| Failure::Analysis(format!("edge list error: {e}")))?;
        let lint = lint_graph(&graph, entry, &opts.canonicalize, &opts.config)
            .map_err(|e| Failure::Analysis(format!("canonicalize error: {e}")))?;
        let dot = opts
            .dot
            .is_some()
            .then(|| dot_with_findings(lint.canonical.cfg.graph(), &lint.report));
        units.push((unit_name, lint.report, dot));
    } else {
        let program = parse_program(&source)
            .map_err(|e| Failure::Analysis(format!("parse error: {e}")))?;
        let lowered = lower_program(&program)
            .map_err(|e| Failure::Analysis(format!("lowering error: {e}")))?;
        for (f, ast) in lowered.iter().zip(&program.functions) {
            let unit_name = format!("{}#{}", opts.path, f.name);
            let report = {
                let _unit = pst_obs::UnitScope::enter(unit_name.as_str());
                lint_function(f, Some(ast), &opts.config)
            };
            let dot = opts
                .dot
                .is_some()
                .then(|| dot_with_findings(f.cfg.graph(), &report));
            units.push((unit_name, report, dot));
        }
    }
    for (name, report, _) in &units {
        for diag in &report.diagnostics {
            pst_obs::journal::emit(pst_obs::journal::Event::LintFinding {
                unit: name.clone(),
                rule: diag.rule.to_string(),
                severity: diag.severity.label().to_string(),
                message: diag.message.clone(),
            });
        }
    }
    let findings: usize = units.iter().map(|(_, r, _)| r.diagnostics.len()).sum();
    if opts.json {
        let arr = pst_obs::json::Json::Arr(
            units
                .iter()
                .map(|(name, report, _)| report.to_json(name))
                .collect(),
        );
        println!("{arr}");
    } else {
        for (name, report, _) in &units {
            print!("{}", report.render_text(name));
        }
    }
    if let Some(dot_path) = &opts.dot {
        let text: String = units
            .iter()
            .filter_map(|(_, _, d)| d.as_deref())
            .collect::<Vec<_>>()
            .join("\n");
        if dot_path == "-" {
            eprint!("{text}");
        } else {
            std::fs::write(dot_path, text)
                .map_err(|e| Failure::Usage(format!("cannot write `{dot_path}`: {e}")))?;
        }
    }
    if findings > 0 {
        Err(Failure::Lint(findings))
    } else {
        Ok(())
    }
}
