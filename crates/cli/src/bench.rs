//! `pst bench` — the performance observatory's command-line front end.
//!
//! Runs the `pst-perf` harness over the standard workload matrix
//! (`examples/*.mini` when present, plus seeded generated CFGs,
//! programs, and messy digraphs), writes a versioned `BENCH_<label>.json`
//! report, and optionally:
//!
//! - `--compare <baseline.json>`: gates the fresh run (or, with
//!   `--candidate <report.json>`, a previously written report — no
//!   re-benchmarking) against a baseline. Regressions beyond the
//!   CI-overlap threshold exit with code 6.
//! - `--trace-out <file>`: exports the run's observability span tree as
//!   Chrome `trace_event` JSON (open in `about:tracing` or Perfetto).
//!
//! See `docs/BENCHMARKING.md` for the report schema, the gate
//! semantics, and the baseline workflow.

use std::path::PathBuf;

use pst_perf::{
    chrome_trace, compare, run_matrix, standard_matrix, validate_chrome_trace, BenchConfig,
    BenchReport, GateConfig, HarnessConfig, Workload, BENCH_SCHEMA_VERSION,
};

use crate::{take_flag, take_value_flag, Failure};

/// Output format for the report summary on stdout.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable table (default).
    Text,
    /// The report JSON itself.
    Json,
}

/// Parsed `pst bench` options.
pub struct BenchOptions {
    /// Small matrix and few iterations (CI smoke profile).
    pub quick: bool,
    /// Report label; names the default output file `BENCH_<label>.json`.
    pub label: String,
    /// Explicit output path (overrides the label-derived default).
    pub out: Option<String>,
    /// Timed iterations per workload (default: profile-dependent).
    pub iters: Option<u64>,
    /// Warm-up iterations per workload.
    pub warmup: Option<u64>,
    /// Baseline report to gate against.
    pub compare: Option<String>,
    /// Pre-recorded candidate report: compare without benchmarking.
    pub candidate: Option<String>,
    /// Allowed median-time growth in percent (default 10).
    pub threshold: Option<f64>,
    /// Allowed allocation growth in percent (default 25).
    pub alloc_threshold: Option<f64>,
    /// Chrome trace output path.
    pub trace_out: Option<String>,
    /// Summary format on stdout.
    pub format: Format,
}

fn take_u64(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
    match take_value_flag(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("`{name}` expects an unsigned integer, got `{v}`")),
    }
}

fn take_percent(args: &mut Vec<String>, name: &str) -> Result<Option<f64>, String> {
    match take_value_flag(args, name)? {
        None => Ok(None),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x >= 0.0 => Ok(Some(x)),
            _ => Err(format!("`{name}` expects a non-negative percentage, got `{v}`")),
        },
    }
}

impl BenchOptions {
    /// Parses bench-specific flags out of the remaining CLI arguments.
    pub fn from_args(args: &mut Vec<String>) -> Result<BenchOptions, String> {
        let quick = take_flag(args, "--quick");
        let label = take_value_flag(args, "--label")?.unwrap_or_else(|| "local".to_string());
        if label.is_empty() || label.contains(['/', '\\']) {
            return Err(format!("`--label` must be a plain file-name fragment, got `{label}`"));
        }
        let format = match take_value_flag(args, "--format")?.as_deref() {
            None | Some("text") => Format::Text,
            Some("json") => Format::Json,
            Some(other) => return Err(format!("`--format` expects text|json, got `{other}`")),
        };
        let opts = BenchOptions {
            quick,
            label,
            out: take_value_flag(args, "--out")?,
            iters: take_u64(args, "--iters")?,
            warmup: take_u64(args, "--warmup")?,
            compare: take_value_flag(args, "--compare")?,
            candidate: take_value_flag(args, "--candidate")?,
            threshold: take_percent(args, "--threshold")?,
            alloc_threshold: take_percent(args, "--alloc-threshold")?,
            trace_out: take_value_flag(args, "--trace-out")?,
            format,
        };
        if let Some(stray) = args.first() {
            return Err(format!("unexpected argument `{stray}`"));
        }
        if opts.candidate.is_some() && opts.compare.is_none() {
            return Err("`--candidate` requires `--compare <baseline.json>`".to_string());
        }
        if opts.iters == Some(0) {
            return Err("`--iters` must be at least 1".to_string());
        }
        Ok(opts)
    }

    fn gate_config(&self) -> GateConfig {
        let mut gate = GateConfig::default();
        if let Some(pct) = self.threshold {
            gate.time_ratio = pct / 100.0;
        }
        if let Some(pct) = self.alloc_threshold {
            gate.alloc_ratio = pct / 100.0;
        }
        gate
    }

    fn harness_config(&self) -> HarnessConfig {
        let mut config = if self.quick {
            HarnessConfig::quick()
        } else {
            HarnessConfig::full()
        };
        if let Some(iters) = self.iters {
            config.iters = iters;
        }
        if let Some(warmup) = self.warmup {
            config.warmup = warmup;
        }
        config
    }
}

fn load_report(path: &str, role: &str) -> Result<BenchReport, Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::Usage(format!("cannot read {role} `{path}`: {e}")))?;
    BenchReport::parse(&text)
        .map_err(|e| Failure::Analysis(format!("{role} `{path}` is not a valid report: {e}")))
}

/// `examples/*.mini` as workloads, sorted by name so the matrix is
/// deterministic. Quietly empty when no `examples/` directory is in
/// reach (e.g. running from another working directory).
fn example_workloads() -> Vec<Workload> {
    let Ok(entries) = std::fs::read_dir("examples") else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mini"))
        .collect();
    paths.sort();
    let mut workloads = Vec::new();
    for path in paths {
        let stem = path.file_stem().map(|s| s.to_string_lossy().into_owned());
        if let (Some(stem), Ok(source)) = (stem, std::fs::read_to_string(&path)) {
            workloads.push(Workload::mini(format!("mini:{stem}"), source));
        }
    }
    workloads
}

fn gate(
    baseline: &BenchReport,
    candidate: &BenchReport,
    candidate_name: &str,
    opts: &BenchOptions,
) -> Result<(), Failure> {
    let comparison = compare(baseline, candidate, &opts.gate_config());
    print!("{}", comparison.render_text());
    pst_obs::journal::emit(pst_obs::journal::Event::BenchVerdict {
        baseline: opts.compare.clone().unwrap_or_default(),
        candidate: candidate_name.to_string(),
        findings: comparison.findings.len() as u64,
        passed: comparison.passed(),
    });
    if comparison.passed() {
        Ok(())
    } else {
        Err(Failure::Regression(comparison.findings.len()))
    }
}

/// Runs `pst bench`.
pub fn bench_command(opts: &BenchOptions) -> Result<(), Failure> {
    // Compare-only mode: both sides come from disk, nothing is measured.
    if let (Some(baseline_path), Some(candidate_path)) = (&opts.compare, &opts.candidate) {
        let baseline = load_report(baseline_path, "baseline")?;
        let candidate = load_report(candidate_path, "candidate")?;
        return gate(&baseline, &candidate, candidate_path, opts);
    }

    if !pst_perf::alloc::installed() {
        eprintln!(
            "pst: warning: counting allocator not installed; allocation stats will read zero"
        );
    }
    let config = opts.harness_config();
    // Scope the embedded observability report to the measured runs.
    pst_obs::reset();
    let mut workloads = example_workloads();
    workloads.extend(standard_matrix(opts.quick));
    let results =
        run_matrix(&workloads, &config).map_err(|e| Failure::Analysis(e.to_string()))?;
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: opts.label.clone(),
        config: BenchConfig {
            iters: config.iters,
            warmup: config.warmup,
            bootstrap: config.bootstrap,
            quick: opts.quick,
        },
        workloads: results,
        obs: pst_obs::report().to_json(),
    };

    // Self-check: never write a report this build could not read back.
    let json = report.to_json();
    BenchReport::validate(&json)
        .map_err(|e| Failure::Analysis(format!("generated report failed self-validation: {e}")))?;

    let out_path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.label));
    std::fs::write(&out_path, format!("{json}\n"))
        .map_err(|e| Failure::Analysis(format!("cannot write report to `{out_path}`: {e}")))?;

    match opts.format {
        Format::Text => {
            print!("{}", report.render_text());
            println!("\nreport written to {out_path}");
        }
        Format::Json => println!("{json}"),
    }

    if let Some(trace_path) = &opts.trace_out {
        if !pst_obs::enabled() {
            eprintln!(
                "pst: warning: built without observability (`obs` feature); trace will be empty"
            );
        }
        let trace = chrome_trace(&report.obs)
            .map_err(|e| Failure::Analysis(format!("trace export failed: {e}")))?;
        validate_chrome_trace(&trace)
            .map_err(|e| Failure::Analysis(format!("trace failed self-validation: {e}")))?;
        std::fs::write(trace_path, format!("{trace}\n"))
            .map_err(|e| Failure::Analysis(format!("cannot write trace to `{trace_path}`: {e}")))?;
        println!("chrome trace written to {trace_path} (open in about:tracing or Perfetto)");
    }

    if let Some(baseline_path) = &opts.compare {
        let baseline = load_report(baseline_path, "baseline")?;
        return gate(&baseline, &report, &out_path, opts);
    }
    Ok(())
}
