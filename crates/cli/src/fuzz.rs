//! `pst fuzz` — differential fuzzing of the whole pipeline with crash
//! containment.
//!
//! Each seed in the range deterministically generates an arbitrary digraph
//! (no CFG invariants), pushes it through canonicalize → cycle-equiv → PST
//! → control-regions → φ-placement, and re-derives every stage with the
//! independent checkers from `pst-verify`. A panic anywhere in the pipeline
//! is contained with `catch_unwind` and reported as data; any violation or
//! contained panic is greedily minimized (edges first, then unused nodes)
//! and the reproducer edge list is written to `<out-dir>/<seed>.edges`,
//! re-runnable with `pst --canonicalize <file>`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use pst_cfg::{canonicalize, CanonicalizeOptions, Graph, NodeId};
use pst_verify::{
    compute_artifacts_for_cfg, verify_artifacts, verify_strong_on_digraph, VerifyConfig,
};
use pst_workloads::{random_digraph, DigraphConfig};

use crate::{take_value_flag, Failure};

/// Minimization re-runs the full contained pipeline per candidate; cap the
/// number of candidate evaluations so a pathological failure cannot stall
/// the fuzz loop.
const MAX_MINIMIZE_EVALS: usize = 2_000;

/// Parsed `pst fuzz` options.
pub struct FuzzOptions {
    pub seed_start: u64,
    pub seed_end: u64,
    pub budget_ms: Option<u64>,
    pub out_dir: String,
    /// Fault kind to inject into every input's artifacts before checking
    /// (requires the `fault-inject` build; proves the exit-code taxonomy).
    pub inject_fault: Option<String>,
}

impl FuzzOptions {
    /// Parses fuzz-specific flags out of the remaining CLI arguments.
    pub fn from_args(args: &mut Vec<String>) -> Result<FuzzOptions, String> {
        let range = take_value_flag(args, "--seed-range")?
            .ok_or("fuzz requires `--seed-range <start>..<end>`")?;
        let (seed_start, seed_end) = parse_seed_range(&range)?;
        let budget_ms = match take_value_flag(args, "--budget-ms")? {
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("`--budget-ms` expects milliseconds, got `{v}`"))?,
            ),
            None => None,
        };
        let out_dir = take_value_flag(args, "--out-dir")?
            .unwrap_or_else(|| "fuzz-failures".to_string());
        let inject_fault = take_value_flag(args, "--inject-fault")?;
        if let Some(stray) = args.first() {
            return Err(format!("unexpected fuzz argument `{stray}`"));
        }
        Ok(FuzzOptions {
            seed_start,
            seed_end,
            budget_ms,
            out_dir,
            inject_fault,
        })
    }
}

/// Parses `A..B` (half-open, `A < B`).
fn parse_seed_range(text: &str) -> Result<(u64, u64), String> {
    let err = || format!("`--seed-range` expects `<start>..<end>`, got `{text}`");
    let (a, b) = text.split_once("..").ok_or_else(err)?;
    let start: u64 = a.trim().parse().map_err(|_| err())?;
    let end: u64 = b.trim().parse().map_err(|_| err())?;
    if start >= end {
        return Err(format!("empty seed range `{text}`"));
    }
    Ok((start, end))
}

/// The fault to inject per input. Without the `fault-inject` feature the
/// flag is rejected at startup, so the spec is always `None` there.
#[cfg(feature = "fault-inject")]
type InjectSpec = Option<pst_verify::FaultKind>;
#[cfg(not(feature = "fault-inject"))]
type InjectSpec = Option<std::convert::Infallible>;

/// What one fuzz input did, with the panic already contained.
enum Outcome {
    Clean { exhausted: bool },
    /// Canonicalization rejected the raw digraph with a proper error.
    Rejected,
    Violation(String),
    Panic(String),
}

impl Outcome {
    fn fails(&self) -> bool {
        matches!(self, Outcome::Violation(_) | Outcome::Panic(_))
    }
}

/// A fuzz input in minimizable form: `node_count` nodes (0 is the entry)
/// and an edge list.
#[derive(Clone)]
struct Input {
    node_count: usize,
    edges: Vec<(usize, usize)>,
}

impl Input {
    fn of_graph(graph: &Graph) -> Input {
        Input {
            node_count: graph.node_count(),
            edges: graph
                .edges()
                .map(|e| {
                    let (s, t) = graph.endpoints(e);
                    (s.index(), t.index())
                })
                .collect(),
        }
    }

    fn to_graph(&self) -> (Graph, NodeId) {
        let mut g = Graph::new();
        let nodes = g.add_nodes(self.node_count.max(1));
        for &(a, b) in &self.edges {
            g.add_edge(nodes[a], nodes[b]);
        }
        (g, nodes[0])
    }

    fn render_edges(&self) -> String {
        let mut text = String::new();
        for &(a, b) in &self.edges {
            text.push_str(&format!("{a}->{b}\n"));
        }
        text
    }
}

/// Runs the full pipeline on one raw digraph with every checker enabled,
/// containing panics. Never panics itself.
fn run_one(graph: &Graph, entry: NodeId, inject: InjectSpec, fault_seed: u64) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        // Fold this unit's counters into the global aggregate even if it
        // panics: the tally recorded before the crash is data, not noise.
        let _fold = pst_obs::fold_on_drop();
        // NTSCD/DOD are defined on the raw digraph itself: check them
        // against their oracles *before* canonicalization repairs away the
        // non-terminating regions where they differ from the classic
        // relation.
        let strong = verify_strong_on_digraph(graph, &VerifyConfig::default());
        if !strong.is_clean() {
            return Outcome::Violation(strong.to_string());
        }
        let strong_exhausted = !strong.exhausted_checkers().is_empty();
        let canonical = match canonicalize(graph, entry, &CanonicalizeOptions::default()) {
            Ok(c) => c,
            Err(_) => return Outcome::Rejected,
        };
        #[allow(unused_mut)]
        let mut artifacts = compute_artifacts_for_cfg(&canonical.cfg);
        #[cfg(feature = "fault-inject")]
        if let Some(kind) = inject {
            let _ = pst_verify::inject(
                &mut artifacts,
                &pst_verify::FaultPlan {
                    kind,
                    seed: fault_seed,
                },
            );
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = (inject, fault_seed);
        let report = verify_artifacts(&artifacts, &VerifyConfig::default());
        if report.is_clean() {
            Outcome::Clean {
                exhausted: strong_exhausted || !report.exhausted_checkers().is_empty(),
            }
        } else {
            Outcome::Violation(report.to_string())
        }
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => Outcome::Panic(panic_message(payload)),
    }
}

/// Best-effort extraction of the panic payload message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Greedy minimization: repeatedly try dropping one edge at a time (the
/// input must keep failing), then compact away nodes no edge mentions,
/// until a fixpoint or the evaluation cap.
fn minimize(mut input: Input, inject: InjectSpec, fault_seed: u64) -> Input {
    let mut evals = 0usize;
    let mut still_fails = |candidate: &Input| {
        evals += 1;
        if evals > MAX_MINIMIZE_EVALS {
            return false;
        }
        let (g, entry) = candidate.to_graph();
        run_one(&g, entry, inject, fault_seed).fails()
    };
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < input.edges.len() {
            // An empty edge list would not round-trip through
            // `pst --canonicalize`; keep at least one edge.
            if input.edges.len() == 1 {
                break;
            }
            let mut candidate = input.clone();
            candidate.edges.remove(i);
            if still_fails(&candidate) {
                input = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        let compacted = compact_nodes(&input);
        if compacted.node_count < input.node_count && still_fails(&compacted) {
            input = compacted;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    input
}

/// Renumbers nodes so only the entry and nodes mentioned by an edge remain.
fn compact_nodes(input: &Input) -> Input {
    let mut used = vec![false; input.node_count];
    if !used.is_empty() {
        used[0] = true;
    }
    for &(a, b) in &input.edges {
        used[a] = true;
        used[b] = true;
    }
    let mut map = vec![usize::MAX; input.node_count];
    let mut next = 0usize;
    for (i, &u) in used.iter().enumerate() {
        if u {
            map[i] = next;
            next += 1;
        }
    }
    Input {
        node_count: next,
        edges: input.edges.iter().map(|&(a, b)| (map[a], map[b])).collect(),
    }
}

/// Derives a deterministic digraph shape from the seed so a range of seeds
/// sweeps sizes, densities, and every Definition-1 violation.
fn config_for_seed(seed: u64) -> DigraphConfig {
    DigraphConfig {
        nodes: 2 + (seed % 15) as usize,
        edges: (seed % 29) as usize,
        force_entry_predecessor: seed.is_multiple_of(3),
        force_unreachable: seed.is_multiple_of(5),
        force_infinite_loop: seed.is_multiple_of(7),
        force_multiple_exits: seed % 4 == 1,
        force_self_loop: seed % 6 == 2,
    }
}

/// Runs the fuzz loop. Exit taxonomy: contained panics dominate (code 4),
/// then checker violations (code 3); a fully clean run exits 0.
pub fn fuzz_command(opts: &FuzzOptions) -> Result<(), Failure> {
    let _span = pst_obs::Span::enter("fuzz");
    #[cfg(feature = "fault-inject")]
    let inject: InjectSpec = match &opts.inject_fault {
        Some(name) => Some(pst_verify::FaultKind::from_name(name).ok_or_else(|| {
            Failure::Usage(format!(
                "unknown fault kind `{name}` (expected one of: {})",
                pst_verify::FaultKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?),
        None => None,
    };
    #[cfg(not(feature = "fault-inject"))]
    let inject: InjectSpec = match &opts.inject_fault {
        Some(_) => {
            return Err(Failure::Usage(
                "--inject-fault requires a binary built with `--features fault-inject`"
                    .to_string(),
            ))
        }
        None => None,
    };

    // Panics are contained and reported as data; silence the default hook's
    // stderr backtrace chatter for the duration of the loop.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let start = Instant::now();
    let mut ran = 0u64;
    let mut rejected = 0u64;
    let mut exhausted = 0u64;
    let mut violations = 0u64;
    let mut panics = 0u64;
    let mut first_violation: Option<String> = None;
    let mut first_panic: Option<String> = None;
    let mut out_of_budget = false;
    for seed in opts.seed_start..opts.seed_end {
        if let Some(budget) = opts.budget_ms {
            if start.elapsed().as_millis() as u64 >= budget {
                out_of_budget = true;
                break;
            }
        }
        let (graph, entry) = random_digraph(&config_for_seed(seed), seed);
        // Each fuzz case is a telemetry unit: its pipeline counters and
        // phase histograms land under `seed:<N>` as well as the global
        // aggregate, so a crash can be profiled in isolation.
        let outcome = {
            let _unit = pst_obs::UnitScope::enter(format!("seed:{seed}"));
            run_one(&graph, entry, inject, seed)
        };
        ran += 1;
        pst_obs::counter!("fuzz_inputs");
        match &outcome {
            Outcome::Clean { exhausted: e } => {
                if *e {
                    exhausted += 1;
                    pst_obs::counter!("fuzz_budget_exhausted");
                }
            }
            Outcome::Rejected => rejected += 1,
            Outcome::Violation(report) => {
                violations += 1;
                pst_obs::counter!("fuzz_violations");
                let small = minimize(Input::of_graph(&graph), inject, seed);
                let path = write_reproducer(&opts.out_dir, seed, &small)?;
                pst_obs::journal::emit(pst_obs::journal::Event::FuzzCrash {
                    seed,
                    kind: "violation".to_string(),
                    detail: first_line(report),
                    reproducer: Some(path.clone()),
                });
                println!(
                    "seed {seed}: CHECKER VIOLATION ({} nodes, {} edges minimized) -> {path}",
                    small.node_count,
                    small.edges.len()
                );
                if first_violation.is_none() {
                    first_violation = Some(format!("seed {seed}:\n{report}"));
                }
            }
            Outcome::Panic(message) => {
                panics += 1;
                pst_obs::counter!("fuzz_panics_contained");
                let small = minimize(Input::of_graph(&graph), inject, seed);
                let path = write_reproducer(&opts.out_dir, seed, &small)?;
                pst_obs::journal::emit(pst_obs::journal::Event::FuzzCrash {
                    seed,
                    kind: "panic".to_string(),
                    detail: first_line(message),
                    reproducer: Some(path.clone()),
                });
                println!(
                    "seed {seed}: CONTAINED PANIC `{message}` ({} nodes, {} edges minimized) -> {path}",
                    small.node_count,
                    small.edges.len()
                );
                if first_panic.is_none() {
                    first_panic = Some(format!("seed {seed}: {message}"));
                }
            }
        }
    }
    std::panic::set_hook(previous_hook);

    println!(
        "fuzz: {ran} inputs (seeds {}..{}{}), {rejected} rejected by canonicalization, \
         {exhausted} oracle-budget-exhausted, {violations} violations, {panics} contained panics",
        opts.seed_start,
        opts.seed_end,
        if out_of_budget { ", stopped on --budget-ms" } else { "" },
    );
    if let Some(message) = first_panic {
        return Err(Failure::ContainedPanic(format!(
            "{panics} contained panic(s); first: {message}"
        )));
    }
    if let Some(message) = first_violation {
        return Err(Failure::Violation(format!(
            "{violations} checker violation(s); first: {message}"
        )));
    }
    Ok(())
}

/// First line of a multi-line checker report or panic message — journal
/// events stay single-line greppable; the full text is on stdout anyway.
fn first_line(text: &str) -> String {
    text.lines().next().unwrap_or_default().to_string()
}

/// Writes the minimized edge list to `<dir>/<seed>.edges`.
fn write_reproducer(dir: &str, seed: u64, input: &Input) -> Result<String, Failure> {
    std::fs::create_dir_all(dir).map_err(|e| {
        Failure::Analysis(format!("cannot create reproducer directory `{dir}`: {e}"))
    })?;
    let path = format!("{dir}/{seed}.edges");
    std::fs::write(&path, input.render_edges())
        .map_err(|e| Failure::Analysis(format!("cannot write reproducer `{path}`: {e}")))?;
    Ok(path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_parsing() {
        assert_eq!(parse_seed_range("0..10"), Ok((0, 10)));
        assert_eq!(parse_seed_range(" 3 .. 7 "), Ok((3, 7)));
        assert!(parse_seed_range("5..5").is_err());
        assert!(parse_seed_range("7..3").is_err());
        assert!(parse_seed_range("abc").is_err());
    }

    #[test]
    fn compaction_keeps_entry_and_renumbers() {
        let input = Input {
            node_count: 6,
            edges: vec![(0, 2), (2, 5)],
        };
        let small = compact_nodes(&input);
        assert_eq!(small.node_count, 3);
        assert_eq!(small.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn clean_seeds_stay_clean() {
        // A small smoke over the first seeds: the real pipeline must not
        // trip its own checkers on arbitrary digraph inputs.
        for seed in 0..12u64 {
            let (graph, entry) = random_digraph(&config_for_seed(seed), seed);
            let outcome = run_one(&graph, entry, None, seed);
            assert!(
                !outcome.fails(),
                "seed {seed} failed the self-check pipeline"
            );
        }
    }
}
