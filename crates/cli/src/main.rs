//! `pst` — command-line front door to the Program Structure Tree library.
//!
//! ```text
//! pst <command> <file.mini | ->
//!
//! commands:
//!   regions          print each function's PST and shape statistics
//!   kinds            classify every SESE region (block/if/case/loop/dag/…)
//!   dot              Graphviz DOT dump, nodes colored by innermost region
//!   clusters         Graphviz DOT dump with regions as nested clusters
//!   control-regions  control-dependence equivalence classes (§5)
//!   ssa              φ-placement and SSA renaming (§6.1)
//!   dataflow         per-variable reaching definitions via QPGs (§6.2)
//!   loops            natural-loop nesting forest (dominator view)
//!   intervals        Allen–Cocke derived sequence and reducibility
//!
//! pst --canonicalize <edges.txt | -> [--tether] [--split-self-loops]
//! pst lint <file.mini | -> [--edges] [--json] [--dot <path>]
//!          [--allow <rule>] [--deny <rule>]
//! pst fuzz --seed-range <A>..<B> [--budget-ms <N>] [--out-dir <dir>]
//! pst bench [--quick] [--label <name>] [--out <path>] [--iters <N>]
//!           [--warmup <N>] [--compare <baseline.json>]
//!           [--candidate <report.json>] [--threshold <pct>]
//!           [--alloc-threshold <pct>] [--trace-out <file>]
//!           [--format text|json]
//! ```
//!
//! `--canonicalize` reads a raw `a->b`-style edge list (node 0 is the
//! entry), repairs every Definition-1 violation — unreachable nodes
//! (pruned, or tethered with `--tether`), missing/multiple exits, infinite
//! loops, entry predecessors — prints the repair report, and runs the PST
//! on the repaired CFG with a slow-bracket oracle cross-check.
//!
//! `fuzz` streams seeded arbitrary digraphs through the whole pipeline with
//! every `pst-verify` invariant checker enabled, contains panics per input,
//! and writes a minimized reproducer edge list for each failure (see
//! `docs/VERIFICATION.md`). `--paranoid` runs the same checkers on the
//! normal command paths.
//!
//! `lint` runs the rule-based structural diagnostics of `pst-analysis`
//! (irreducible loops, vacuous branches, uninitialized reads, …; catalog
//! in `docs/ANALYSIS.md`) over a mini program, or over a raw edge list
//! with `--edges`. `--allow`/`--deny` silence or escalate individual
//! rules; `--json` emits machine-readable reports; `--dot` writes a
//! Graphviz dump with the findings highlighted.
//!
//! `bench` runs the deterministic in-process benchmark harness of
//! `pst-perf` over the standard workload matrix, writes a versioned
//! `BENCH_<label>.json` report (robust per-phase statistics, allocation
//! totals, embedded observability span tree), gates against a baseline
//! with `--compare`, and exports Chrome `trace_event` JSON with
//! `--trace-out` (see `docs/BENCHMARKING.md`).
//!
//! `-` reads the program from stdin. Exit codes: 0 ok, 1 analysis error,
//! 2 usage error, 3 invariant-checker violation, 4 contained panic
//! (a contained panic takes precedence over a violation), 5 lint
//! findings, 6 performance regression (`pst bench --compare`).
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--trace` prints the
//! recorded phase tree and counters to stderr; `--metrics-json <path>`
//! writes the same report as JSON (`-` = stderr). The `PST_METRICS`
//! environment variable supplies a default for `--metrics-json`.
//!
//! `--journal <path>` appends one JSON line per structured event (run
//! lifecycle, per-unit summaries, lint findings, fuzz crashes, bench
//! gate verdicts) to `<path>` (`-` = stderr); `PST_JOURNAL` supplies the
//! default and `PST_TRACE_SEED` pins the run's trace id for
//! reproducible journals. `pst obs <file>...` aggregates journals,
//! metrics JSON, and `BENCH_*.json` reports into one fleet view.
//!
//! `serve` runs the long-lived analysis daemon: newline-delimited
//! JSON-RPC over stdin/stdout (or TCP with `--listen addr:port`), with
//! a content-hash LRU session cache that makes repeat queries lookups
//! instead of recomputes (see `docs/SERVING.md`).

// The CLI's request path must never panic on user input: unwrap/expect
// are banned outside test modules (which opt back in explicitly), and
// verify.sh runs clippy with warnings as errors to keep it that way.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod bench;
mod fuzz;
mod lint;
mod obs;
mod serve;
mod top;

/// Every `pst` process counts its allocations: the observability layer
/// and `pst bench` read the totals, and the per-allocation cost is a
/// handful of relaxed atomic increments.
#[global_allocator]
static ALLOC: pst_perf::CountingAlloc = pst_perf::CountingAlloc::new();

use std::io::Read as _;
use std::process::ExitCode;

use pst_cfg::graph_to_dot_with;
use pst_controldep::fow_control_regions;
use pst_core::{classify_regions, collapse_all, ControlRegions, ProgramStructureTree, PstStats};
use pst_dataflow::{solve_iterative, QpgContext, SingleVariableReachingDefs};
use pst_lang::{lower_program, parse_program, LoweredFunction, VarId};
use pst_ssa::{place_phis_cytron, place_phis_pst, rename};

const USAGE: &str = "usage: pst <regions|kinds|dot|clusters|control-regions|ssa|dataflow> \
     <file.mini | -> [--paranoid] [--trace] [--metrics-json <path>] [--journal <path>]\n       \
     pst --canonicalize <edges.txt | -> [--tether] [--split-self-loops] [--paranoid]\n       \
     pst lint <file.mini | -> [--edges] [--json] [--dot <path>] \
     [--allow <rule>] [--deny <rule>]\n       \
     pst lint --explain <rule>\n       \
     pst fuzz --seed-range <A>..<B> [--budget-ms <N>] [--out-dir <dir>]\n       \
     pst bench [--quick] [--label <name>] [--out <path>] [--compare <baseline.json>] \
     [--trace-out <file>]\n       \
     pst obs <journal|metrics.json|BENCH_*.json>... [--format text|json] \
     [--level info|warn|error] [--type <event-type>] [--top <N>]\n       \
     pst serve [--listen <addr:port>] [--workers <N>] [--request-timeout-ms <N>] \
     [--max-inflight <N>] [--cache-entries <N>] [--cache-bytes <N>] \
     [--max-request-bytes <N>] [--cache-snapshot <path>] [--snapshot-every <N>] \
     [--metrics-window-ms <N>] [--slowlog-ms <N>] [--metrics-listen <addr:port>] \
     [--inject-fault panic|slow|drop-conn|corrupt-snapshot]\n       \
     pst top --addr <addr:port> [--once] [--format text|json] [--interval-ms <N>]";

fn main() -> ExitCode {
    let started = std::time::Instant::now();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = take_flag(&mut args, "--trace");
    let metrics_json = match take_value_flag(&mut args, "--metrics-json") {
        Ok(v) => v.or_else(|| std::env::var("PST_METRICS").ok().filter(|s| !s.is_empty())),
        Err(msg) => {
            eprintln!("pst: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let journal_target = match take_value_flag(&mut args, "--journal") {
        Ok(v) => v.or_else(|| std::env::var("PST_JOURNAL").ok().filter(|s| !s.is_empty())),
        Err(msg) => {
            eprintln!("pst: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let canonicalize_mode = take_flag(&mut args, "--canonicalize");
    let paranoid = take_flag(&mut args, "--paranoid");
    let options = pst_cfg::CanonicalizeOptions {
        unreachable: if take_flag(&mut args, "--tether") {
            pst_cfg::UnreachablePolicy::Tether
        } else {
            pst_cfg::UnreachablePolicy::Prune
        },
        split_self_loops: take_flag(&mut args, "--split-self-loops"),
    };
    if let Some(target) = journal_target.as_deref() {
        // PST_TRACE_SEED pins the trace id so seeded runs journal
        // reproducibly; without it the id is minted from the clock.
        let seed = std::env::var("PST_TRACE_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        if let Err(e) = pst_obs::journal::install(target, seed) {
            eprintln!("pst: cannot open journal `{target}`: {e}");
            return ExitCode::from(2);
        }
    }
    let command = if canonicalize_mode {
        "canonicalize".to_string()
    } else {
        args.first().cloned().unwrap_or_default()
    };
    pst_obs::journal::emit(pst_obs::journal::Event::RunStart {
        command: command.clone(),
        args: if canonicalize_mode { args.clone() } else { args.iter().skip(1).cloned().collect() },
    });
    let outcome = if !canonicalize_mode && args.first().map(String::as_str) == Some("fuzz") {
        args.remove(0);
        match fuzz::FuzzOptions::from_args(&mut args) {
            Ok(opts) => fuzz::fuzz_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else if !canonicalize_mode && args.first().map(String::as_str) == Some("bench") {
        args.remove(0);
        match bench::BenchOptions::from_args(&mut args) {
            Ok(opts) => bench::bench_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else if !canonicalize_mode && args.first().map(String::as_str) == Some("lint") {
        args.remove(0);
        match lint::LintOptions::from_args(&mut args, options) {
            Ok(opts) => lint::lint_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else if !canonicalize_mode && args.first().map(String::as_str) == Some("obs") {
        args.remove(0);
        match obs::ObsOptions::from_args(&mut args) {
            Ok(opts) => obs::obs_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else if !canonicalize_mode && args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        match serve::ServeOptions::from_args(&mut args) {
            Ok(opts) => serve::serve_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else if !canonicalize_mode && args.first().map(String::as_str) == Some("top") {
        args.remove(0);
        match top::TopOptions::from_args(&mut args) {
            Ok(opts) => top::top_command(&opts),
            Err(msg) => Err(Failure::Usage(msg)),
        }
    } else {
        dispatch(canonicalize_mode, paranoid, &options, &args)
    };
    emit_observability(trace, metrics_json.as_deref());
    let code: u8 = match &outcome {
        Ok(()) => 0,
        Err(Failure::Usage(msg)) => {
            eprintln!("pst: {msg}\n{USAGE}");
            2
        }
        Err(Failure::Analysis(msg)) => {
            eprintln!("pst: {msg}");
            1
        }
        Err(Failure::Violation(msg)) => {
            eprintln!("pst: invariant violation: {msg}");
            3
        }
        Err(Failure::ContainedPanic(msg)) => {
            eprintln!("pst: contained panic: {msg}");
            4
        }
        Err(Failure::Lint(count)) => {
            eprintln!("pst: {count} lint finding(s)");
            5
        }
        Err(Failure::Regression(count)) => {
            eprintln!("pst: {count} performance regression finding(s)");
            6
        }
    };
    finish_journal(&command, code, started);
    ExitCode::from(code)
}

/// Mirrors the run's per-unit sub-reports into the journal (so a fleet
/// aggregator can rank units without the metrics JSON), then closes the
/// run with a `run_end` carrying the resolved exit code.
fn finish_journal(command: &str, exit_code: u8, started: std::time::Instant) {
    if !pst_obs::journal::installed() {
        return;
    }
    // The serve daemon already journals one unit_summary per request as
    // it happens; mirroring its aggregated units here would double-count
    // them in a fleet view.
    if pst_obs::enabled() && command != "serve" {
        let report = pst_obs::report();
        for (unit, u) in &report.units {
            pst_obs::journal::emit(pst_obs::journal::Event::UnitSummary {
                unit: unit.clone(),
                nanos: u.nanos,
                count: u.count,
            });
        }
    }
    pst_obs::journal::emit(pst_obs::journal::Event::RunEnd {
        command: command.to_string(),
        exit_code: exit_code as u64,
        nanos: started.elapsed().as_nanos() as u64,
    });
    pst_obs::journal::uninstall();
}

/// Resolves the `(command, path)` form of the CLI and runs it.
fn dispatch(
    canonicalize_mode: bool,
    paranoid: bool,
    options: &pst_cfg::CanonicalizeOptions,
    args: &[String],
) -> Result<(), Failure> {
    let (command, path) = if canonicalize_mode {
        match (args.first(), args.get(1)) {
            (Some(p), None) => ("--canonicalize", p.as_str()),
            _ => return Err(Failure::Usage("expected exactly one input path".to_string())),
        }
    } else {
        match (args.first(), args.get(1)) {
            (Some(c), Some(p)) => (c.as_str(), p.as_str()),
            _ => return Err(Failure::Usage("expected a command and an input path".to_string())),
        }
    };
    let source = read_source(path).map_err(Failure::Usage)?;
    if canonicalize_mode {
        canonicalize_command(&source, options, paranoid)
    } else {
        run(command, &source, paranoid)
    }
}

/// Removes every occurrence of the bare flag `name`; true if it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Removes `name <value>` or `name=<value>` from `args` (last one wins).
pub fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if i + 1 >= args.len() {
                return Err(format!("`{name}` requires a value"));
            }
            args.remove(i);
            value = Some(args.remove(i));
        } else if let Some(v) = args[i].strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(value)
}

/// Prints/writes the observability report per `--trace` / `--metrics-json`.
fn emit_observability(trace: bool, json_path: Option<&str>) {
    if !trace && json_path.is_none() {
        return;
    }
    if !pst_obs::enabled() {
        eprintln!("pst: built without observability (`obs` feature); no metrics recorded");
        return;
    }
    let report = pst_obs::report();
    if trace {
        eprint!("{}", report.render_text());
    }
    if let Some(path) = json_path {
        let text = format!("{}\n", report.to_json());
        if path == "-" {
            eprint!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("pst: cannot write metrics to `{path}`: {e}");
        }
    }
}

/// Every way a command can fail, ordered by exit code (2, 1, 3, 4).
/// A contained panic takes precedence over a checker violation when the
/// fuzz loop sees both.
#[derive(Debug)]
pub enum Failure {
    Usage(String),
    Analysis(String),
    /// An independent invariant checker flagged the pipeline (exit 3).
    Violation(String),
    /// A panic was caught by the fuzz loop's containment (exit 4).
    ContainedPanic(String),
    /// `pst lint` found this many diagnostics (exit 5). Not an error —
    /// the report was already printed.
    Lint(usize),
    /// `pst bench --compare` found this many regressions beyond the
    /// gate's thresholds (exit 6). The comparison was already printed.
    Regression(usize),
}

/// Reads the input (file path, or `-` for stdin) as UTF-8 text with
/// precise diagnostics instead of `read_to_string`'s generic errors:
/// empty input and non-UTF-8 bytes are rejected with exact messages
/// (the UTF-8 error names the first invalid byte offset), and an
/// unterminated final line is normalized with a trailing newline so the
/// line-oriented parsers see complete lines. The serve loop applies the
/// same rules per request line (`pst-serve`'s bounded reader).
fn read_source(path: &str) -> Result<String, String> {
    let bytes = if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let what = if path == "-" { "stdin" } else { path };
    if bytes.is_empty() {
        return Err(format!(
            "{what} is empty (expected a mini program or an edge list)"
        ));
    }
    let mut text = String::from_utf8(bytes).map_err(|e| {
        format!(
            "{what} is not valid UTF-8 (first invalid byte at offset {})",
            e.utf8_error().valid_up_to()
        )
    })?;
    if !text.ends_with('\n') {
        text.push('\n');
    }
    Ok(text)
}

fn run(command: &str, source: &str, paranoid: bool) -> Result<(), Failure> {
    let _span = pst_obs::Span::enter("pipeline");
    let program =
        parse_program(source).map_err(|e| Failure::Analysis(format!("parse error: {e}")))?;
    let lowered =
        lower_program(&program).map_err(|e| Failure::Analysis(format!("lowering error: {e}")))?;
    for function in &lowered {
        // Attribute every span/counter/histogram recorded below to this
        // function's unit as well as the global aggregate.
        let _unit = pst_obs::UnitScope::enter(function.name.as_str());
        match command {
            "regions" => regions(function),
            "kinds" => kinds(function),
            "dot" => dot(function),
            "clusters" => clusters(function),
            "control-regions" => control_regions(function),
            "ssa" => ssa(function)?,
            "dataflow" => dataflow(function)?,
            "loops" => loops(function),
            "intervals" => intervals(function),
            other => return Err(Failure::Usage(format!("unknown command `{other}`"))),
        }
        if paranoid {
            paranoid_check(function)?;
        }
        println!();
    }
    Ok(())
}

/// `--paranoid`: re-derive every stage of this function's pipeline with the
/// independent `pst-verify` checkers; a violation is exit code 3.
fn paranoid_check(f: &LoweredFunction) -> Result<(), Failure> {
    let artifacts = pst_verify::compute_artifacts(f.clone());
    let report = pst_verify::verify_artifacts(&artifacts, &pst_verify::VerifyConfig::default());
    if report.is_clean() {
        Ok(())
    } else {
        Err(Failure::Violation(format!(
            "fn {}: invariant checkers flagged the pipeline:\n{report}",
            f.name
        )))
    }
}

/// `pst --canonicalize`: repair an arbitrary edge-list digraph into a valid
/// CFG, report every repair, and run the PST with an oracle cross-check.
fn canonicalize_command(
    source: &str,
    options: &pst_cfg::CanonicalizeOptions,
    paranoid: bool,
) -> Result<(), Failure> {
    let _span = pst_obs::Span::enter("pipeline");
    let (graph, entry) = pst_cfg::parse_edge_list_graph(source)
        .map_err(|e| Failure::Analysis(format!("parse error: {e}")))?;
    println!(
        "input: {} nodes, {} edges, entry {entry}",
        graph.node_count(),
        graph.edge_count()
    );
    let result = pst_cfg::canonicalize(&graph, entry, options)
        .map_err(|e| Failure::Analysis(format!("canonicalization failed: {e}")))?;
    print!("{}", result.report);
    let cfg = &result.cfg;
    println!(
        "canonical CFG: {} nodes, {} edges, entry {}, exit {}",
        cfg.node_count(),
        cfg.edge_count(),
        cfg.entry(),
        cfg.exit()
    );

    // Cross-check the fast cycle-equivalence algorithm against the §3.3
    // explicit-bracket oracle on the repaired graph's closure. A mismatch
    // is an analysis failure, never a panic.
    let (s, _virtual_edge) = cfg.to_strongly_connected();
    let fast = pst_core::CycleEquiv::compute(&s, cfg.entry())
        .map_err(|e| Failure::Analysis(format!("cycle equivalence failed: {e}")))?;
    let slow = pst_core::cycle_equiv_slow_brackets(&s, cfg.entry())
        .map_err(|e| Failure::Analysis(format!("bracket oracle failed: {e}")))?;
    if fast != slow {
        return Err(Failure::Analysis(
            "cycle-equivalence cross-check failed: fast and slow-bracket \
             oracle disagree on the canonicalized CFG"
                .to_string(),
        ));
    }

    let pst = ProgramStructureTree::build(cfg);
    print!("{}", pst.render());
    println!(
        "{} canonical regions (cross-checked against the slow-bracket oracle)",
        pst.canonical_region_count()
    );
    if paranoid {
        let artifacts = pst_verify::compute_artifacts_for_cfg(cfg);
        let report =
            pst_verify::verify_artifacts(&artifacts, &pst_verify::VerifyConfig::default());
        if !report.is_clean() {
            return Err(Failure::Violation(format!(
                "canonicalized CFG: invariant checkers flagged the pipeline:\n{report}"
            )));
        }
        println!(
            "paranoid: all {} invariant checkers passed",
            pst_verify::CheckerId::ALL.len()
        );
    }
    Ok(())
}

fn regions(f: &LoweredFunction) {
    let pst = ProgramStructureTree::build(&f.cfg);
    let stats = PstStats::of(&pst);
    println!(
        "fn {}: {} blocks, {} edges, {} statements",
        f.name,
        f.cfg.node_count(),
        f.cfg.edge_count(),
        f.statement_count()
    );
    print!("{}", pst.render());
    println!(
        "{} canonical regions, max depth {}, average depth {:.2}, max collapsed size {}",
        stats.region_count,
        stats.max_depth,
        stats.average_depth(),
        stats.max_collapsed_size
    );
}

fn kinds(f: &LoweredFunction) {
    let pst = ProgramStructureTree::build(&f.cfg);
    let classification = classify_regions(&f.cfg, &pst);
    println!("fn {}:", f.name);
    for r in pst.regions() {
        let indent = "  ".repeat(pst.depth(r) + 1);
        println!("{indent}{r}: {}", classification.kind(r));
    }
    println!(
        "  completely structured: {}",
        classification.is_completely_structured()
    );
}

const PALETTE: &[&str] = &[
    "lightblue",
    "lightyellow",
    "lightpink",
    "lightgreen",
    "lavender",
    "mistyrose",
    "honeydew",
    "thistle",
];

fn dot(f: &LoweredFunction) {
    let pst = ProgramStructureTree::build(&f.cfg);
    println!("// fn {}", f.name);
    let rendered = graph_to_dot_with(
        f.cfg.graph(),
        |n| {
            let r = pst.region_of_node(n);
            let text: Vec<&str> = f.blocks[n.index()]
                .stmts
                .iter()
                .map(|s| s.text.as_str())
                .collect();
            format!(
                "label=\"{n} [{r}]\\n{}\", style=filled, fillcolor={}",
                text.join("\\n"),
                PALETTE[r.index() % PALETTE.len()]
            )
        },
        |_| String::new(),
    );
    print!("{rendered}");
}

fn clusters(f: &LoweredFunction) {
    let pst = ProgramStructureTree::build(&f.cfg);
    println!("// fn {} — regions as nested clusters", f.name);
    print!("{}", pst_core::pst_to_dot(&f.cfg, &pst));
}

fn control_regions(f: &LoweredFunction) {
    let fast = ControlRegions::compute(&f.cfg);
    debug_assert_eq!(fast, fow_control_regions(&f.cfg));
    println!("fn {}: {} control regions", f.name, fast.num_classes());
    for (class, nodes) in fast.groups().iter().enumerate() {
        let labels: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        println!("  class {class}: {}", labels.join(" "));
    }
}

fn ssa(f: &LoweredFunction) -> Result<(), Failure> {
    let pst = ProgramStructureTree::build(&f.cfg);
    let collapsed = collapse_all(&f.cfg, &pst);
    let sparse =
        place_phis_pst(f, &pst, &collapsed).map_err(|e| Failure::Analysis(e.to_string()))?;
    let baseline = place_phis_cytron(f);
    if baseline != sparse.placement {
        return Err(Failure::Violation(format!(
            "fn {}: PST φ-placement disagrees with the Cytron baseline (Theorem 9)",
            f.name
        )));
    }
    let form = rename(f, &baseline).map_err(|e| Failure::Analysis(e.to_string()))?;
    println!("fn {}: {} φ-functions", f.name, form.total_phis());
    for node in f.cfg.graph().nodes() {
        if form.phi_nodes[node.index()].is_empty() && form.statements[node.index()].is_empty() {
            continue;
        }
        println!("  block {node}:");
        for phi in &form.phi_nodes[node.index()] {
            let args: Vec<String> = phi
                .args
                .iter()
                .map(|(p, v)| format!("{}_{v}@{p}", f.var_name(phi.var)))
                .collect();
            println!(
                "    {}_{} = φ({})",
                f.var_name(phi.var),
                phi.result,
                args.join(", ")
            );
        }
        for (stmt, info) in form.statements[node.index()]
            .iter()
            .zip(&f.blocks[node.index()].stmts)
        {
            match stmt.def {
                Some((d, v)) => println!("    {}_{v}   // {}", f.var_name(d), info.text),
                None => println!("    //: {}", info.text),
            }
        }
    }
    Ok(())
}

fn loops(f: &LoweredFunction) {
    let forest = pst_dominators::LoopForest::compute(&f.cfg);
    println!("fn {}: {} natural loops", f.name, forest.loops().len());
    for (i, l) in forest.loops().iter().enumerate() {
        let body: Vec<String> = l.body.iter().map(|n| n.to_string()).collect();
        let parent = match l.parent {
            Some(p) => format!(" (inside loop {p})"),
            None => String::new(),
        };
        println!("  loop {i}: header {}{} body {{{}}}", l.header, parent, body.join(", "));
    }
}

fn intervals(f: &LoweredFunction) {
    let seq = pst_dataflow::derived_sequence(&f.cfg);
    println!(
        "fn {}: derived sequence {:?} -> {}",
        f.name,
        seq.interval_counts,
        if seq.reducible { "reducible" } else { "IRREDUCIBLE" }
    );
}

fn dataflow(f: &LoweredFunction) -> Result<(), Failure> {
    let pst = ProgramStructureTree::build(&f.cfg);
    let qpg_failure =
        |e: pst_dataflow::QpgError| Failure::Analysis(format!("fn {}: QPG error: {e}", f.name));
    let ctx = QpgContext::new(&f.cfg, &pst).map_err(qpg_failure)?;
    println!(
        "fn {}: per-variable reaching definitions via quick propagation graphs",
        f.name
    );
    for v in 0..f.var_count() {
        let var = VarId::from_index(v);
        let problem = SingleVariableReachingDefs::new(f, var);
        let qpg = ctx.build_from_sites(problem.sites()).map_err(qpg_failure)?;
        let sparse = ctx.solve(&qpg, &problem).map_err(qpg_failure)?;
        let full = solve_iterative(&f.cfg, &problem);
        let ok = if sparse == full { "ok" } else { "MISMATCH" };
        let exit_defs: Vec<String> = sparse
            .value_in(f.cfg.exit())
            .iter()
            .map(|i| format!("{}", problem.sites()[i]))
            .collect();
        println!(
            "  {:>6}: QPG {:>3}/{} nodes, defs reaching exit: [{}] ({ok})",
            f.var_name(var),
            qpg.node_count(),
            f.cfg.node_count(),
            exit_defs.join(", ")
        );
    }
    Ok(())
}
