//! Property tests for the front-end: pretty-printer/parser round trips on
//! arbitrary ASTs, and total lowering for well-formed programs.

use proptest::prelude::*;
use pst_lang::{
    lower_function, parse_program, pretty_program, BinOp, Block, Expr, Function, Program, Stmt,
    UnOp,
};

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords; single letter + digit keeps shrinking pleasant.
    proptest::sample::select(vec!["a", "b", "c", "x", "y", "z", "v1", "v2"])
        .prop_map(str::to_string)
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Num),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                proptest::sample::select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::And,
                    BinOp::Or,
                ]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| match a {
                // Mirror the parser's literal folding.
                Expr::Num(n) => Expr::Num(-n),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            }),
            (ident(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(f, args)| Expr::Call(format!("f{f}"), args)),
        ]
    })
}

fn assign() -> BoxedStrategy<Stmt> {
    (ident(), expr())
        .prop_map(|(target, value)| Stmt::Assign { target, value })
        .boxed()
}

/// Statements; `in_loop` guards break/continue placement so lowering is
/// total.
fn stmt(depth: u32, in_loop: bool) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        return assign();
    }
    let block = |in_loop| {
        proptest::collection::vec(stmt(depth - 1, in_loop), 0..4)
            .prop_map(Block::new)
    };
    let mut options: Vec<BoxedStrategy<Stmt>> = vec![
        assign(),
        (expr()).prop_map(Stmt::Expr).boxed(),
        (expr(), block(in_loop), proptest::option::of(block(in_loop)))
            .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                cond,
                then_branch,
                else_branch,
            })
            .boxed(),
        (expr(), block(true))
            .prop_map(|(cond, body)| Stmt::While { cond, body })
            .boxed(),
        (block(true), expr())
            .prop_map(|(body, cond)| Stmt::DoWhile { body, cond })
            .boxed(),
        // Switch arms may `break` (the switch catches it) but `continue`
        // only when an enclosing loop exists; generating with the
        // *enclosing* context under-generates legal breaks but never
        // generates an illegal continue.
        (
            proptest::collection::vec((0i64..5, block(in_loop)), 1..3),
            proptest::option::of(block(in_loop)),
            expr(),
        )
            .prop_map(|(cases, default, scrutinee)| Stmt::Switch {
                scrutinee,
                cases,
                default,
            })
            .boxed(),
    ];
    if in_loop {
        options.push(Just(Stmt::Break).boxed());
        options.push(Just(Stmt::Continue).boxed());
    }
    proptest::strategy::Union::new(options).boxed()
}

fn function() -> impl Strategy<Value = Function> {
    (
        proptest::collection::vec(ident(), 0..3),
        proptest::collection::vec(stmt(3, false), 0..6),
    )
        .prop_map(|(params, mut stmts)| {
            // Deduplicate parameter names (duplicates are legal but make
            // the round trip comparison awkward? they round trip fine —
            // keep them).
            stmts.push(Stmt::Return(Some(Expr::Num(0))));
            Function {
                name: "p".to_string(),
                params,
                body: Block::new(stmts),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse = identity on arbitrary ASTs.
    #[test]
    fn pretty_parse_roundtrip(f in function()) {
        let program = Program { functions: vec![f] };
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(program, reparsed);
    }

    /// Lowering is total on goto-free programs with well-placed
    /// break/continue, and always yields a valid CFG with the function's
    /// statements preserved somewhere.
    #[test]
    fn lowering_is_total_and_valid(f in function()) {
        let lowered = lower_function(&f).expect("goto-free programs lower");
        prop_assert!(lowered.cfg.node_count() >= 2);
        prop_assert_eq!(lowered.cfg.graph().in_degree(lowered.cfg.entry()), 0);
        prop_assert_eq!(lowered.cfg.graph().out_degree(lowered.cfg.exit()), 0);
        // Reducible: no gotos were generated.
        prop_assert!(pst_cfg::is_reducible(
            lowered.cfg.graph(),
            lowered.cfg.entry(),
            None
        ));
    }
}
