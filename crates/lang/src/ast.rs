//! Abstract syntax of the mini imperative language.
//!
//! The language is deliberately small but covers every control construct
//! the paper's workloads exercise: conditionals, `switch`, three loop
//! forms, `break`/`continue`, `return`, and — crucially for *unstructured*
//! and *irreducible* regions — `goto`/labels.

use std::fmt;

/// A whole translation unit: one or more functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

/// One function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (parameters count as definitions at entry).
    pub params: Vec<String>,
    /// The body.
    pub body: Block,
}

/// A source position: 1-based line and column.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcPos {
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for SrcPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A `{ … }` sequence of statements.
///
/// When produced by the parser, `spans` records the source position of
/// each statement's first token, parallel to `stmts`. Synthetic blocks
/// (generators, tests) may leave it empty; positions are carried for
/// diagnostics only and are deliberately **not** part of the block's
/// structural identity — `PartialEq` compares statements alone, so a
/// parse → pretty → parse round trip is a fixed point even though the
/// reprinted program has different positions.
#[derive(Clone, Debug, Default, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source position per statement (empty when unknown).
    pub spans: Vec<SrcPos>,
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.stmts == other.stmts
    }
}

impl Block {
    /// A block with the given statements and no position information.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block {
            stmts,
            spans: Vec::new(),
        }
    }

    /// Source position of statement `i`, when known.
    pub fn span(&self, i: usize) -> Option<SrcPos> {
        self.spans.get(i).copied()
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `x = e;`
    Assign {
        /// Variable being written.
        target: String,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) { … } else { … }` (else optional).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch.
        else_branch: Option<Block>,
    },
    /// `while (c) { … }`
    While {
        /// Loop condition, tested before each iteration.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { … } while (c);`
    DoWhile {
        /// Loop body, executed at least once.
        body: Block,
        /// Loop condition, tested after each iteration.
        cond: Expr,
    },
    /// `for (x = e1; c; x = e2) { … }`
    For {
        /// Initialization assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step assignment, run after the body.
        step: Box<Stmt>,
        /// Loop body.
        body: Block,
    },
    /// `switch (e) { case k: { … } … default: { … } }`
    ///
    /// Cases do not fall through (each arm is a block).
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// `(constant, arm)` pairs.
        cases: Vec<(i64, Block)>,
        /// Optional default arm.
        default: Option<Block>,
    },
    /// `break;` — exits the innermost loop or switch.
    Break,
    /// `continue;` — next iteration of the innermost loop.
    Continue,
    /// `return;` or `return e;`
    Return(Option<Expr>),
    /// `goto lbl;`
    Goto(String),
    /// `lbl:` — a jump target.
    Label(String),
    /// An expression evaluated for effect, e.g. a call: `f(x);`
    Expr(Expr),
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Binary operators, loosest-binding last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl BinOp {
    /// Binding power (higher binds tighter); used by the parser and the
    /// pretty printer.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    /// Source token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl Expr {
    /// Collects the variables read by this expression, in occurrence
    /// order (duplicates preserved).
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Binary(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Unary(_, a) => a.variables(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn expr_variables_in_order() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Call(
                "f".into(),
                vec![Expr::Var("b".into()), Expr::Num(1)],
            )),
        );
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["a", "b"]);
    }
}
