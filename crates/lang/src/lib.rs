//! Mini imperative language front-end for the Program Structure Tree
//! workspace.
//!
//! The reproduced paper gathered its empirical data by running a FORTRAN
//! front-end over the Perfect Club and SPEC89 suites. This crate plays that
//! role for the synthetic corpus: a small imperative language with
//! conditionals, `switch`, three loop forms, `break`/`continue`, `return`,
//! and `goto` (the source of unstructured and irreducible control flow),
//! compiled down to the block-level CFGs that every analysis in the
//! workspace consumes.
//!
//! Pipeline: [`parse_program`] → [`ast`] → [`lower_function`] →
//! [`LoweredFunction`] (a [`pst_cfg::Cfg`] plus per-block def/use tables).
//! [`pretty_program`] inverts parsing, which the workload generator uses to
//! emit its corpus as real source text.
//!
//! # Examples
//!
//! ```
//! use pst_lang::{parse_program, lower_function};
//! let src = "fn sum(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }";
//! let program = parse_program(src).unwrap();
//! let lowered = lower_function(&program.functions[0]).unwrap();
//! let s = lowered.var_id("s").unwrap();
//! assert_eq!(lowered.definition_sites(s).len(), 2); // s = 0 and s = s + n
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
mod lower;
mod parser;
mod pretty;

pub use ast::{BinOp, Block, Expr, Function, Program, SrcPos, Stmt, UnOp};
pub use lower::{
    lower_function, lower_program, BlockInfo, LowerError, LoweredFunction, StmtInfo, VarId,
};
pub use parser::{parse_function_body, parse_program, ParseError};
pub use pretty::{pretty_expr, pretty_function, pretty_program, stmt_head};
