//! Pretty printer: AST back to parseable source text.
//!
//! The printer and parser round-trip (`parse(print(ast)) == ast`), which
//! the workload generator relies on to emit its synthetic corpus as real
//! source files.

use std::fmt::Write as _;

use crate::ast::{Block, Expr, Function, Program, Stmt, UnOp};

/// Renders a whole program.
///
/// # Examples
///
/// ```
/// let src = "fn f(x) { return x; }";
/// let p = pst_lang::parse_program(src).unwrap();
/// let printed = pst_lang::pretty_program(&p);
/// let reparsed = pst_lang::parse_program(&printed).unwrap();
/// assert_eq!(p, reparsed);
/// ```
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&pretty_function(f));
    }
    out
}

/// Renders one function.
pub fn pretty_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = write!(out, "fn {}({}) ", f.name, f.params.join(", "));
    pretty_block(&f.body, 0, &mut out);
    out.push('\n');
    out
}

fn pretty_block(b: &Block, indent: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        pretty_stmt(s, indent + 1, out);
    }
    out.push_str(&"  ".repeat(indent));
    out.push('}');
}

fn pretty_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign { .. } => {
            let _ = writeln!(out, "{pad}{};", stmt_head(s));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = write!(out, "{pad}if ({}) ", pretty_expr(cond));
            pretty_block(then_branch, indent, out);
            if let Some(e) = else_branch {
                out.push_str(" else ");
                pretty_block(e, indent, out);
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "{pad}while ({}) ", pretty_expr(cond));
            pretty_block(body, indent, out);
            out.push('\n');
        }
        Stmt::DoWhile { body, cond } => {
            let _ = write!(out, "{pad}do ");
            pretty_block(body, indent, out);
            let _ = writeln!(out, " while ({});", pretty_expr(cond));
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let _ = write!(
                out,
                "{pad}for ({}; {}; {}) ",
                stmt_head(init),
                pretty_expr(cond),
                stmt_head(step)
            );
            pretty_block(body, indent, out);
            out.push('\n');
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            let _ = writeln!(out, "{pad}switch ({}) {{", pretty_expr(scrutinee));
            for (k, b) in cases {
                let _ = write!(out, "{pad}  case {k}: ");
                pretty_block(b, indent + 1, out);
                out.push('\n');
            }
            if let Some(b) = default {
                let _ = write!(out, "{pad}  default: ");
                pretty_block(b, indent + 1, out);
                out.push('\n');
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", pretty_expr(e));
        }
        Stmt::Goto(l) => {
            let _ = writeln!(out, "{pad}goto {l};");
        }
        Stmt::Label(l) => {
            let _ = writeln!(out, "{pad}{l}:");
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", pretty_expr(e));
        }
    }
}

/// One-line rendering of a simple statement (assignments, used in `for`
/// headers and in CFG block dumps).
pub fn stmt_head(s: &Stmt) -> String {
    match s {
        Stmt::Assign { target, value } => format!("{target} = {}", pretty_expr(value)),
        Stmt::Expr(e) => pretty_expr(e),
        Stmt::Return(Some(e)) => format!("return {}", pretty_expr(e)),
        Stmt::Return(None) => "return".to_string(),
        other => format!("{other:?}"),
    }
}

/// Renders an expression with minimal parentheses.
pub fn pretty_expr(e: &Expr) -> String {
    render_expr(e, 0)
}

fn render_expr(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Num(n) => {
            if *n < 0 {
                format!("({n})")
            } else {
                n.to_string()
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", render_expr(a, 7))
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            // Left associative: the right child needs parens at equal
            // precedence.
            let s = format!(
                "{} {} {}",
                render_expr(a, prec),
                op.symbol(),
                render_expr(b, prec + 1)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(|a| render_expr(a, 0)).collect();
            format!("{f}({})", rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_function_body, parse_program};

    fn roundtrip(src: &str) {
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        let again = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(p, again, "--- printed ---\n{printed}");
    }

    #[test]
    fn roundtrips_simple_function() {
        roundtrip("fn f(a, b) { c = a + b; return c; }");
    }

    #[test]
    fn roundtrips_all_statements() {
        roundtrip(
            "fn g(n) {
                s = 0;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
                }
                while (s > 10) { s = s / 2; }
                do { s = s + 1; } while (s < 3);
                switch (s) { case 0: { s = 1; } case 1: { } default: { s = 9; } }
                top:
                s = s - 1;
                if (s > 0) { goto top; }
                h(s);
                return s;
            }",
        );
    }

    #[test]
    fn roundtrips_tricky_expressions() {
        roundtrip("fn f(a, b, c) { x = (a + b) * c; y = a - (b - c); z = -a + !b; w = a < b == (c > 1); v = f(a, g(b), (-1)); return x + y + z + w + v; }");
    }

    #[test]
    fn roundtrips_break_continue() {
        roundtrip(
            "fn f(n) { while (n > 0) { if (n == 3) { break; } if (n == 5) { continue; } n = n - 1; } return n; }",
        );
    }

    #[test]
    fn minimal_parentheses() {
        let f = parse_function_body("x = a + b * c;").unwrap();
        match &f.body.stmts[0] {
            crate::ast::Stmt::Assign { value, .. } => {
                assert_eq!(pretty_expr(value), "a + b * c");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parenthesizes_when_needed() {
        let f = parse_function_body("x = (a + b) * c;").unwrap();
        match &f.body.stmts[0] {
            crate::ast::Stmt::Assign { value, .. } => {
                assert_eq!(pretty_expr(value), "(a + b) * c");
            }
            _ => unreachable!(),
        }
    }
}
