//! Recursive-descent parser for the mini language.

use std::error::Error;
use std::fmt;

use crate::ast::{BinOp, Block, Expr, Function, Program, SrcPos, Stmt, UnOp};
use crate::lexer::{lex, Keyword, LexError, Spanned, Token};

/// A syntax error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a whole program (one or more `fn` definitions).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// let src = "fn main(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }";
/// let program = pst_lang::parse_program(src).unwrap();
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].name, "main");
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let _span = pst_obs::Span::enter("parse");
    pst_obs::counter!("source_bytes_parsed", source.len());
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while !p.at_eof() {
        functions.push(p.function()?);
    }
    if functions.is_empty() {
        return Err(p.error("expected at least one function"));
    }
    Ok(Program { functions })
}

/// Parses a single function body given as a bare statement list (test and
/// generator convenience: wraps the source in `fn f() { … }`).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_function_body(source: &str) -> Result<Function, ParseError> {
    let wrapped = format!("fn f() {{ {source} }}");
    let mut program = parse_program(&wrapped)?;
    Ok(program.functions.remove(0))
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let s = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        ParseError {
            message: message.into(),
            line: s.line,
            col: s.col,
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found `{}`", self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if matches!(self.peek(), Token::Keyword(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{k:?}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.expect_keyword(Keyword::Fn)?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    /// Source position of the token about to be consumed.
    fn src_pos(&self) -> SrcPos {
        let s = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        SrcPos {
            line: s.line,
            col: s.col,
        }
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        let mut spans = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.error("unterminated block"));
            }
            spans.push(self.src_pos());
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts, spans })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let target = self.ident()?;
        self.expect_punct("=")?;
        let value = self.expr()?;
        Ok(Stmt::Assign { target, value })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_branch = self.block()?;
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    // `else if …` sugar: wrap the chained conditional in a
                    // single-statement block.
                    if matches!(self.peek(), Token::Keyword(Keyword::If)) {
                        let pos = self.src_pos();
                        let chained = self.stmt()?;
                        Some(Block {
                            stmts: vec![chained],
                            spans: vec![pos],
                        })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Token::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Token::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.block()?;
                self.expect_keyword(Keyword::While)?;
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Token::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct("(")?;
                let init = self.assign_stmt()?;
                self.expect_punct(";")?;
                let cond = self.expr()?;
                self.expect_punct(";")?;
                let step = self.assign_stmt()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    cond,
                    step: Box::new(step),
                    body,
                })
            }
            Token::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct("(")?;
                let scrutinee = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct("{")?;
                let mut cases = Vec::new();
                let mut default = None;
                while !self.eat_punct("}") {
                    if self.eat_keyword(Keyword::Case) {
                        let neg = self.eat_punct("-");
                        let k = match self.bump() {
                            Token::Num(n) => {
                                if neg {
                                    -n
                                } else {
                                    n
                                }
                            }
                            other => {
                                return Err(
                                    self.error(format!("expected case constant, found `{other}`"))
                                )
                            }
                        };
                        self.expect_punct(":")?;
                        cases.push((k, self.block()?));
                    } else if self.eat_keyword(Keyword::Default) {
                        self.expect_punct(":")?;
                        if default.is_some() {
                            return Err(self.error("duplicate default arm"));
                        }
                        default = Some(self.block()?);
                    } else {
                        return Err(self.error(format!(
                            "expected `case` or `default`, found `{}`",
                            self.peek()
                        )));
                    }
                }
                Ok(Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                })
            }
            Token::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Token::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            Token::Keyword(Keyword::Return) => {
                self.bump();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::Keyword(Keyword::Goto) => {
                self.bump();
                let l = self.ident()?;
                self.expect_punct(";")?;
                Ok(Stmt::Goto(l))
            }
            Token::Ident(name) => {
                // Could be `x = e;`, `lbl:`, or an expression statement
                // like `f(x);`.
                if matches!(
                    self.tokens.get(self.pos + 1).map(|s| &s.token),
                    Some(Token::Punct(":"))
                ) {
                    self.bump();
                    self.bump();
                    return Ok(Stmt::Label(name));
                }
                if matches!(
                    self.tokens.get(self.pos + 1).map(|s| &s.token),
                    Some(Token::Punct("="))
                ) {
                    let s = self.assign_stmt()?;
                    self.expect_punct(";")?;
                    return Ok(s);
                }
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
            // Expression statements can also start with a literal, a
            // parenthesis, or a unary operator.
            Token::Num(_) | Token::Punct("(") | Token::Punct("-") | Token::Punct("!") => {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
            other => Err(self.error(format!("expected statement, found `{other}`"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(0)
    }

    fn peek_binop(&self) -> Option<BinOp> {
        let Token::Punct(p) = self.peek() else {
            return None;
        };
        Some(match *p {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Mod,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "==" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "&&" => BinOp::And,
            "||" => BinOp::Or,
            _ => return None,
        })
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // Left associative: require strictly higher precedence on the
            // right.
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            // Fold negated literals so `-3` is a single `Num(-3)` node:
            // keeps printer/parser round-trips exact.
            return Ok(match self.unary_expr()? {
                Expr::Num(n) => Expr::Num(-n),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Token::Ident(name) => {
                self.bump();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Token::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_function() {
        let p = parse_program(
            "fn f(a, b) { c = a + b * 2; if (c > 0) { c = c - 1; } else { c = 0; } return c; }",
        )
        .unwrap();
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        assert_eq!(p.functions[0].body.stmts.len(), 3);
    }

    #[test]
    fn precedence_is_respected() {
        let f = parse_function_body("x = 1 + 2 * 3;").unwrap();
        match &f.body.stmts[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected tree {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let f = parse_function_body("x = 1 - 2 - 3;").unwrap();
        match &f.body.stmts[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary(BinOp::Sub, lhs, _) => {
                    assert!(matches!(**lhs, Expr::Binary(BinOp::Sub, _, _)));
                }
                other => panic!("unexpected tree {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_all_loop_forms() {
        let f = parse_function_body(
            "while (x) { x = x - 1; } do { y = y + 1; } while (y < 3); for (i = 0; i < 9; i = i + 1) { s = s + i; }",
        )
        .unwrap();
        assert!(matches!(f.body.stmts[0], Stmt::While { .. }));
        assert!(matches!(f.body.stmts[1], Stmt::DoWhile { .. }));
        assert!(matches!(f.body.stmts[2], Stmt::For { .. }));
    }

    #[test]
    fn parses_switch() {
        let f = parse_function_body(
            "switch (x) { case 0: { y = 1; } case -2: { y = 2; } default: { y = 3; } }",
        )
        .unwrap();
        match &f.body.stmts[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[1].0, -2);
                assert!(default.is_some());
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_goto_and_labels() {
        let f = parse_function_body("top: x = x + 1; if (x < 3) { goto top; } return x;").unwrap();
        assert!(matches!(f.body.stmts[0], Stmt::Label(_)));
        match &f.body.stmts[2] {
            Stmt::If { then_branch, .. } => {
                assert!(matches!(then_branch.stmts[0], Stmt::Goto(_)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_calls_and_unary() {
        let f = parse_function_body("x = -f(a, b + 1) + !g();").unwrap();
        assert!(matches!(f.body.stmts[0], Stmt::Assign { .. }));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_function_body("x = 1").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn error_on_bad_case_token() {
        let err = parse_function_body("switch (x) { case y: { } }").unwrap_err();
        assert!(err.message.contains("case constant"), "{err}");
    }

    #[test]
    fn error_on_unterminated_block() {
        let err = parse_program("fn f() { x = 1;").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn error_has_position() {
        let err = parse_program("fn f() {\n  x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}

#[cfg(test)]
mod else_if_tests {
    use super::*;
    use crate::ast::Stmt;

    #[test]
    fn else_if_chains_parse() {
        let f = parse_function_body(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } return x;",
        )
        .unwrap();
        let Stmt::If { else_branch, .. } = &f.body.stmts[0] else {
            panic!("expected if");
        };
        let chained = &else_branch.as_ref().unwrap().stmts[0];
        assert!(matches!(chained, Stmt::If { .. }));
    }

    #[test]
    fn else_if_lowers_and_analyzes() {
        let f = parse_function_body(
            "if (a) { x = 1; } else if (b) { x = 2; } else if (c) { x = 3; } else { x = 4; } return x;",
        )
        .unwrap();
        let l = crate::lower_function(&f).unwrap();
        assert!(l.cfg.node_count() >= 8);
    }
}
