//! Lowering the AST to a basic-block control flow graph.
//!
//! Each function becomes a [`pst_cfg::Cfg`] whose nodes carry
//! [`BlockInfo`] side data: the straight-line statements of the block with
//! their definitions and uses, plus the variables read by the block's
//! terminating branch. This plays the role of the paper's block-level CFG
//! front-end (they used Dennis Gannon's Sigma FORTRAN front-end); SSA
//! construction and data-flow analysis consume the def/use information.
//!
//! Unreachable code (after `return`/`goto`/`break`) and code that cannot
//! reach the exit (e.g. a `goto` spin loop on a conditional path) is pruned
//! so the result always satisfies the CFG validity invariants — the paper's
//! Definition 1 assumes every node lies on an entry→exit path.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pst_cfg::{Cfg, CfgBuilder, NodeId, ValidateCfgError};

use crate::ast::{Block, Expr, Function, Program, SrcPos, Stmt};
use crate::pretty::{pretty_expr, stmt_head};

/// Interned variable identifier, dense per function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from a dense index.
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index overflows u32"))
    }

    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One straight-line statement inside a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StmtInfo {
    /// Variable defined (written), if any.
    pub def: Option<VarId>,
    /// Variables used (read), in occurrence order.
    pub uses: Vec<VarId>,
    /// Source rendering, for dumps and examples.
    pub text: String,
    /// Canonical key of the right-hand side when it is a *pure*,
    /// non-trivial expression (no calls, at least one operator) — the
    /// expression identity used by available/very-busy expression
    /// analyses. `None` otherwise.
    pub expr_key: Option<String>,
    /// Source position of the statement's first token, when the AST came
    /// from the parser (`None` for synthetic statements such as the
    /// implicit `param` definitions or generator output).
    pub pos: Option<SrcPos>,
}

/// Per-basic-block side information.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockInfo {
    /// The block's statements in execution order.
    pub stmts: Vec<StmtInfo>,
    /// Variables read by the branch condition that terminates the block
    /// (empty for unconditional blocks).
    pub branch_uses: Vec<VarId>,
    /// Source position of the branching statement (`if`/`while`/…) whose
    /// condition terminates this block, when known.
    pub branch_pos: Option<SrcPos>,
}

/// A function lowered to a CFG with def/use side tables.
#[derive(Clone, Debug)]
pub struct LoweredFunction {
    /// Function name.
    pub name: String,
    /// The control flow graph.
    pub cfg: Cfg,
    /// Side data per CFG node (indexed by `NodeId::index`).
    pub blocks: Vec<BlockInfo>,
    /// Variable names (indexed by `VarId::index`).
    pub vars: Vec<String>,
}

impl LoweredFunction {
    /// Number of variables in the function.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()]
    }

    /// Looks a variable up by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|n| n == name)
            .map(VarId::from_index)
    }

    /// Nodes containing at least one definition of `v`, sorted.
    pub fn definition_sites(&self, v: VarId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.stmts.iter().any(|s| s.def == Some(v)))
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether block `node` reads `v` (in a statement or its branch).
    pub fn block_uses(&self, node: NodeId, v: VarId) -> bool {
        let b = &self.blocks[node.index()];
        b.branch_uses.contains(&v) || b.stmts.iter().any(|s| s.uses.contains(&v))
    }

    /// Whether block `node` writes `v`.
    pub fn block_defines(&self, node: NodeId, v: VarId) -> bool {
        self.blocks[node.index()]
            .stmts
            .iter()
            .any(|s| s.def == Some(v))
    }

    /// Total number of statements across all blocks (the paper's
    /// statement-level size measure for QPGs).
    pub fn statement_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }
}

/// Why lowering failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// `goto` to a label that is never declared.
    UndefinedLabel(String),
    /// The same label declared twice.
    DuplicateLabel(String),
    /// `break` outside any loop or switch.
    BreakOutsideLoop,
    /// `continue` outside any loop.
    ContinueOutsideLoop,
    /// After pruning, the entry cannot reach the exit (e.g. the body is an
    /// unconditional infinite `goto` cycle).
    NoPathToExit,
    /// The produced graph failed CFG validation (internal error).
    Validate(ValidateCfgError),
    /// Lowering bookkeeping broke an internal invariant (a bug in the
    /// lowerer, not in the input) — reported instead of panicking so a
    /// front-end driver can contain it per function.
    Internal(&'static str),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UndefinedLabel(l) => write!(f, "goto to undefined label `{l}`"),
            LowerError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            LowerError::BreakOutsideLoop => write!(f, "break outside loop or switch"),
            LowerError::ContinueOutsideLoop => write!(f, "continue outside loop"),
            LowerError::NoPathToExit => write!(f, "function body cannot reach the exit"),
            LowerError::Validate(e) => write!(f, "invalid control flow graph: {e}"),
            LowerError::Internal(what) => write!(f, "internal lowering invariant broken: {what}"),
        }
    }
}

impl Error for LowerError {}

/// Canonical identity of a pure, non-trivial expression (the fact unit of
/// available/very-busy expression analyses): the minimally-parenthesized
/// source rendering. Calls are impure and literals/bare variables are
/// trivial, so they key to `None`.
fn expr_key(e: &Expr) -> Option<String> {
    fn pure(e: &Expr) -> bool {
        match e {
            Expr::Num(_) | Expr::Var(_) => true,
            Expr::Unary(_, a) => pure(a),
            Expr::Binary(_, a, b) => pure(a) && pure(b),
            Expr::Call(..) => false,
        }
    }
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Call(..) => None,
        _ if pure(e) => Some(pretty_expr(e)),
        _ => None,
    }
}

/// Lowers every function of a program.
///
/// # Errors
///
/// Returns the first [`LowerError`] encountered.
pub fn lower_program(p: &Program) -> Result<Vec<LoweredFunction>, LowerError> {
    p.functions.iter().map(lower_function).collect()
}

/// Lowers one function to a CFG.
///
/// # Errors
///
/// See [`LowerError`].
///
/// # Examples
///
/// ```
/// let f = pst_lang::parse_program("fn f(n) { while (n > 0) { n = n - 1; } return n; }")
///     .unwrap();
/// let lowered = pst_lang::lower_function(&f.functions[0]).unwrap();
/// // entry block, loop header, body, return block, exit
/// assert!(lowered.cfg.node_count() >= 5);
/// assert_eq!(lowered.var_name(lowered.var_id("n").unwrap()), "n");
/// ```
pub fn lower_function(f: &Function) -> Result<LoweredFunction, LowerError> {
    let _span = pst_obs::Span::enter("lower");
    pst_obs::counter!("functions_lowered");
    let mut lo = Lowerer::new();
    // Parameters are definitions at the entry block.
    for p in &f.params {
        let v = lo.var(p);
        let cur = lo.current;
        lo.staging[cur].info.stmts.push(StmtInfo {
            def: Some(v),
            uses: Vec::new(),
            text: format!("param {p}"),
            expr_key: None,
            pos: None,
        });
    }
    lo.lower_block(&f.body)?;
    // Implicit return at the end of the body.
    let cur = lo.current;
    lo.edge(cur, EXIT);
    lo.finish(f.name.clone())
}

/// Staging-block index of the synthetic exit.
const EXIT: usize = 1;

#[derive(Default)]
struct StagingBlock {
    info: BlockInfo,
    succs: Vec<usize>,
}

struct Lowerer {
    staging: Vec<StagingBlock>,
    current: usize,
    vars: Vec<String>,
    var_index: HashMap<String, VarId>,
    labels: HashMap<String, usize>,
    defined_labels: HashMap<String, bool>,
    break_stack: Vec<usize>,
    continue_stack: Vec<usize>,
}

impl Lowerer {
    fn new() -> Self {
        let mut lo = Lowerer {
            staging: Vec::new(),
            current: 0,
            vars: Vec::new(),
            var_index: HashMap::new(),
            labels: HashMap::new(),
            defined_labels: HashMap::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
        };
        lo.new_block(); // 0 = entry
        lo.new_block(); // 1 = exit
        lo.current = 0;
        lo
    }

    fn new_block(&mut self) -> usize {
        self.staging.push(StagingBlock::default());
        self.staging.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.staging[from].succs.push(to);
    }

    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_index.get(name) {
            return v;
        }
        let v = VarId::from_index(self.vars.len());
        self.vars.push(name.to_string());
        self.var_index.insert(name.to_string(), v);
        v
    }

    fn uses_of(&mut self, e: &Expr) -> Vec<VarId> {
        let mut names = Vec::new();
        e.variables(&mut names);
        let mut out = Vec::new();
        for n in names {
            let v = self.var(&n);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    fn label_block(&mut self, name: &str) -> usize {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.new_block();
        self.labels.insert(name.to_string(), b);
        b
    }

    fn lower_block(&mut self, b: &Block) -> Result<(), LowerError> {
        for (i, s) in b.stmts.iter().enumerate() {
            self.lower_stmt(s, b.span(i))?;
        }
        Ok(())
    }

    /// After an unconditional jump, subsequent statements fall into a fresh
    /// (so far unreachable) block; it gets pruned unless a label resurrects
    /// the flow.
    fn orphan(&mut self) {
        self.current = self.new_block();
    }

    fn lower_stmt(&mut self, s: &Stmt, pos: Option<SrcPos>) -> Result<(), LowerError> {
        match s {
            Stmt::Assign { target, value } => {
                let uses = self.uses_of(value);
                let def = self.var(target);
                let cur = self.current;
                self.staging[cur].info.stmts.push(StmtInfo {
                    def: Some(def),
                    uses,
                    text: stmt_head(s),
                    expr_key: expr_key(value),
                    pos,
                });
                Ok(())
            }
            Stmt::Expr(e) => {
                let uses = self.uses_of(e);
                let cur = self.current;
                self.staging[cur].info.stmts.push(StmtInfo {
                    def: None,
                    uses,
                    text: pretty_expr(e),
                    expr_key: expr_key(e),
                    pos,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                // The condition gets its own block: the paper's block-level
                // CFG keeps switch operators separate from merge operators,
                // which is what gives sequential conditionals their SESE
                // boundary edges.
                let uses = self.uses_of(cond);
                let prev = self.current;
                let cur = self.new_block();
                self.edge(prev, cur);
                self.staging[cur].info.branch_uses = uses;
                self.staging[cur].info.branch_pos = pos;
                let then_b = self.new_block();
                let join = self.new_block();
                self.edge(cur, then_b);
                self.current = then_b;
                self.lower_block(then_branch)?;
                let end_then = self.current;
                self.edge(end_then, join);
                match else_branch {
                    Some(eb) => {
                        let else_b = self.new_block();
                        self.edge(cur, else_b);
                        self.current = else_b;
                        self.lower_block(eb)?;
                        let end_else = self.current;
                        self.edge(end_else, join);
                    }
                    None => self.edge(cur, join),
                }
                self.current = join;
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                let cur = self.current;
                self.edge(cur, header);
                let uses = self.uses_of(cond);
                self.staging[header].info.branch_uses = uses;
                self.staging[header].info.branch_pos = pos;
                self.edge(header, body_b);
                self.edge(header, after);
                self.break_stack.push(after);
                self.continue_stack.push(header);
                self.current = body_b;
                self.lower_block(body)?;
                let end = self.current;
                self.edge(end, header);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.current = after;
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let latch = self.new_block();
                let after = self.new_block();
                let cur = self.current;
                self.edge(cur, body_b);
                self.break_stack.push(after);
                self.continue_stack.push(latch);
                self.current = body_b;
                self.lower_block(body)?;
                let end = self.current;
                self.edge(end, latch);
                let uses = self.uses_of(cond);
                self.staging[latch].info.branch_uses = uses;
                self.staging[latch].info.branch_pos = pos;
                self.edge(latch, body_b);
                self.edge(latch, after);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.current = after;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.lower_stmt(init, pos)?;
                let header = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let after = self.new_block();
                let cur = self.current;
                self.edge(cur, header);
                let uses = self.uses_of(cond);
                self.staging[header].info.branch_uses = uses;
                self.staging[header].info.branch_pos = pos;
                self.edge(header, body_b);
                self.edge(header, after);
                self.break_stack.push(after);
                self.continue_stack.push(step_b);
                self.current = body_b;
                self.lower_block(body)?;
                let end = self.current;
                self.edge(end, step_b);
                self.current = step_b;
                self.lower_stmt(step, pos)?;
                let end_step = self.current;
                self.edge(end_step, header);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.current = after;
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                // Fresh block for the switch operator (see `Stmt::If`).
                let uses = self.uses_of(scrutinee);
                let prev = self.current;
                let cur = self.new_block();
                self.edge(prev, cur);
                self.staging[cur].info.branch_uses = uses;
                self.staging[cur].info.branch_pos = pos;
                let join = self.new_block();
                self.break_stack.push(join);
                for (_, arm) in cases {
                    let arm_b = self.new_block();
                    self.edge(cur, arm_b);
                    self.current = arm_b;
                    self.lower_block(arm)?;
                    let end = self.current;
                    self.edge(end, join);
                }
                match default {
                    Some(arm) => {
                        let arm_b = self.new_block();
                        self.edge(cur, arm_b);
                        self.current = arm_b;
                        self.lower_block(arm)?;
                        let end = self.current;
                        self.edge(end, join);
                    }
                    None => self.edge(cur, join),
                }
                self.break_stack.pop();
                self.current = join;
                Ok(())
            }
            Stmt::Break => {
                let target = *self
                    .break_stack
                    .last()
                    .ok_or(LowerError::BreakOutsideLoop)?;
                let cur = self.current;
                self.edge(cur, target);
                self.orphan();
                Ok(())
            }
            Stmt::Continue => {
                let target = *self
                    .continue_stack
                    .last()
                    .ok_or(LowerError::ContinueOutsideLoop)?;
                let cur = self.current;
                self.edge(cur, target);
                self.orphan();
                Ok(())
            }
            Stmt::Return(e) => {
                let (uses, text) = match e {
                    Some(e) => (self.uses_of(e), format!("return {}", pretty_expr(e))),
                    None => (Vec::new(), "return".to_string()),
                };
                let cur = self.current;
                self.staging[cur].info.stmts.push(StmtInfo {
                    def: None,
                    uses,
                    text,
                    expr_key: None,
                    pos,
                });
                self.edge(cur, EXIT);
                self.orphan();
                Ok(())
            }
            Stmt::Goto(l) => {
                let target = self.label_block(l);
                let cur = self.current;
                self.edge(cur, target);
                self.orphan();
                Ok(())
            }
            Stmt::Label(l) => {
                if self.defined_labels.insert(l.clone(), true).is_some() {
                    return Err(LowerError::DuplicateLabel(l.clone()));
                }
                let b = self.label_block(l);
                let cur = self.current;
                self.edge(cur, b);
                self.current = b;
                Ok(())
            }
        }
    }

    fn finish(self, name: String) -> Result<LoweredFunction, LowerError> {
        // Any referenced-but-never-defined label is an error.
        for l in self.labels.keys() {
            if !self.defined_labels.contains_key(l) {
                return Err(LowerError::UndefinedLabel(l.clone()));
            }
        }
        let n = self.staging.len();
        // Reachability from the entry.
        let mut fwd = vec![false; n];
        let mut stack = vec![0usize];
        fwd[0] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.staging[v].succs {
                if !fwd[s] {
                    fwd[s] = true;
                    stack.push(s);
                }
            }
        }
        // Reverse reachability to the exit.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, b) in self.staging.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(v);
            }
        }
        let mut bwd = vec![false; n];
        let mut stack = vec![EXIT];
        bwd[EXIT] = true;
        while let Some(v) = stack.pop() {
            for &p in &preds[v] {
                if !bwd[p] {
                    bwd[p] = true;
                    stack.push(p);
                }
            }
        }
        let keep: Vec<bool> = (0..n).map(|i| fwd[i] && bwd[i]).collect();
        if !keep[0] {
            return Err(LowerError::NoPathToExit);
        }

        // Emit the pruned CFG.
        let mut builder = CfgBuilder::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; n];
        let mut blocks = Vec::new();
        for i in 0..n {
            if keep[i] {
                remap[i] = Some(builder.add_node());
                blocks.push(self.staging[i].info.clone());
            }
        }
        for i in 0..n {
            let Some(from) = remap[i] else { continue };
            for &s in &self.staging[i].succs {
                if let Some(to) = remap[s] {
                    builder.add_edge(from, to);
                }
            }
        }
        // `keep[0]` was tested above and EXIT seeds the backward sweep, so
        // these lookups cannot fail unless the pruning bookkeeping is buggy
        // — surface that as an error, not a panic.
        let entry = remap[0].ok_or(LowerError::Internal("entry pruned from its own CFG"))?;
        let exit = remap[EXIT].ok_or(LowerError::Internal("exit pruned from its own CFG"))?;
        let cfg = builder.finish(entry, exit).map_err(LowerError::Validate)?;
        Ok(LoweredFunction {
            name,
            cfg,
            blocks,
            vars: self.vars,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_body;

    fn lower(src: &str) -> LoweredFunction {
        let f = parse_function_body(src).unwrap();
        lower_function(&f).unwrap()
    }

    #[test]
    fn straight_line_two_blocks() {
        let l = lower("x = 1; y = x + 2; return y;");
        // entry block with all three statements + exit
        assert_eq!(l.cfg.node_count(), 2);
        assert_eq!(l.blocks[l.cfg.entry().index()].stmts.len(), 3);
        assert_eq!(l.statement_count(), 3);
    }

    #[test]
    fn if_else_diamond() {
        let l = lower("if (c) { x = 1; } else { x = 2; } return x;");
        // entry, cond, then, else, join, exit
        assert_eq!(l.cfg.node_count(), 6);
        let cond = l.cfg.graph().successors(l.cfg.entry()).next().unwrap();
        assert_eq!(l.cfg.graph().out_degree(cond), 2);
        let c = l.var_id("c").unwrap();
        assert!(l.block_uses(cond, c));
    }

    #[test]
    fn while_loop_shape() {
        let l = lower("while (n > 0) { n = n - 1; } return n;");
        // entry, header, body, after, exit
        assert_eq!(l.cfg.node_count(), 5);
        let n = l.var_id("n").unwrap();
        assert_eq!(l.definition_sites(n).len(), 1);
        // Loop creates a cycle.
        assert!(
            !pst_cfg::is_reducible(l.cfg.graph(), l.cfg.entry(), None) || {
                // reducible is fine; just confirm a backedge exists
                true
            }
        );
        let dfs = pst_cfg::Dfs::new(l.cfg.graph(), l.cfg.entry());
        assert!(l
            .cfg
            .graph()
            .edges()
            .any(|e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back)));
    }

    #[test]
    fn do_while_executes_body_first() {
        let l = lower("do { n = n - 1; } while (n > 0); return n;");
        // entry -> body unconditionally.
        assert_eq!(l.cfg.graph().out_degree(l.cfg.entry()), 1);
    }

    #[test]
    fn for_loop_has_step_block() {
        let l = lower("for (i = 0; i < 9; i = i + 1) { s = s + i; } return s;");
        let i = l.var_id("i").unwrap();
        // i defined in init (entry block) and in the step block.
        assert_eq!(l.definition_sites(i).len(), 2);
    }

    #[test]
    fn switch_fanout() {
        let l = lower(
            "switch (x) { case 0: { y = 1; } case 1: { y = 2; } default: { y = 3; } } return y;",
        );
        let sw = l.cfg.graph().successors(l.cfg.entry()).next().unwrap();
        assert_eq!(l.cfg.graph().out_degree(sw), 3);
    }

    #[test]
    fn switch_without_default_edges_to_join() {
        let l = lower("switch (x) { case 0: { y = 1; } } return y;");
        let sw = l.cfg.graph().successors(l.cfg.entry()).next().unwrap();
        assert_eq!(l.cfg.graph().out_degree(sw), 2);
    }

    #[test]
    fn break_and_continue_edges() {
        let l = lower("while (a) { if (b) { break; } if (c) { continue; } x = 1; } return x;");
        // Valid CFG already implies the edges landed somewhere sensible.
        assert!(l.cfg.node_count() >= 7);
    }

    #[test]
    fn unreachable_code_is_pruned() {
        let l = lower("return 1; x = 2;");
        // the `x = 2` block disappears
        assert_eq!(l.cfg.node_count(), 2);
        assert!(l.var_id("x").is_some()); // the variable was interned though
    }

    #[test]
    fn goto_backward_makes_loop() {
        let l = lower("top: x = x + 1; if (x < 10) { goto top; } return x;");
        let dfs = pst_cfg::Dfs::new(l.cfg.graph(), l.cfg.entry());
        assert!(l
            .cfg
            .graph()
            .edges()
            .any(|e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back)));
    }

    #[test]
    fn goto_can_create_irreducible_cfg() {
        let l = lower(
            "if (c) { goto b; }
             a: x = x + 1; goto c;
             b: x = x - 1;
             c: if (x > 0) { goto a; }
             return x;",
        );
        assert!(!pst_cfg::is_reducible(l.cfg.graph(), l.cfg.entry(), None));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let f = parse_function_body("goto nowhere; return 1;").unwrap();
        assert_eq!(
            lower_function(&f).unwrap_err(),
            LowerError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let f = parse_function_body("l: x = 1; l: x = 2; return x;").unwrap();
        assert_eq!(
            lower_function(&f).unwrap_err(),
            LowerError::DuplicateLabel("l".into())
        );
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let f = parse_function_body("break;").unwrap();
        assert_eq!(
            lower_function(&f).unwrap_err(),
            LowerError::BreakOutsideLoop
        );
    }

    #[test]
    fn infinite_goto_cycle_is_an_error() {
        let f = parse_function_body("l: goto l;").unwrap();
        assert_eq!(lower_function(&f).unwrap_err(), LowerError::NoPathToExit);
    }

    #[test]
    fn conditional_spin_loop_is_pruned() {
        let l = lower("if (c) { l: goto l; } x = 1; return x;");
        // The spin block vanishes; the branch keeps only the fallthrough.
        for node in l.cfg.graph().nodes() {
            assert!(l.cfg.graph().out_degree(node) >= 1 || node == l.cfg.exit());
        }
    }

    #[test]
    fn params_are_entry_definitions() {
        let f = crate::parser::parse_program("fn f(a, b) { return a + b; }").unwrap();
        let l = lower_function(&f.functions[0]).unwrap();
        let a = l.var_id("a").unwrap();
        assert_eq!(l.definition_sites(a), vec![l.cfg.entry()]);
    }

    #[test]
    fn label_without_goto_is_fine() {
        let l = lower("l: x = 1; return x;");
        assert!(l.cfg.node_count() >= 2);
    }
}

#[cfg(test)]
mod expr_key_tests {
    use super::*;
    use crate::parser::parse_function_body;

    fn keys(src: &str) -> Vec<Option<String>> {
        let f = parse_function_body(src).unwrap();
        let l = lower_function(&f).unwrap();
        l.blocks
            .iter()
            .flat_map(|b| b.stmts.iter().map(|s| s.expr_key.clone()))
            .collect()
    }

    #[test]
    fn pure_binary_expressions_get_keys() {
        let k = keys("x = a + b; y = a + b; return x;");
        assert_eq!(k[0].as_deref(), Some("a + b"));
        assert_eq!(k[0], k[1], "same expression, same key");
    }

    #[test]
    fn trivial_and_impure_rhs_have_no_key() {
        let k = keys("x = 5; y = a; z = f(a + b); return z;");
        assert!(k.iter().take(3).all(|e| e.is_none()), "{k:?}");
    }

    #[test]
    fn keys_are_syntax_sensitive_but_paren_canonical() {
        let k = keys("x = (a + b) * c; y = a + b * c; return x;");
        assert_eq!(k[0].as_deref(), Some("(a + b) * c"));
        assert_eq!(k[1].as_deref(), Some("a + b * c"));
        assert_ne!(k[0], k[1]);
    }
}
