//! Hand-written lexer for the mini language.

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Num(i64),
    /// Identifier.
    Ident(String),
    /// A keyword (`fn`, `if`, `else`, `while`, `do`, `for`, `switch`,
    /// `case`, `default`, `break`, `continue`, `return`, `goto`).
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Fn,
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for LexError {}

fn keyword(s: &str) -> Option<Keyword> {
    Some(match s {
        "fn" => Keyword::Fn,
        "if" => Keyword::If,
        "else" => Keyword::Else,
        "while" => Keyword::While,
        "do" => Keyword::Do,
        "for" => Keyword::For,
        "switch" => Keyword::Switch,
        "case" => Keyword::Case,
        "default" => Keyword::Default,
        "break" => Keyword::Break,
        "continue" => Keyword::Continue,
        "return" => Keyword::Return,
        "goto" => Keyword::Goto,
        _ => return None,
    })
}

/// Tokenizes `source`.
///
/// Supports `//` line comments. The returned vector always ends with an
/// [`Token::Eof`] entry.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed numbers.
///
/// # Examples
///
/// ```
/// use pst_lang::lexer::{lex, Token};
/// let toks = lex("x = 1;").unwrap();
/// assert_eq!(toks[0].token, Token::Ident("x".into()));
/// assert_eq!(toks[1].token, Token::Punct("="));
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                token: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &source[start..i];
                let n: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    line: tl,
                    col: tc,
                })?;
                push!(Token::Num(n), tl, tc);
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let text = &source[start..i];
                match keyword(text) {
                    Some(k) => push!(Token::Keyword(k), tl, tc),
                    None => push!(Token::Ident(text.to_string()), tl, tc),
                }
            }
            _ => {
                // Two-character operators first.
                let two = if i + 1 < bytes.len() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let two_tok = match two {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "&&" => Some("&&"),
                    "||" => Some("||"),
                    _ => None,
                };
                if let Some(op) = two_tok {
                    push!(Token::Punct(op), tl, tc);
                    i += 2;
                    col += 2;
                    continue;
                }
                let one = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '<' => "<",
                    '>' => ">",
                    '=' => "=",
                    '!' => "!",
                    '(' => "(",
                    ')' => ")",
                    '{' => "{",
                    '}' => "}",
                    ';' => ";",
                    ':' => ":",
                    ',' => ",",
                    _ => {
                        return Err(LexError {
                            message: format!("unexpected character `{c}`"),
                            line: tl,
                            col: tc,
                        })
                    }
                };
                push!(Token::Punct(one), tl, tc);
                i += 1;
                col += 1;
            }
        }
    }
    push!(Token::Eof, line, col);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            toks("x = 42;"),
            vec![
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Num(42),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_vs_idents() {
        assert_eq!(
            toks("while whilex"),
            vec![
                Token::Keyword(Keyword::While),
                Token::Ident("whilex".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a <= b == c && d"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<="),
                Token::Ident("b".into()),
                Token::Punct("=="),
                Token::Ident("c".into()),
                Token::Punct("&&"),
                Token::Ident("d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x = 1; // set x\ny = 2;"),
            vec![
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Num(1),
                Token::Punct(";"),
                Token::Ident("y".into()),
                Token::Punct("="),
                Token::Num(2),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("x\n  y").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("x @ y").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_huge_literal() {
        assert!(lex("99999999999999999999").is_err());
    }
}
