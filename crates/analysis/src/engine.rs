//! The lint driver: runs every enabled, applicable rule over a function or
//! a raw graph and collects the findings into a [`LintReport`].

use pst_cfg::{canonicalize, Canonicalized, CanonicalizeError, CanonicalizeOptions, Graph, NodeId};
use pst_core::{ControlRegions, ProgramStructureTree};
use pst_lang::{Function, LoweredFunction};

use crate::diag::{find_rule, Diagnostic, LintConfig, LintReport, Rule, Severity};
use crate::{controldep, dataflow, structural};

/// Accumulates diagnostics while the rules run. Each rule begins by asking
/// [`Sink::rule`] for its catalog entry; a `None` answer means the rule is
/// suppressed and must not run.
pub(crate) struct Sink<'a> {
    config: &'a LintConfig,
    diagnostics: Vec<Diagnostic>,
    rules_run: Vec<&'static str>,
}

impl<'a> Sink<'a> {
    fn new(config: &'a LintConfig) -> Self {
        Sink {
            config,
            diagnostics: Vec::new(),
            rules_run: Vec::new(),
        }
    }

    /// Looks `id` up in the catalog and records that the rule ran. Returns
    /// `None` when the configuration suppresses it.
    pub(crate) fn rule(&mut self, id: &str) -> Option<&'static Rule> {
        let rule = find_rule(id).expect("rule ids used by this crate are in the catalog");
        if !self.config.is_enabled(rule) {
            return None;
        }
        if !self.rules_run.contains(&rule.id) {
            pst_obs::counter!("lint_rules_run");
            self.rules_run.push(rule.id);
        }
        Some(rule)
    }

    /// Effective severity of `rule` under the active configuration.
    pub(crate) fn severity(&self, rule: &Rule) -> Severity {
        self.config.severity(rule)
    }

    /// Records one finding.
    pub(crate) fn push(&mut self, diagnostic: Diagnostic) {
        pst_obs::counter!("lint_diagnostics");
        self.diagnostics.push(diagnostic);
    }

    fn into_report(self) -> LintReport {
        LintReport {
            diagnostics: self.diagnostics,
            rules_run: self.rules_run,
        }
    }
}

/// Lints one lowered function.
///
/// Pass the source AST as `ast` when the function came from the
/// mini-language front end; it enables the rules that need statement-level
/// information (`PST-S003` on mini inputs). Diagnostics carry source
/// positions whenever the lowered side tables kept them.
///
/// # Examples
///
/// ```
/// use pst_analysis::{lint_function, LintConfig};
/// use pst_lang::{lower_program, parse_program};
///
/// let program = parse_program("fn main(n) { m = n + 1; return m; }").unwrap();
/// let lowered = lower_program(&program).unwrap();
/// let report = lint_function(&lowered[0], Some(&program.functions[0]),
///                            &LintConfig::new());
/// assert!(report.is_clean());
/// ```
pub fn lint_function(
    f: &LoweredFunction,
    ast: Option<&Function>,
    config: &LintConfig,
) -> LintReport {
    let _span = pst_obs::Span::enter("lint");
    let pst = ProgramStructureTree::build(&f.cfg);
    let regions = ControlRegions::compute(&f.cfg);
    let mut sink = Sink::new(config);
    structural::irreducible_loops(&f.cfg, &mut sink);
    structural::multi_entry_loops(&f.cfg, &mut sink);
    if let Some(ast) = ast {
        structural::unreachable_statements(f, ast, &mut sink);
    }
    structural::bureaucratic_regions(f, &pst, &mut sink);
    controldep::vacuous_branches(&f.cfg, &regions, Some(f), &mut sink);
    controldep::empty_branch_arms(f, &regions, &mut sink);
    controldep::invariant_loop_guards(f, &mut sink);
    dataflow::uninitialized_uses(f, &pst, &mut sink);
    dataflow::dead_definitions(f, &pst, &mut sink);
    sink.into_report()
}

/// Result of linting a raw edge-list graph: the findings plus the
/// canonicalized CFG they were computed on (also what the DOT export
/// renders).
#[derive(Clone, Debug)]
pub struct GraphLint {
    /// The findings. `PST-S003`/`PST-S004` diagnostics and `PST-C103`
    /// (which runs on the raw input) refer to *input* node ids; the rules
    /// that ran on the repaired CFG refer to its node ids.
    pub report: LintReport,
    /// The canonicalization outcome the structural rules consumed.
    pub canonical: Canonicalized,
}

/// Lints a raw graph: canonicalizes it, then runs every rule that does not
/// need statement-level information.
///
/// # Errors
///
/// Propagates [`CanonicalizeError`] when the graph cannot be repaired into
/// a valid CFG at all (e.g. it is empty).
pub fn lint_graph(
    graph: &Graph,
    entry: NodeId,
    options: &CanonicalizeOptions,
    config: &LintConfig,
) -> Result<GraphLint, CanonicalizeError> {
    let _span = pst_obs::Span::enter("lint");
    let canonical = canonicalize(graph, entry, options)?;
    let mut sink = Sink::new(config);
    structural::irreducible_loops(&canonical.cfg, &mut sink);
    structural::multi_entry_loops(&canonical.cfg, &mut sink);
    structural::unreachable_nodes(&canonical.report, &mut sink);
    structural::infinite_regions(&canonical.report, &mut sink);
    let regions = ControlRegions::compute(&canonical.cfg);
    controldep::vacuous_branches(&canonical.cfg, &regions, None, &mut sink);
    controldep::synthetic_termination_dependence(graph, &canonical, &mut sink);
    controldep::order_dependent_pairs(graph, &mut sink);
    Ok(GraphLint {
        report: sink.into_report(),
        canonical,
    })
}

/// Renders `graph` as DOT with the nodes and edges named by `report`'s
/// diagnostics highlighted (red for errors/warnings, orange for info).
/// Out-of-range ids (input-graph ids of pruned nodes) are skipped.
pub fn dot_with_findings(graph: &Graph, report: &LintReport) -> String {
    let mut node_color: Vec<Option<Severity>> = vec![None; graph.node_count()];
    let mut edge_color: Vec<Option<Severity>> = Vec::new();
    let flag = |slot: &mut Option<Severity>, s: Severity| {
        if slot.is_none_or(|old| old < s) {
            *slot = Some(s);
        }
    };
    for d in &report.diagnostics {
        for &n in &d.nodes {
            if n.index() < graph.node_count() {
                flag(&mut node_color[n.index()], d.severity);
            }
        }
    }
    for e in graph.edges() {
        let endpoints = graph.endpoints(e);
        let mut slot = None;
        for d in &report.diagnostics {
            if d.edges.contains(&endpoints) {
                flag(&mut slot, d.severity);
            }
        }
        edge_color.push(slot);
    }
    let paint = |s: Option<Severity>| match s {
        Some(Severity::Info) => "color=orange, penwidth=2".to_string(),
        Some(_) => "color=red, penwidth=2".to_string(),
        None => String::new(),
    };
    pst_cfg::graph_to_dot_with(
        graph,
        |n| paint(node_color[n.index()]),
        |e| paint(edge_color[e.index()]),
    )
}
