//! Dataflow rules over sparse reaching definitions.
//!
//! Both rules solve per-function reaching-definition problems through the
//! quick propagation graph when the PST admits one, falling back to the
//! iterative solver otherwise, so the diagnostics are identical either way.

use pst_cfg::{Cfg, NodeId};
use pst_core::ProgramStructureTree;
use pst_dataflow::{
    solve_iterative, DataflowProblem, QpgContext, ReachingDefinitions, SingleVariableReachingDefs,
    Solution,
};
use pst_lang::{LoweredFunction, SrcPos, VarId};

use crate::diag::Diagnostic;
use crate::engine::Sink;

/// Solves `problem` sparsely via the QPG built from `site_nodes`, falling
/// back to the iterative solver if the QPG cannot be built. Both paths
/// produce the same fixed point (the differential fuzz subcommand checks
/// exactly this), so the fallback never changes what the rules report.
fn sparse_solution<P: DataflowProblem>(
    ctx: Option<&QpgContext<'_>>,
    cfg: &Cfg,
    problem: &P,
    site_nodes: &[NodeId],
) -> Solution {
    if let Some(ctx) = ctx {
        if let Ok(qpg) = ctx.build_from_sites(site_nodes) {
            if let Ok(solution) = ctx.solve(&qpg, problem) {
                return solution;
            }
        }
    }
    solve_iterative(cfg, problem)
}

/// `PST-D001` (mini inputs) — a read of a variable that no definition can
/// reach. May-analysis semantics: if *some* path defines the variable the
/// rule stays silent; only reads that are uninitialized on every path fire.
pub(crate) fn uninitialized_uses(
    f: &LoweredFunction,
    pst: &ProgramStructureTree,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-D001") else {
        return;
    };
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_dataflow_work",
        (graph.node_count() + f.statement_count()) as u64
    );
    // Upward-exposed uses per variable: a read before any local definition
    // in its block. Stamps avoid reallocating per-block scratch.
    let mut exposed: Vec<Vec<(NodeId, Option<SrcPos>)>> = vec![Vec::new(); f.var_count()];
    let mut def_stamp = vec![u32::MAX; f.var_count()];
    let mut use_stamp = vec![u32::MAX; f.var_count()];
    for n in graph.nodes() {
        let stamp = n.index() as u32;
        let info = &f.blocks[n.index()];
        for s in &info.stmts {
            for &u in &s.uses {
                if def_stamp[u.index()] != stamp && use_stamp[u.index()] != stamp {
                    use_stamp[u.index()] = stamp;
                    exposed[u.index()].push((n, s.pos));
                }
            }
            if let Some(d) = s.def {
                def_stamp[d.index()] = stamp;
            }
        }
        for &u in &info.branch_uses {
            if def_stamp[u.index()] != stamp && use_stamp[u.index()] != stamp {
                use_stamp[u.index()] = stamp;
                exposed[u.index()].push((n, info.branch_pos));
            }
        }
    }
    let ctx = QpgContext::new(&f.cfg, pst).ok();
    for (v, uses) in exposed.iter().enumerate() {
        if uses.is_empty() {
            continue;
        }
        let var = VarId::from_index(v);
        let problem = SingleVariableReachingDefs::new(f, var);
        let solution = if problem.sites().is_empty() {
            None // no definition anywhere: every exposed use fires
        } else {
            Some(sparse_solution(
                ctx.as_ref(),
                &f.cfg,
                &problem,
                problem.sites(),
            ))
        };
        for &(n, pos) in uses {
            let reached = solution
                .as_ref()
                .is_some_and(|s| !s.value_in(n).is_empty());
            if !reached {
                sink.push(Diagnostic {
                    rule: rule.id,
                    severity: sink.severity(rule),
                    message: format!(
                        "uninitialized use: `{}` is read at {n} but no definition reaches it",
                        f.var_name(var)
                    ),
                    pos,
                    nodes: vec![n],
                    edges: Vec::new(),
                });
            }
        }
    }
}

/// `PST-D002` (mini inputs) — an assignment whose value no later read can
/// observe. Definitions without source positions (implicit parameter
/// definitions, generated programs) are exempt.
pub(crate) fn dead_definitions(
    f: &LoweredFunction,
    pst: &ProgramStructureTree,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-D002") else {
        return;
    };
    let rd = ReachingDefinitions::new(f);
    let sites = rd.sites();
    if sites.is_empty() {
        return;
    }
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_dataflow_work",
        (sites.len() + f.statement_count()) as u64
    );
    let ctx = QpgContext::new(&f.cfg, pst).ok();
    let site_nodes: Vec<NodeId> = sites.iter().map(|s| s.node).collect();
    let solution = sparse_solution(ctx.as_ref(), &f.cfg, &rd, &site_nodes);
    // Mark every definition some use can observe. Within a block a use
    // consumes the closest local definition; an upward-exposed use consumes
    // every reaching definition of its variable.
    let mut consumed = vec![false; sites.len()];
    let mut local_stamp = vec![u32::MAX; f.var_count()];
    let mut local_site = vec![0usize; f.var_count()];
    let mut exposed_stamp = vec![u32::MAX; f.var_count()];
    // `sites` is ordered by (node, stmt) — exactly lowering order — so a
    // single cursor recovers each definition's site index.
    let mut cursor = 0usize;
    for n in graph.nodes() {
        let stamp = n.index() as u32;
        let info = &f.blocks[n.index()];
        let reaching = solution.value_in(n);
        let consume = |u: VarId,
                       consumed: &mut [bool],
                       local_stamp: &[u32],
                       local_site: &[usize],
                       exposed_stamp: &mut [u32]| {
            if local_stamp[u.index()] == stamp {
                consumed[local_site[u.index()]] = true;
            } else if exposed_stamp[u.index()] != stamp {
                exposed_stamp[u.index()] = stamp;
                for si in reaching.iter() {
                    if sites[si].var == u {
                        consumed[si] = true;
                    }
                }
            }
        };
        for s in &info.stmts {
            for &u in &s.uses {
                consume(u, &mut consumed, &local_stamp, &local_site, &mut exposed_stamp);
            }
            if let Some(d) = s.def {
                local_stamp[d.index()] = stamp;
                local_site[d.index()] = cursor;
                cursor += 1;
            }
        }
        for &u in &info.branch_uses {
            consume(u, &mut consumed, &local_stamp, &local_site, &mut exposed_stamp);
        }
    }
    debug_assert_eq!(cursor, sites.len());
    for (si, site) in sites.iter().enumerate() {
        if consumed[si] {
            continue;
        }
        let stmt = &f.blocks[site.node.index()].stmts[site.stmt];
        let Some(pos) = stmt.pos else {
            continue;
        };
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "dead definition: `{}` is assigned (`{}`) but the value is never read",
                f.var_name(site.var),
                stmt.text
            ),
            pos: Some(pos),
            nodes: vec![site.node],
            edges: Vec::new(),
        });
    }
}
