//! Structural rules: irreducibility witnesses, multi-entry loops,
//! unreachable/infinite regions, bureaucratic PST chains.

use pst_cfg::{reducibility, Cfg, CanonicalizationReport, Repair, Sccs};
use pst_core::ProgramStructureTree;
use pst_lang::{Block, Function, LoweredFunction, Stmt};

use crate::diag::Diagnostic;
use crate::engine::Sink;

/// `PST-S001` — every irreducible retreating edge is a witness.
pub(crate) fn irreducible_loops(cfg: &Cfg, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-S001") else {
        return;
    };
    let graph = cfg.graph();
    pst_obs::counter!("lint_structural_work", (graph.node_count() + graph.edge_count()) as u64);
    let witness = reducibility(graph, cfg.entry(), None);
    for &e in witness.irreducible_edges() {
        let (s, t) = graph.endpoints(e);
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "irreducible loop: retreating edge {s}->{t} targets a node that does not \
                 dominate its source"
            ),
            pos: None,
            nodes: vec![t],
            edges: vec![(s, t)],
        });
    }
}

/// `PST-S002` — a strongly connected component entered at ≥ 2 nodes.
pub(crate) fn multi_entry_loops(cfg: &Cfg, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-S002") else {
        return;
    };
    let graph = cfg.graph();
    pst_obs::counter!("lint_structural_work", (graph.node_count() + graph.edge_count()) as u64);
    let sccs = Sccs::new(graph);
    // Component sizes, to skip trivial (single-node, no-cycle) components.
    let mut size = vec![0usize; sccs.count()];
    for n in graph.nodes() {
        size[sccs.component(n)] += 1;
    }
    // Distinct external-entry targets per component, in node order.
    let mut entries: Vec<Vec<pst_cfg::NodeId>> = vec![Vec::new(); sccs.count()];
    for e in graph.edges() {
        let (s, t) = graph.endpoints(e);
        let c = sccs.component(t);
        if sccs.component(s) != c && size[c] >= 2 && !entries[c].contains(&t) {
            entries[c].push(t);
        }
    }
    for targets in entries {
        if targets.len() >= 2 {
            let labels: Vec<String> = targets.iter().map(|n| n.to_string()).collect();
            sink.push(Diagnostic {
                rule: rule.id,
                severity: sink.severity(rule),
                message: format!(
                    "multi-entry loop: a cycle is entered at {} distinct nodes ({})",
                    targets.len(),
                    labels.join(", ")
                ),
                pos: None,
                nodes: targets,
                edges: Vec::new(),
            });
        }
    }
}

/// Number of AST statements that lower to `StmtInfo`s (assignments,
/// expression statements, returns; a `for` contributes its init and step).
pub fn ast_statement_count(f: &Function) -> usize {
    f.params.len() + block_statement_count(&f.body)
}

fn block_statement_count(b: &Block) -> usize {
    b.stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { .. } | Stmt::Expr(_) | Stmt::Return(_) => 1,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                block_statement_count(then_branch)
                    + else_branch.as_ref().map_or(0, block_statement_count)
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => block_statement_count(body),
            Stmt::For { body, .. } => 2 + block_statement_count(body),
            Stmt::Switch { cases, default, .. } => {
                cases
                    .iter()
                    .map(|(_, b)| block_statement_count(b))
                    .sum::<usize>()
                    + default.as_ref().map_or(0, block_statement_count)
            }
            Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) => 0,
        })
        .sum()
}

/// `PST-S003` (mini inputs) — statements the lowerer pruned because no
/// entry-to-exit path executes them.
pub(crate) fn unreachable_statements(
    f: &LoweredFunction,
    ast: &Function,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-S003") else {
        return;
    };
    let expected = ast_statement_count(ast);
    let actual = f.statement_count();
    pst_obs::counter!("lint_structural_work", expected as u64);
    if expected > actual {
        let pruned = expected - actual;
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "unreachable code: {pruned} statement(s) can never execute on an \
                 entry-to-exit path and were pruned during lowering"
            ),
            pos: None,
            nodes: Vec::new(),
            edges: Vec::new(),
        });
    }
}

/// `PST-S003` (graph inputs) — unreachable nodes surfaced by the
/// canonicalization report.
pub(crate) fn unreachable_nodes(report: &CanonicalizationReport, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-S003") else {
        return;
    };
    pst_obs::counter!("lint_structural_work", report.repairs().len() as u64);
    let nodes: Vec<pst_cfg::NodeId> = report
        .repairs()
        .iter()
        .filter_map(|r| match *r {
            Repair::PrunedUnreachable { node } | Repair::TetheredUnreachable { node } => Some(node),
            _ => None,
        })
        .collect();
    if !nodes.is_empty() {
        let labels: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "unreachable code: {} node(s) cannot be reached from the entry ({})",
                nodes.len(),
                labels.join(", ")
            ),
            pos: None,
            nodes,
            edges: Vec::new(),
        });
    }
}

/// `PST-S004` (graph inputs) — regions that cannot reach the exit.
pub(crate) fn infinite_regions(report: &CanonicalizationReport, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-S004") else {
        return;
    };
    pst_obs::counter!("lint_structural_work", report.repairs().len() as u64);
    let mut nodes = Vec::new();
    let mut synthesized_exit = false;
    for r in report.repairs() {
        match *r {
            Repair::VirtualLoopExit { from } => nodes.push(from),
            Repair::SyntheticExit { .. } => synthesized_exit = true,
            _ => {}
        }
    }
    if !nodes.is_empty() || synthesized_exit {
        let labels: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "infinite region: {} node(s) cannot reach the exit ({}{})",
                nodes.len().max(usize::from(synthesized_exit)),
                labels.join(", "),
                if synthesized_exit {
                    "; the graph had no sink at all"
                } else {
                    ""
                }
            ),
            pos: None,
            nodes,
            edges: Vec::new(),
        });
    }
}

/// `PST-S005` (mini inputs) — chains of single-node canonical regions
/// whose nodes carry no statements and no branch: pure plumbing, usually
/// label ladders.
pub(crate) fn bureaucratic_regions(
    f: &LoweredFunction,
    pst: &ProgramStructureTree,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-S005") else {
        return;
    };
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_structural_work",
        (graph.node_count() + pst.region_count()) as u64
    );
    // One pass over nodes gives each region's interior size and (if
    // singleton) its sole member, without the per-region interior scan.
    let mut interior_count = vec![0usize; pst.region_count()];
    let mut member: Vec<Option<pst_cfg::NodeId>> = vec![None; pst.region_count()];
    for n in graph.nodes() {
        let r = pst.region_of_node(n).index();
        interior_count[r] += 1;
        member[r] = Some(n);
    }
    // Idle singleton canonical regions, keyed by their entry edge.
    let mut idle: Vec<Option<usize>> = vec![None; graph.edge_count()]; // entry edge -> region index
    let mut members: Vec<Option<pst_cfg::NodeId>> = vec![None; pst.region_count()];
    let mut exit_edge: Vec<Option<pst_cfg::EdgeId>> = vec![None; pst.region_count()];
    for r in pst.regions() {
        let (Some(entry), Some(exit)) = (pst.entry_edge(r), pst.exit_edge(r)) else {
            continue;
        };
        if !pst.children(r).is_empty() || interior_count[r.index()] != 1 {
            continue;
        }
        let node = member[r.index()].expect("singleton region has a member");
        let info = &f.blocks[node.index()];
        if info.stmts.is_empty() && info.branch_uses.is_empty() {
            idle[entry.index()] = Some(r.index());
            members[r.index()] = Some(node);
            exit_edge[r.index()] = Some(exit);
        }
    }
    // Chain regions whose exit edge is the next one's entry edge; report
    // maximal chains of length ≥ 2. A region is a chain head when no idle
    // region's exit edge equals its entry edge.
    let mut is_continuation = vec![false; pst.region_count()];
    for r in pst.regions() {
        if members[r.index()].is_none() {
            continue;
        }
        if let Some(exit) = exit_edge[r.index()] {
            if let Some(next) = idle[exit.index()] {
                is_continuation[next] = true;
            }
        }
    }
    for r in pst.regions() {
        let ri = r.index();
        if members[ri].is_none() || is_continuation[ri] {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = Some(ri);
        while let Some(c) = cur {
            chain.push(members[c].expect("chain members are idle singletons"));
            cur = exit_edge[c].and_then(|e| idle[e.index()]);
        }
        if chain.len() >= 2 {
            let labels: Vec<String> = chain.iter().map(|n| n.to_string()).collect();
            sink.push(Diagnostic {
                rule: rule.id,
                severity: sink.severity(rule),
                message: format!(
                    "bureaucratic regions: {} consecutive single-node regions do nothing ({})",
                    chain.len(),
                    labels.join(" -> ")
                ),
                pos: None,
                nodes: chain,
                edges: Vec::new(),
            });
        }
    }
}
