//! Rule-based structural lint engine over the PST pipeline's artifacts.
//!
//! Every analysis this workspace computes — canonicalization repairs,
//! SESE regions, control regions (Theorem 7 of the PST paper), loop
//! structure, and sparse QPG dataflow — doubles as a *defect detector*:
//! an irreducible retreating edge is a `goto` into a loop body, an empty
//! control region is a branch that decides nothing, an empty reaching-
//! definition set is a read of garbage. This crate packages those
//! observations as a small lint engine:
//!
//! * a catalog of rules with stable ids ([`RULES`]), each with a default
//!   [`Severity`] that `--allow`/`--deny` style overrides can adjust
//!   ([`LintConfig`]);
//! * a driver that runs every enabled rule over a lowered mini-language
//!   function ([`lint_function`]) or a raw edge-list graph
//!   ([`lint_graph`]) and returns a [`LintReport`];
//! * human and machine-readable rendering ([`LintReport::render_text`],
//!   [`LintReport::to_json`]) plus a DOT export that highlights flagged
//!   nodes and edges ([`dot_with_findings`]).
//!
//! The rule families mirror the pipeline stages (see `docs/ANALYSIS.md`
//! for the full catalog):
//!
//! | family | rules | artifact consumed |
//! |---|---|---|
//! | structural | `PST-S001`…`PST-S005` | reducibility witnesses, SCCs, canonicalization report, PST |
//! | weak control dependence | `PST-C001`, `PST-C002` | control regions (cycle equivalence) |
//! | strong control dependence | `PST-C101`…`PST-C103` | NTSCD/DOD and the classic relation (`pst-controldep`, `docs/CONTROLDEP.md`) |
//! | dataflow | `PST-D001`, `PST-D002` | QPG-solved reaching definitions |
//!
//! The structural, weak-control-dependence and dataflow rules are linear
//! in the size of the CFG plus the artifact they read, preserving the
//! paper's linear-time story; the strong family pays the documented
//! NTSCD/DOD costs (`O(N·(N+E))` and budgeted `O(N²·(N+E))`) for
//! termination-sensitive findings no linear rule can see. The `lint_*`
//! observability counters make all of it measurable.
//!
//! # Examples
//!
//! ```
//! use pst_analysis::{lint_function, LintConfig, Severity};
//! use pst_lang::{lower_program, parse_program};
//!
//! // `y` is read before any assignment on the else path.
//! let src = "fn main(n) { if (n > 0) { y = 1; } return y; }";
//! let program = parse_program(src).unwrap();
//! let lowered = lower_program(&program).unwrap();
//! let report = lint_function(&lowered[0], Some(&program.functions[0]),
//!                            &LintConfig::new());
//! // May-analysis: one path defines `y`, so D001 stays silent — but the
//! // engine ran and reported which rules it applied.
//! assert!(report.rules_run.contains(&"PST-D001"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controldep;
mod dataflow;
mod diag;
mod engine;
mod structural;

pub use diag::{find_rule, Diagnostic, LintConfig, LintReport, Rule, Severity, RULES};
pub use engine::{dot_with_findings, lint_function, lint_graph, GraphLint};
pub use structural::ast_statement_count;
