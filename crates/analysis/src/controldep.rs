//! Control-dependence rules: the weak family (`PST-C0xx`) built on the
//! control-equivalence classes of Theorem 7, and the strong family
//! (`PST-C1xx`) built on the termination-sensitive NTSCD/DOD relations
//! from `pst-controldep` (see `docs/CONTROLDEP.md`).

use pst_cfg::{Canonicalized, Cfg, Graph, NodeId, Repair, Sccs};
use pst_controldep::{ClassicControlDeps, Dod, StrongControlDeps, DEFAULT_DOD_BUDGET};
use pst_core::ControlRegions;
use pst_lang::LoweredFunction;

use crate::diag::Diagnostic;
use crate::engine::Sink;

/// `PST-C001` — a conditional branch all of whose successors sit in the
/// branch's own control region. Every successor executes exactly when the
/// branch does, so the condition selects nothing (Theorem 7: control
/// regions are the equivalence classes of "executes under the same
/// conditions").
pub(crate) fn vacuous_branches(
    cfg: &Cfg,
    regions: &ControlRegions,
    f: Option<&LoweredFunction>,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-C001") else {
        return;
    };
    let graph = cfg.graph();
    pst_obs::counter!(
        "lint_controldep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    for n in graph.nodes() {
        if graph.out_degree(n) < 2 {
            continue;
        }
        let class = regions.class(n);
        if graph.successors(n).all(|s| regions.class(s) == class) {
            let pos = f.and_then(|f| f.blocks[n.index()].branch_pos);
            sink.push(Diagnostic {
                rule: rule.id,
                severity: sink.severity(rule),
                message: format!(
                    "vacuous branch: every successor of {n} is control-equivalent to it, \
                     so the condition never changes what executes"
                ),
                pos,
                nodes: vec![n],
                edges: graph
                    .out_edges(n)
                    .iter()
                    .map(|&e| graph.endpoints(e))
                    .collect(),
            });
        }
    }
}

/// `PST-C002` (mini inputs) — a branch arm that is a single idle block
/// falling straight back into the branch's own control region: the arm
/// exists only to do nothing (`if (c) { }`, `while (c) { }` with an empty
/// body).
pub(crate) fn empty_branch_arms(
    f: &LoweredFunction,
    regions: &ControlRegions,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-C002") else {
        return;
    };
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_controldep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    for n in graph.nodes() {
        if graph.out_degree(n) < 2 {
            continue;
        }
        let class = regions.class(n);
        for s in graph.successors(n) {
            if s == n {
                continue;
            }
            let info = &f.blocks[s.index()];
            // The arm is conditional (not the branch's own class), does
            // nothing, and its sole successor is unconditional again.
            if regions.class(s) != class
                && info.stmts.is_empty()
                && info.branch_uses.is_empty()
                && graph.out_degree(s) == 1
                && graph
                    .successors(s)
                    .all(|m| m != s && regions.class(m) == class)
            {
                let pos = f.blocks[n.index()].branch_pos;
                sink.push(Diagnostic {
                    rule: rule.id,
                    severity: sink.severity(rule),
                    message: format!(
                        "empty branch arm: the arm through {s} does nothing before \
                         rejoining; the branch at {n} can be simplified"
                    ),
                    pos,
                    nodes: vec![n, s],
                    edges: vec![(n, s)],
                });
            }
        }
    }
}

/// `PST-C101` (mini inputs) — a loop whose every exit guard reads only
/// variables no statement inside the loop defines. Once entered, nothing
/// the loop does can flip any of its guards, so it can never terminate by
/// itself. Nested loops are handled by refinement: a healthy outer loop's
/// guards are removed and the strongly connected remainder is re-examined,
/// so an invariant inner loop is found even when the outer SCC swallows it.
///
/// The finding is enriched with the NTSCD view: the number of nodes that
/// are strongly (termination-sensitively) but not classically control
/// dependent on the guard — the code that silently relies on this loop
/// finishing.
pub(crate) fn invariant_loop_guards(f: &LoweredFunction, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-C101") else {
        return;
    };
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_strongdep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    let n = graph.node_count();
    let defines: Vec<Vec<pst_lang::VarId>> = f
        .blocks
        .iter()
        .map(|b| b.stmts.iter().filter_map(|s| s.def).collect())
        .collect();
    let mut active = vec![true; n];
    let mut strong: Option<StrongControlDeps> = None;
    loop {
        // SCCs of the subgraph induced by the still-active nodes. Node ids
        // are preserved, so components translate back directly.
        let mut sub = Graph::with_capacity(n, graph.edge_count());
        sub.add_nodes(n);
        for e in graph.edges() {
            let (s, t) = graph.endpoints(e);
            if active[s.index()] && active[t.index()] {
                sub.add_edge(s, t);
            }
        }
        let sccs = Sccs::new(&sub);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); sccs.count()];
        for v in sub.nodes() {
            if active[v.index()] {
                members[sccs.component(v)].push(v);
            }
        }
        let mut changed = false;
        for comp in &members {
            let is_loop = comp.len() >= 2
                || comp
                    .iter()
                    .any(|&v| sub.successors(v).any(|s| s == v));
            if !is_loop {
                continue;
            }
            let cid = sccs.component(comp[0]);
            let mut defined = vec![false; f.vars.len()];
            for &v in comp {
                for &d in &defines[v.index()] {
                    defined[d.index()] = true;
                }
            }
            // Exit guards: loop nodes with an original-graph successor
            // outside the component (removed guards count as outside).
            let mut dead_guards: Vec<NodeId> = Vec::new();
            let mut live_guards: Vec<NodeId> = Vec::new();
            for &v in comp {
                let leaves = graph
                    .successors(v)
                    .any(|s| !active[s.index()] || sccs.component(s) != cid);
                if !leaves {
                    continue;
                }
                if f.blocks[v.index()]
                    .branch_uses
                    .iter()
                    .any(|u| defined[u.index()])
                {
                    live_guards.push(v);
                } else {
                    dead_guards.push(v);
                }
            }
            if dead_guards.is_empty() && live_guards.is_empty() {
                // Inescapable region: PST-S004's territory, not a guard bug.
                for &v in comp {
                    active[v.index()] = false;
                }
                changed = true;
            } else if !live_guards.is_empty() {
                // Some guard can make progress; peel the live guards and
                // re-examine what remains for invariant inner loops.
                for &v in &live_guards {
                    active[v.index()] = false;
                }
                changed = true;
            } else {
                let g0 = dead_guards[0];
                let strong =
                    strong.get_or_insert_with(|| StrongControlDeps::of_cfg(&f.cfg));
                let waiting = strong.termination_sensitive_deps(g0).len();
                let mut vars: Vec<&str> = dead_guards
                    .iter()
                    .flat_map(|&g| f.blocks[g.index()].branch_uses.iter())
                    .map(|u| f.vars[u.index()].as_str())
                    .collect();
                vars.sort_unstable();
                vars.dedup();
                let read = if vars.is_empty() {
                    "no variables at all".to_string()
                } else {
                    format!("only `{}`, which the loop never assigns", vars.join("`, `"))
                };
                let mut nodes = dead_guards.clone();
                nodes.extend(comp.iter().copied().filter(|v| !dead_guards.contains(v)));
                let edges = dead_guards
                    .iter()
                    .flat_map(|&g| {
                        graph
                            .successors(g)
                            .filter(|s| active[s.index()] && sccs.component(*s) == cid)
                            .map(move |s| (g, s))
                    })
                    .collect();
                sink.push(Diagnostic {
                    rule: rule.id,
                    severity: sink.severity(rule),
                    message: format!(
                        "possibly non-terminating loop: the guard at {g0} reads {read}; \
                         {waiting} node(s) after the loop execute only if it terminates"
                    ),
                    pos: f.blocks[g0.index()].branch_pos,
                    nodes,
                    edges,
                });
                for &v in comp {
                    active[v.index()] = false;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// `PST-C102` (graph inputs) — nodes classically control dependent on a
/// predicate that only branches because canonicalization synthesized a
/// virtual loop exit. In the input graph the "predicate" is unconditional:
/// the real program decides the dependence by terminating or not, which a
/// termination-insensitive slicer will silently get wrong.
pub(crate) fn synthetic_termination_dependence(
    graph: &Graph,
    canonical: &Canonicalized,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-C102") else {
        return;
    };
    let virtuals: Vec<NodeId> = canonical
        .report
        .repairs()
        .iter()
        .filter_map(|r| match *r {
            Repair::VirtualLoopExit { from } => Some(from),
            _ => None,
        })
        .collect();
    pst_obs::counter!(
        "lint_strongdep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    if virtuals.is_empty() {
        return;
    }
    let classic = ClassicControlDeps::compute(&canonical.cfg);
    let cgraph = canonical.cfg.graph();
    for from in virtuals {
        // Skip predicates that already branched in the input: their
        // dependence is real, only the exit edge's target is synthetic.
        let was_real_branch = canonical
            .node_map
            .iter()
            .position(|&m| m == Some(from))
            .is_some_and(|i| {
                let mut succs: Vec<NodeId> =
                    graph.successors(NodeId::from_index(i)).collect();
                succs.sort_unstable();
                succs.dedup();
                succs.len() >= 2
            });
        if was_real_branch {
            continue;
        }
        let dependents: Vec<NodeId> = cgraph
            .nodes()
            .filter(|&v| v != from && classic.depends_on(v, from))
            .collect();
        if dependents.is_empty() {
            continue;
        }
        let mut nodes = vec![from];
        nodes.extend(dependents.iter().copied());
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "synthetic termination dependence: {} node(s) are control dependent \
                 on {from}, but {from} only branches via the virtual exit edge added \
                 for an inescapable loop — the real program decides this by (not) \
                 terminating",
                dependents.len()
            ),
            pos: None,
            nodes,
            edges: vec![(from, canonical.cfg.exit())],
        });
    }
}

/// `PST-C103` (graph inputs) — decisive order dependence: a branch that
/// does not decide *whether* two nodes execute (they always both do) but
/// does decide *in which order*. Computed by the DOD relation on the raw
/// input graph; one finding per deciding branch, witnesses aggregated.
pub(crate) fn order_dependent_pairs(graph: &Graph, sink: &mut Sink<'_>) {
    let Some(rule) = sink.rule("PST-C103") else {
        return;
    };
    pst_obs::counter!(
        "lint_strongdep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    let dod = Dod::compute_budgeted(graph, DEFAULT_DOD_BUDGET);
    if dod.is_empty() {
        return;
    }
    // Witnesses are sorted by (branch, first, second); group consecutively.
    let witnesses = dod.witnesses();
    let mut i = 0;
    while i < witnesses.len() {
        let branch = witnesses[i].branch;
        let mut j = i;
        while j < witnesses.len() && witnesses[j].branch == branch {
            j += 1;
        }
        let group = &witnesses[i..j];
        let first = group[0];
        let mut nodes = vec![branch];
        for w in group {
            for m in [w.first, w.second] {
                if !nodes.contains(&m) {
                    nodes.push(m);
                }
            }
        }
        sink.push(Diagnostic {
            rule: rule.id,
            severity: sink.severity(rule),
            message: format!(
                "order-dependent pair(s): the branch at {branch} decides the execution \
                 order of {} always-executing pair(s) of nodes, e.g. {} vs {} — \
                 node-level slicing that ignores order will miscompile this",
                group.len(),
                first.first,
                first.second
            ),
            pos: None,
            nodes,
            edges: graph
                .out_edges(branch)
                .iter()
                .map(|&e| graph.endpoints(e))
                .collect(),
        });
        i = j;
    }
}
