//! Control-dependence rules, built on the control-equivalence classes of
//! Theorem 7 (cycle-equivalence partitions the nodes into control regions).

use pst_cfg::Cfg;
use pst_core::ControlRegions;
use pst_lang::LoweredFunction;

use crate::diag::Diagnostic;
use crate::engine::Sink;

/// `PST-C001` — a conditional branch all of whose successors sit in the
/// branch's own control region. Every successor executes exactly when the
/// branch does, so the condition selects nothing (Theorem 7: control
/// regions are the equivalence classes of "executes under the same
/// conditions").
pub(crate) fn vacuous_branches(
    cfg: &Cfg,
    regions: &ControlRegions,
    f: Option<&LoweredFunction>,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-C001") else {
        return;
    };
    let graph = cfg.graph();
    pst_obs::counter!(
        "lint_controldep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    for n in graph.nodes() {
        if graph.out_degree(n) < 2 {
            continue;
        }
        let class = regions.class(n);
        if graph.successors(n).all(|s| regions.class(s) == class) {
            let pos = f.and_then(|f| f.blocks[n.index()].branch_pos);
            sink.push(Diagnostic {
                rule: rule.id,
                severity: sink.severity(rule),
                message: format!(
                    "vacuous branch: every successor of {n} is control-equivalent to it, \
                     so the condition never changes what executes"
                ),
                pos,
                nodes: vec![n],
                edges: graph
                    .out_edges(n)
                    .iter()
                    .map(|&e| graph.endpoints(e))
                    .collect(),
            });
        }
    }
}

/// `PST-C002` (mini inputs) — a branch arm that is a single idle block
/// falling straight back into the branch's own control region: the arm
/// exists only to do nothing (`if (c) { }`, `while (c) { }` with an empty
/// body).
pub(crate) fn empty_branch_arms(
    f: &LoweredFunction,
    regions: &ControlRegions,
    sink: &mut Sink<'_>,
) {
    let Some(rule) = sink.rule("PST-C002") else {
        return;
    };
    let graph = f.cfg.graph();
    pst_obs::counter!(
        "lint_controldep_work",
        (graph.node_count() + graph.edge_count()) as u64
    );
    for n in graph.nodes() {
        if graph.out_degree(n) < 2 {
            continue;
        }
        let class = regions.class(n);
        for s in graph.successors(n) {
            if s == n {
                continue;
            }
            let info = &f.blocks[s.index()];
            // The arm is conditional (not the branch's own class), does
            // nothing, and its sole successor is unconditional again.
            if regions.class(s) != class
                && info.stmts.is_empty()
                && info.branch_uses.is_empty()
                && graph.out_degree(s) == 1
                && graph
                    .successors(s)
                    .all(|m| m != s && regions.class(m) == class)
            {
                let pos = f.blocks[n.index()].branch_pos;
                sink.push(Diagnostic {
                    rule: rule.id,
                    severity: sink.severity(rule),
                    message: format!(
                        "empty branch arm: the arm through {s} does nothing before \
                         rejoining; the branch at {n} can be simplified"
                    ),
                    pos,
                    nodes: vec![n, s],
                    edges: vec![(n, s)],
                });
            }
        }
    }
}
