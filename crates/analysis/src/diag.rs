//! Diagnostic types: rules, severities, configuration and reports.

use std::fmt;

use pst_cfg::NodeId;
use pst_lang::SrcPos;
use pst_obs::json::Json;

/// How serious a diagnostic is by default.
///
/// The ordering is semantic: `Info < Warning < Error`, so
/// [`LintReport::max_severity`] can drive exit codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A structural smell worth knowing about, never wrong to ignore.
    Info,
    /// Probably a defect; the program still analyzes cleanly.
    Warning,
    /// Almost certainly a defect (e.g. a read of a variable no definition
    /// can reach).
    Error,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one lint rule.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable identifier, e.g. `PST-S001`. Never reused or renamed.
    pub id: &'static str,
    /// Short name, e.g. `irreducible-loop`.
    pub name: &'static str,
    /// Default severity (before `--allow` / `--deny` adjustment).
    pub severity: Severity,
    /// One-line description for `docs/ANALYSIS.md` and `--help`-ish dumps.
    pub summary: &'static str,
    /// A minimal input that trips the rule, shown by `pst lint --explain`.
    pub example: &'static str,
    /// What to do about a finding, shown by `pst lint --explain`.
    pub fix: &'static str,
}

impl Rule {
    /// Multi-line documentation card rendered by `pst lint --explain`.
    pub fn explain(&self) -> String {
        format!(
            "{} ({})\nseverity: {}\n\n{}\n\nexample:\n{}\n\nfix: {}\n",
            self.id,
            self.name,
            self.severity.label(),
            self.summary,
            self.example,
            self.fix
        )
    }
}

/// The shipped rule catalog (see `docs/ANALYSIS.md`).
pub const RULES: &[Rule] = &[
    Rule {
        id: "PST-S001",
        name: "irreducible-loop",
        severity: Severity::Warning,
        summary: "a retreating edge targets a node that does not dominate its source \
                  (irreducible control flow; witness edges listed)",
        example: "  0->1 1->2 2->1 0->2   # the cycle {1,2} can be entered at 1 or at 2",
        fix: "restructure the overlapping jumps so every loop has a single header \
              that dominates its body (node splitting or an explicit dispatch flag)",
    },
    Rule {
        id: "PST-S002",
        name: "multi-entry-loop",
        severity: Severity::Warning,
        summary: "a strongly connected component is entered at two or more distinct nodes",
        example: "  0->1 0->2 1->2 2->1 1->3 2->3   # edges from outside reach both 1 and 2",
        fix: "funnel all entries through one loop header so the loop forms a \
              single-entry region the PST can nest",
    },
    Rule {
        id: "PST-S003",
        name: "unreachable-code",
        severity: Severity::Warning,
        summary: "statements or nodes that no entry-to-exit path executes were pruned",
        example: "  fn f(a) { return a; b = 1; }   # the assignment follows the return",
        fix: "delete the dead statements, or fix the control flow that was supposed \
              to reach them",
    },
    Rule {
        id: "PST-S004",
        name: "infinite-region",
        severity: Severity::Warning,
        summary: "a region cannot reach the exit (virtual exit edges were synthesized)",
        example: "  0->1 1->2 2->1   # the cycle {1,2} has no edge leaving it",
        fix: "give the trapped region an exit path (a break condition or error \
              return); canonicalization only papers over it with a virtual edge",
    },
    Rule {
        id: "PST-S005",
        name: "bureaucratic-regions",
        severity: Severity::Info,
        summary: "a chain of single-node SESE regions whose nodes do nothing \
                  (label ladders, empty plumbing)",
        example: "  0->1 1->2 2->3 3->4   # a straight-line ladder of empty blocks",
        fix: "collapse the pass-through blocks; they add PST depth without adding \
              structure",
    },
    Rule {
        id: "PST-C001",
        name: "vacuous-branch",
        severity: Severity::Warning,
        summary: "every successor of a branch is control-equivalent to the branch itself, \
                  so the branch decides nothing",
        example: "  0->1 0->1   # both arms of the branch at 0 land on the same node",
        fix: "remove the condition or make the arms actually diverge; as written the \
              test's outcome is unobservable",
    },
    Rule {
        id: "PST-C002",
        name: "empty-branch-arm",
        severity: Severity::Warning,
        summary: "a branch arm is an empty region that falls straight back into the \
                  branch's own control region",
        example: "  fn f(c) { if (c) { } return c; }   # the then-arm does nothing",
        fix: "drop the empty arm (invert the condition if the other arm has the \
              body), or fill in the work the arm was meant to do",
    },
    Rule {
        id: "PST-C101",
        name: "invariant-loop-guard",
        severity: Severity::Warning,
        summary: "a loop guard reads only variables no statement in the loop body can \
                  change, so once entered the loop can never terminate by itself",
        example: "  fn spin(n) { m = n; while (m > 0) { n = n - 1; } return n; }",
        fix: "update the guard's variables inside the loop body, or guard on the \
              variable the body actually modifies",
    },
    Rule {
        id: "PST-C102",
        name: "synthetic-termination-dependence",
        severity: Severity::Warning,
        summary: "code is control dependent on a predicate that only branches because \
                  canonicalization synthesized a virtual loop exit — the real program \
                  decides it by (not) terminating",
        example: "  0->1 1->2 2->1   # node 2's only 'branch' is the synthetic exit on the cycle",
        fix: "give the trapped loop a real exit condition so downstream code depends \
              on an actual branch instead of a termination assumption",
    },
    Rule {
        id: "PST-C103",
        name: "order-dependent-pair",
        severity: Severity::Warning,
        summary: "two nodes always both execute, but a branch decides which runs first \
                  (a decisive order dependence / DOD witness); node-level slicing that \
                  ignores order will miscompile this",
        example: "  0->1 0->2 1->2 2->1   # the branch at 0 picks whether 1 or 2 runs first",
        fix: "if the two program points share state, order matters: restructure so \
              the order is fixed, or make the slicer order-aware",
    },
    Rule {
        id: "PST-D001",
        name: "uninitialized-use",
        severity: Severity::Error,
        summary: "a variable is read where no definition reaches (sparse reaching \
                  definitions over the QPG)",
        example: "  fn f(a) { if (a) { x = 1; } return x; }   # x unset when a is false",
        fix: "initialize the variable on every path before the read",
    },
    Rule {
        id: "PST-D002",
        name: "dead-definition",
        severity: Severity::Warning,
        summary: "an assignment whose value no use can observe",
        example: "  fn f(a) { x = 1; x = 2; return x; }   # the first store is overwritten",
        fix: "delete the assignment, or fix the code that was supposed to read it",
    },
];

/// Looks a rule up by its stable id (`PST-S001`) or short name
/// (`irreducible-loop`).
pub fn find_rule(key: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == key || r.name == key)
}

/// One finding of one rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`PST-S001`, …).
    pub rule: &'static str,
    /// Effective severity (after [`LintConfig`] adjustment).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source position, when the input is a mini-language program and the
    /// finding anchors to a statement.
    pub pos: Option<SrcPos>,
    /// CFG nodes involved (innermost first, may be empty).
    pub nodes: Vec<NodeId>,
    /// CFG edges involved, as `(source, target)` endpoint pairs.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Diagnostic {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("rule", Json::Str(self.rule.to_string())),
            ("severity", Json::Str(self.severity.label().to_string())),
            ("message", Json::Str(self.message.clone())),
        ];
        if let Some(pos) = self.pos {
            fields.push((
                "pos",
                Json::obj([
                    ("line", Json::UInt(u64::from(pos.line))),
                    ("col", Json::UInt(u64::from(pos.col))),
                ]),
            ));
        }
        fields.push((
            "nodes",
            Json::Arr(
                self.nodes
                    .iter()
                    .map(|n| Json::UInt(n.index() as u64))
                    .collect(),
            ),
        ));
        fields.push((
            "edges",
            Json::Arr(
                self.edges
                    .iter()
                    .map(|&(s, t)| {
                        Json::Arr(vec![
                            Json::UInt(s.index() as u64),
                            Json::UInt(t.index() as u64),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.severity, self.message, self.rule)?;
        if let Some(pos) = self.pos {
            write!(f, " at {pos}")?;
        }
        Ok(())
    }
}

/// Per-rule override requested on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RuleAction {
    /// Silence the rule entirely.
    Allow,
    /// Escalate every finding of the rule to [`Severity::Error`].
    Deny,
}

/// Which rules run and at what severity.
///
/// The default configuration runs every shipped rule at its catalog
/// severity. `allow` silences a rule; `deny` escalates it to
/// [`Severity::Error`].
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: Vec<(&'static str, RuleAction)>,
}

impl LintConfig {
    /// The default configuration: every rule at catalog severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Silences `rule` (stable id or short name).
    ///
    /// # Errors
    ///
    /// Returns the unknown key back if it names no shipped rule.
    pub fn allow(&mut self, rule: &str) -> Result<(), String> {
        let r = find_rule(rule).ok_or_else(|| rule.to_string())?;
        self.overrides.push((r.id, RuleAction::Allow));
        Ok(())
    }

    /// Escalates `rule` (stable id or short name) to [`Severity::Error`].
    ///
    /// # Errors
    ///
    /// Returns the unknown key back if it names no shipped rule.
    pub fn deny(&mut self, rule: &str) -> Result<(), String> {
        let r = find_rule(rule).ok_or_else(|| rule.to_string())?;
        self.overrides.push((r.id, RuleAction::Deny));
        Ok(())
    }

    /// Whether findings of `rule` should be reported at all.
    pub fn is_enabled(&self, rule: &Rule) -> bool {
        self.action(rule.id) != Some(RuleAction::Allow)
    }

    /// The effective severity of `rule` under this configuration.
    pub fn severity(&self, rule: &Rule) -> Severity {
        match self.action(rule.id) {
            Some(RuleAction::Deny) => Severity::Error,
            _ => rule.severity,
        }
    }

    /// Last `allow`/`deny` wins, mirroring compiler lint flags.
    fn action(&self, id: &str) -> Option<RuleAction> {
        self.overrides
            .iter()
            .rev()
            .find(|(r, _)| *r == id)
            .map(|&(_, a)| a)
    }
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// The findings, in rule-catalog order.
    pub diagnostics: Vec<Diagnostic>,
    /// Stable ids of the rules that actually ran (enabled and applicable
    /// to the input kind).
    pub rules_run: Vec<&'static str>,
}

impl LintReport {
    /// True when no diagnostic was emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The most severe diagnostic, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Machine-readable form; `input` names the linted unit (file path or
    /// function name).
    pub fn to_json(&self, input: &str) -> Json {
        Json::obj([
            ("input", Json::Str(input.to_string())),
            (
                "rules_run",
                Json::Arr(
                    self.rules_run
                        .iter()
                        .map(|r| Json::Str(r.to_string()))
                        .collect(),
                ),
            ),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }

    /// Human-readable form, one line per diagnostic.
    pub fn render_text(&self, input: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{input}: {d}");
        }
        let _ = writeln!(
            out,
            "{input}: {} diagnostic(s) from {} rule(s)",
            self.diagnostics.len(),
            self.rules_run.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(r.id.starts_with("PST-"), "{}", r.id);
            assert!(find_rule(r.id).is_some());
            assert!(find_rule(r.name).is_some());
        }
    }

    #[test]
    fn allow_then_deny_last_wins() {
        let mut c = LintConfig::new();
        c.allow("PST-S001").unwrap();
        c.deny("irreducible-loop").unwrap();
        let rule = find_rule("PST-S001").unwrap();
        assert!(c.is_enabled(rule));
        assert_eq!(c.severity(rule), Severity::Error);
        c.allow("PST-S001").unwrap();
        assert!(!c.is_enabled(rule));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let mut c = LintConfig::new();
        assert!(c.allow("PST-X999").is_err());
        assert!(c.deny("nonsense").is_err());
    }

    #[test]
    fn severity_ordering_drives_max() {
        let mk = |rule, severity| Diagnostic {
            rule,
            severity,
            message: String::new(),
            pos: None,
            nodes: Vec::new(),
            edges: Vec::new(),
        };
        let report = LintReport {
            diagnostics: vec![
                mk("PST-S005", Severity::Info),
                mk("PST-D001", Severity::Error),
                mk("PST-S003", Severity::Warning),
            ],
            rules_run: vec!["PST-S005", "PST-D001", "PST-S003"],
        };
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn json_shape_is_stable() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "PST-D001",
                severity: Severity::Error,
                message: "read of `x` with no reaching definition".to_string(),
                pos: Some(SrcPos { line: 3, col: 7 }),
                nodes: vec![NodeId::from_index(2)],
                edges: vec![(NodeId::from_index(1), NodeId::from_index(2))],
            }],
            rules_run: vec!["PST-D001"],
        };
        let j = report.to_json("demo.mini");
        let text = j.to_string();
        let parsed = Json::parse(&text).expect("self-parse");
        assert_eq!(
            parsed.get("input").and_then(|v| match v {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("demo.mini")
        );
        let diags = match parsed.get("diagnostics") {
            Some(Json::Arr(a)) => a,
            other => panic!("diagnostics not an array: {other:?}"),
        };
        assert_eq!(diags.len(), 1);
        assert!(text.contains("\"line\":3") || text.contains("\"line\": 3"), "{text}");
    }
}
