//! Per-rule fixtures: every shipped rule has at least one firing and one
//! silent test, plus engine-level tests for configuration, JSON output and
//! the DOT export.

use pst_analysis::{
    dot_with_findings, find_rule, lint_function, lint_graph, LintConfig, LintReport, Severity,
    RULES,
};
use pst_cfg::{parse_edge_list_graph, CanonicalizeOptions};
use pst_lang::{lower_program, parse_program};

fn lint_src(src: &str) -> LintReport {
    let program = parse_program(src).expect("fixture parses");
    let lowered = lower_program(&program).expect("fixture lowers");
    lint_function(&lowered[0], Some(&program.functions[0]), &LintConfig::new())
}

fn lint_edges(description: &str) -> LintReport {
    let (graph, entry) = parse_edge_list_graph(description).expect("fixture parses");
    lint_graph(&graph, entry, &CanonicalizeOptions::default(), &LintConfig::new())
        .expect("fixture canonicalizes")
        .report
}

fn fired(report: &LintReport, rule: &str) -> bool {
    report.diagnostics.iter().any(|d| d.rule == rule)
}

const STRUCTURED: &str = "fn clean(n) {
    total = 0;
    i = 0;
    while (i < n) {
        if (i > 10) { total = total + i; } else { total = total + 1; }
        i = i + 1;
    }
    return total;
}";

const GOTO_INTO_LOOP: &str = "fn g(n) {
    if (n > 0) { goto inside; }
    while (n < 10) {
        inside: n = n + 1;
    }
    return n;
}";

// ---------------------------------------------------------------- PST-S001

#[test]
fn s001_fires_on_goto_into_loop_body() {
    let report = lint_src(GOTO_INTO_LOOP);
    assert!(fired(&report, "PST-S001"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-S001")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.edges.len(), 1, "one witness edge per finding");
}

#[test]
fn s001_silent_on_structured_program() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-S001"));
}

// ---------------------------------------------------------------- PST-S002

#[test]
fn s002_fires_on_multi_entry_cycle() {
    let report = lint_src(GOTO_INTO_LOOP);
    assert!(fired(&report, "PST-S002"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-S002")
        .unwrap();
    assert!(d.nodes.len() >= 2, "both entry points are named");
}

#[test]
fn s002_silent_on_single_entry_loops() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-S002"));
}

// ---------------------------------------------------------------- PST-S003

#[test]
fn s003_fires_on_code_after_return() {
    let report = lint_src("fn f(n) { return n; n = n + 1; return n; }");
    assert!(fired(&report, "PST-S003"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-S003")
        .unwrap();
    assert!(d.message.contains("2 statement(s)"), "{}", d.message);
}

#[test]
fn s003_fires_on_unreachable_graph_node() {
    // Node 2 has no path from the entry; canonicalization prunes it and
    // the lint reports the pruned input node.
    let report = lint_edges("0->1\n2->1");
    assert!(fired(&report, "PST-S003"), "{report:?}");
}

#[test]
fn s003_silent_when_everything_executes() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-S003"));
    assert!(!fired(&lint_edges("0->1\n1->2"), "PST-S003"));
}

// ---------------------------------------------------------------- PST-S004

#[test]
fn s004_fires_on_inescapable_loop() {
    // Node 3 loops forever and never reaches the sink 2.
    let report = lint_edges("0->1\n1->2\n1->3\n3->3");
    assert!(fired(&report, "PST-S004"), "{report:?}");
}

#[test]
fn s004_fires_when_no_sink_exists() {
    let report = lint_edges("0->1\n1->0");
    assert!(fired(&report, "PST-S004"), "{report:?}");
}

#[test]
fn s004_silent_when_exit_reaches_everything() {
    assert!(!fired(&lint_edges("0->1\n0->2\n1->3\n2->3"), "PST-S004"));
}

// ---------------------------------------------------------------- PST-S005

#[test]
fn s005_fires_on_label_ladder() {
    let report = lint_src("fn f(n) { l1: l2: l3: return n; }");
    assert!(fired(&report, "PST-S005"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-S005")
        .unwrap();
    assert_eq!(d.severity, Severity::Info);
    assert!(d.nodes.len() >= 2, "the whole chain is named");
}

#[test]
fn s005_silent_on_single_label() {
    // One idle region is normal plumbing; only chains are bureaucratic.
    assert!(!fired(&lint_src("fn f(n) { l1: return n; }"), "PST-S005"));
    assert!(!fired(&lint_src(STRUCTURED), "PST-S005"));
}

// ---------------------------------------------------------------- PST-C001

#[test]
fn c001_fires_on_branch_with_one_destination() {
    // Both out-edges of node 0 land on node 1: the branch decides nothing.
    let report = lint_edges("0->1\n0->1\n1->2");
    assert!(fired(&report, "PST-C001"), "{report:?}");
}

#[test]
fn c001_silent_on_real_diamond() {
    assert!(!fired(&lint_edges("0->1\n0->2\n1->3\n2->3"), "PST-C001"));
    assert!(!fired(&lint_src(STRUCTURED), "PST-C001"));
}

// ---------------------------------------------------------------- PST-C002

#[test]
fn c002_fires_on_empty_then_branch() {
    let report = lint_src("fn f(n) { if (n > 0) { } return n; }");
    assert!(fired(&report, "PST-C002"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-C002")
        .unwrap();
    assert!(d.pos.is_some(), "anchored to the `if` keyword");
}

#[test]
fn c002_fires_on_empty_while_body() {
    assert!(fired(
        &lint_src("fn f(n) { while (n > 0) { } return n; }"),
        "PST-C002"
    ));
}

#[test]
fn c002_silent_on_empty_do_while_body() {
    // The do-while body executes exactly when its latch does (same control
    // region), so it is not a *conditional* empty arm.
    assert!(!fired(
        &lint_src("fn f(n) { do { } while (n > 0); return n; }"),
        "PST-C002"
    ));
}

#[test]
fn c002_silent_when_arms_do_work() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-C002"));
}

// ---------------------------------------------------------------- PST-C101

#[test]
fn c101_fires_on_loop_that_never_updates_its_guard() {
    // The guard reads `m`; the body only changes `n`.
    let report = lint_src("fn spin(n) { m = n; while (m > 0) { n = n - 1; } return n; }");
    assert!(fired(&report, "PST-C101"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-C101")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains('m'), "{}", d.message);
    assert!(d.pos.is_some(), "anchored to the `while` keyword");
}

#[test]
fn c101_fires_on_invariant_inner_loop_of_healthy_outer() {
    // The outer loop makes progress on `i`; the inner one never touches `m`.
    let src = "fn f(n) {
        i = 0;
        m = n;
        while (i < n) {
            while (m > 0) { i = i + 2; }
            i = i + 1;
        }
        return i;
    }";
    assert!(fired(&lint_src(src), "PST-C101"));
}

#[test]
fn c101_silent_when_the_body_updates_the_guard() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-C101"));
    assert!(!fired(
        &lint_src("fn f(n) { while (n > 0) { n = n - 1; } return n; }"),
        "PST-C101"
    ));
}

// ---------------------------------------------------------------- PST-C102

#[test]
fn c102_fires_on_dependence_via_virtual_loop_exit() {
    // The cycle {1,2} cannot reach a sink; canonicalization adds a virtual
    // exit edge, and only that synthetic branch makes anything control
    // dependent on the cycle.
    let report = lint_edges("0->1\n1->2\n2->1");
    assert!(fired(&report, "PST-C102"), "{report:?}");
}

#[test]
fn c102_silent_when_every_loop_has_a_real_exit() {
    assert!(!fired(&lint_edges("0->1\n1->2\n2->1\n1->3"), "PST-C102"));
    assert!(!fired(&lint_edges("0->1\n1->2"), "PST-C102"));
}

// ---------------------------------------------------------------- PST-C103

#[test]
fn c103_fires_on_order_deciding_branch() {
    // 1 and 2 always both execute, but the branch at 0 decides the order.
    let report = lint_edges("0->1\n0->2\n1->2\n2->1");
    assert!(fired(&report, "PST-C103"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-C103")
        .unwrap();
    assert!(d.nodes.len() >= 3, "branch plus the ordered pair are named");
}

#[test]
fn c103_silent_on_order_free_graphs() {
    assert!(!fired(&lint_edges("0->1\n0->2\n1->3\n2->3"), "PST-C103"));
    assert!(!fired(&lint_edges("0->1\n1->2\n2->1\n1->3"), "PST-C103"));
}

// ---------------------------------------------------------------- PST-D001

#[test]
fn d001_fires_on_read_of_never_assigned_variable() {
    let report = lint_src("fn f(n) { return m; }");
    assert!(fired(&report, "PST-D001"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-D001")
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains('m'), "{}", d.message);
}

#[test]
fn d001_fires_on_use_before_definition_in_same_block() {
    assert!(fired(
        &lint_src("fn f(n) { x = m; m = 1; return x; }"),
        "PST-D001"
    ));
}

#[test]
fn d001_silent_when_some_path_defines() {
    // May-analysis: one path defines `m`, so the read is not *certainly*
    // uninitialized and the rule stays quiet.
    assert!(!fired(
        &lint_src("fn f(n) { if (n > 0) { m = 1; } return m; }"),
        "PST-D001"
    ));
}

#[test]
fn d001_silent_on_parameters() {
    assert!(!fired(&lint_src("fn f(n) { return n; }"), "PST-D001"));
}

// ---------------------------------------------------------------- PST-D002

#[test]
fn d002_fires_on_overwritten_definition() {
    let report = lint_src("fn f(n) { x = 1; x = 2; return x; }");
    assert!(fired(&report, "PST-D002"), "{report:?}");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-D002")
        .unwrap();
    assert!(d.message.contains("x = 1"), "{}", d.message);
    assert!(d.pos.is_some());
}

#[test]
fn d002_silent_when_every_definition_is_read() {
    assert!(!fired(&lint_src(STRUCTURED), "PST-D002"));
    // A loop-carried definition is consumed by the next iteration.
    assert!(!fired(
        &lint_src("fn f(n) { while (n > 0) { n = n - 1; } return n; }"),
        "PST-D002"
    ));
}

#[test]
fn d002_silent_on_unused_parameters() {
    // Parameters have no source position and are exempt by design.
    assert!(!fired(&lint_src("fn f(n, unused) { return n; }"), "PST-D002"));
}

// ------------------------------------------------------------ engine-level

#[test]
fn allow_silences_and_removes_from_rules_run() {
    let program = parse_program("fn f(n) { return m; }").unwrap();
    let lowered = lower_program(&program).unwrap();
    let mut config = LintConfig::new();
    config.allow("uninitialized-use").unwrap();
    let report = lint_function(&lowered[0], Some(&program.functions[0]), &config);
    assert!(!fired(&report, "PST-D001"));
    assert!(!report.rules_run.contains(&"PST-D001"));
}

#[test]
fn deny_escalates_to_error() {
    let program = parse_program("fn f(n) { l1: l2: l3: return n; }").unwrap();
    let lowered = lower_program(&program).unwrap();
    let mut config = LintConfig::new();
    config.deny("bureaucratic-regions").unwrap();
    let report = lint_function(&lowered[0], Some(&program.functions[0]), &config);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PST-S005")
        .expect("still fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(report.max_severity(), Some(Severity::Error));
}

#[test]
fn every_rule_has_catalog_metadata() {
    for rule in RULES {
        assert!(find_rule(rule.id).is_some());
        assert!(!rule.summary.is_empty());
    }
}

#[test]
fn mini_reports_run_the_mini_rule_set() {
    let report = lint_src(STRUCTURED);
    for id in [
        "PST-S001", "PST-S002", "PST-S003", "PST-S005", "PST-C001", "PST-C002", "PST-C101",
        "PST-D001", "PST-D002",
    ] {
        assert!(report.rules_run.contains(&id), "{id} should run on mini input");
    }
    assert!(
        !report.rules_run.contains(&"PST-S004"),
        "S004 is graph-only (mini lowering rejects inescapable loops first)"
    );
}

#[test]
fn graph_reports_run_the_graph_rule_set() {
    let (graph, entry) = parse_edge_list_graph("0->1\n1->2").unwrap();
    let lint = lint_graph(
        &graph,
        entry,
        &CanonicalizeOptions::default(),
        &LintConfig::new(),
    )
    .unwrap();
    for id in [
        "PST-S001", "PST-S002", "PST-S003", "PST-S004", "PST-C001", "PST-C102", "PST-C103",
    ] {
        assert!(lint.report.rules_run.contains(&id), "{id} should run on graphs");
    }
    assert!(!lint.report.rules_run.contains(&"PST-D001"));
}

#[test]
fn json_round_trips_and_names_the_input() {
    let report = lint_src(GOTO_INTO_LOOP);
    let json = report.to_json("goto.mini").to_string();
    let parsed = pst_obs::json::Json::parse(&json).expect("valid JSON");
    assert!(json.contains("PST-S001"));
    let diags = match parsed.get("diagnostics") {
        Some(pst_obs::json::Json::Arr(a)) => a.len(),
        other => panic!("diagnostics missing: {other:?}"),
    };
    assert_eq!(diags, report.diagnostics.len());
}

#[test]
fn dot_export_highlights_findings() {
    let (graph, entry) = parse_edge_list_graph("0->1\n0->1\n1->2").unwrap();
    let lint = lint_graph(
        &graph,
        entry,
        &CanonicalizeOptions::default(),
        &LintConfig::new(),
    )
    .unwrap();
    assert!(fired(&lint.report, "PST-C001"));
    let dot = dot_with_findings(lint.canonical.cfg.graph(), &lint.report);
    assert!(dot.contains("color=red"), "{dot}");
    // A clean graph renders with no highlight attributes at all.
    let (g2, e2) = parse_edge_list_graph("0->1\n1->2").unwrap();
    let clean = lint_graph(&g2, e2, &CanonicalizeOptions::default(), &LintConfig::new()).unwrap();
    let dot2 = dot_with_findings(clean.canonical.cfg.graph(), &clean.report);
    assert!(!dot2.contains("color="), "{dot2}");
}
