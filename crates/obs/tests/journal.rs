//! Journal schema contracts, proptested: every event type serializes →
//! parses → re-serializes identically, across arbitrary strings
//! (including quotes, backslashes, and non-ASCII that exercise the JSON
//! escaper), levels, and sequence offsets.

use proptest::collection::vec;
use proptest::prelude::*;
use pst_obs::journal::{Event, Level, Record};
use pst_obs::json::Json;

/// Strings that stress the emitter: escapes, unicode, emptiness.
fn string_strategy() -> impl Strategy<Value = String> {
    vec(
        proptest::sample::select(vec![
            "a", "B", "0", "_", "-", " ", "\"", "\\", "\n", "\t", "/", "µ", "⊕", "seed:",
            "examples/fig1.mini#f", "PST-S001",
        ]),
        0..8,
    )
    .prop_map(|parts| parts.concat())
}

fn level_strategy() -> impl Strategy<Value = Level> {
    proptest::sample::select(vec![Level::Info, Level::Warn, Level::Error])
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let s = string_strategy;
    prop_oneof![
        (s(), vec(s(), 0..5)).prop_map(|(command, args)| Event::RunStart { command, args }),
        (s(), 0u64..300, 0u64..u64::MAX).prop_map(|(command, exit_code, nanos)| {
            Event::RunEnd {
                command,
                exit_code,
                nanos,
            }
        }),
        (s(), 0u64..u64::MAX, 0u64..1_000_000).prop_map(|(unit, nanos, count)| {
            Event::UnitSummary { unit, nanos, count }
        }),
        (s(), s(), s(), s()).prop_map(|(unit, rule, severity, message)| Event::LintFinding {
            unit,
            rule,
            severity,
            message,
        }),
        (0u64..u64::MAX, s(), s(), proptest::option::of(s())).prop_map(
            |(seed, kind, detail, reproducer)| Event::FuzzCrash {
                seed,
                kind,
                detail,
                reproducer,
            }
        ),
        (s(), proptest::option::of(s()), 0u64..u64::MAX, 0u64..u64::MAX).prop_map(
            |(method, unit, total_nanos, compute_nanos)| Event::SlowRequest {
                method,
                unit,
                total_nanos,
                compute_nanos,
            }
        ),
        (s(), s(), 0u64..100, proptest::sample::select(vec![true, false])).prop_map(
            |(baseline, candidate, findings, passed)| Event::BenchVerdict {
                baseline,
                candidate,
                findings,
                passed,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    #[test]
    fn every_event_type_round_trips_identically(
        seq in 0u64..u64::MAX,
        level in level_strategy(),
        event in event_strategy(),
    ) {
        let record = Record {
            seq,
            trace: pst_obs::journal::mint_trace_id(Some(seq)),
            level,
            event,
        };
        // serialize → parse → re-serialize must be byte-identical.
        let line = record.to_json().to_string();
        let reparsed = Record::parse_line(&line);
        prop_assert_eq!(reparsed.as_ref(), Some(&record));
        prop_assert_eq!(reparsed.unwrap().to_json().to_string(), line);
        // And the JSON itself is valid for third-party consumers.
        prop_assert!(Json::parse(&line).is_ok());
    }
}

#[test]
fn unknown_type_tags_and_missing_fields_are_rejected() {
    let good = Record {
        seq: 0,
        trace: "0".repeat(16),
        level: Level::Info,
        event: Event::UnitSummary {
            unit: "u".into(),
            nanos: 1,
            count: 1,
        },
    };
    let line = good.to_json().to_string();
    assert!(Record::parse_line(&line).is_some());
    assert!(Record::parse_line(&line.replace("unit_summary", "mystery_event")).is_none());
    assert!(Record::parse_line(&line.replace("\"level\":\"info\"", "\"level\":\"loud\"")).is_none());
}
