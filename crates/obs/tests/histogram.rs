//! Histogram contracts, proptested: quantile answers against an exact
//! sorted-vector oracle, and merge associativity/commutativity — the
//! property that makes per-thread, per-unit, and per-run folds
//! order-independent.

use proptest::collection::vec;
use proptest::prelude::*;
use pst_obs::hist::{Histogram, SUBBUCKETS};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact order statistic the histogram approximates: the smallest
/// element whose rank reaches `ceil(q·n)` (clamped to rank 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Values spanning the full log-linear grid: the exact linear range,
/// bucket boundaries, and wide magnitudes.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        (0u32..40).prop_flat_map(|e| {
            let lo = 1u64 << e;
            lo..(lo.saturating_mul(2))
        }),
        0u64..u64::MAX,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn quantiles_match_the_sorted_oracle_within_bucket_error(
        values in vec(value_strategy(), 1..200),
        // The vendored proptest has no float ranges; q = k/1000.
        qs in vec((0u64..=1000).prop_map(|k| k as f64 / 1000.0), 1..8),
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let exact = exact_quantile(&sorted, q);
            let approx = h.quantile(q);
            // The walk lands in the bucket containing the exact order
            // statistic, and the midpoint representative is within one
            // bucket width (≤ exact/SUBBUCKETS·2, +1 for rounding).
            let tolerance = exact / (SUBBUCKETS / 2) + 1;
            prop_assert!(
                approx.abs_diff(exact) <= tolerance,
                "q={q}: approx {approx} vs exact {exact} (tolerance {tolerance})"
            );
            prop_assert!(h.min() <= approx && approx <= h.max());
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_is_commutative_and_associative(
        xs in vec(value_strategy(), 0..60),
        ys in vec(value_strategy(), 0..60),
        zs in vec(value_strategy(), 0..60),
    ) {
        let (hx, hy, hz) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // Commutativity: x+y == y+x.
        let mut xy = hx.clone();
        xy.merge_from(&hy);
        let mut yx = hy.clone();
        yx.merge_from(&hx);
        prop_assert_eq!(&xy, &yx);

        // Associativity: (x+y)+z == x+(y+z).
        let mut xy_z = xy.clone();
        xy_z.merge_from(&hz);
        let mut yz = hy.clone();
        yz.merge_from(&hz);
        let mut x_yz = hx.clone();
        x_yz.merge_from(&yz);
        prop_assert_eq!(&xy_z, &x_yz);

        // And the fold equals recording every value into one histogram.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&xy_z, &hist_of(&all));
    }

    #[test]
    fn json_round_trip_is_identity(values in vec(value_strategy(), 0..80)) {
        let h = hist_of(&values);
        let text = h.to_json().to_string();
        let parsed = pst_obs::json::Json::parse(&text).unwrap();
        prop_assert_eq!(Histogram::from_json(&parsed), Some(h));
    }
}
