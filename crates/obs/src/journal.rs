//! An append-only structured event journal.
//!
//! The metrics report answers "what did this run measure"; the journal
//! answers "what *happened*, across runs": a durable, append-only JSONL
//! stream of typed events — run start/end, per-unit summaries, lint
//! findings, fuzz crashes, serve slowlog entries, bench gate verdicts —
//! that `pst obs` can merge across many runs into one fleet view.
//!
//! Each line is one [`Record`]: a monotonic sequence offset (`seq`), a
//! run-scoped trace id (deterministic when the run was seeded via
//! `PST_TRACE_SEED`, time-derived otherwise), a [`Level`], the event
//! type tag, and the event payload. The schema round-trips exactly —
//! [`Record::to_json`] → [`Record::from_json`] is the identity — which
//! `tests/journal.rs` proptests over every event type.
//!
//! Unlike spans/counters (gated on the `enabled` feature because they
//! sit on hot paths), the journal is always compiled: it does I/O only
//! when [`install`]ed, and every write is one locked append. CLI
//! consumers install it from `--journal <path>` / `PST_JOURNAL`, where
//! `-` means stderr — the same convention as `--metrics-json`.

use std::io::Write as _;
use std::sync::Mutex;

use crate::json::Json;

/// Event severity, ordered so journals can be filtered with `>=`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Routine lifecycle events (run start/end, unit summaries).
    Info,
    /// Findings worth review (lint findings, gate regressions).
    Warn,
    /// Failures (fuzz crashes, violated invariants).
    Error,
}

impl Level {
    /// The wire name (`info` / `warn` / `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a wire name back into a level.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed journal event. Every variant carries only plain data so the
/// JSONL schema stays flat and greppable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A subcommand started.
    RunStart {
        /// The subcommand (`regions`, `lint`, `fuzz`, `bench`,
        /// `experiments`, ...).
        command: String,
        /// Arguments after the subcommand, as given.
        args: Vec<String>,
    },
    /// A subcommand finished (emitted even on failure exits).
    RunEnd {
        /// The subcommand that started this run.
        command: String,
        /// The process exit code the run resolved to.
        exit_code: u64,
        /// Wall time from `run_start` to this event, in nanoseconds.
        nanos: u64,
    },
    /// One unit's wall-time summary, mirrored from [`crate::Report::units`]
    /// so journal-derived rankings agree with the metrics JSON.
    UnitSummary {
        /// The unit id (e.g. `file.mini#fn`, `seed:42`, a workload name).
        unit: String,
        /// Total wall-time inside the unit's scopes, nanoseconds.
        nanos: u64,
        /// How many times the unit's scope was entered.
        count: u64,
    },
    /// One lint diagnostic.
    LintFinding {
        /// The unit the finding is about.
        unit: String,
        /// Rule id (`PST-S001`, ...).
        rule: String,
        /// Severity string as the lint engine reports it.
        severity: String,
        /// Human-readable message.
        message: String,
    },
    /// A fuzz case failed — a checker violation or a contained panic.
    FuzzCrash {
        /// The failing seed.
        seed: u64,
        /// `violation` or `panic`.
        kind: String,
        /// The violation/panic message.
        detail: String,
        /// Path of the minimized reproducer, when one was written.
        reproducer: Option<String>,
    },
    /// One `pst serve` request that crossed the daemon's slowlog
    /// threshold (`--slowlog-ms`), with its phase attribution so fleet
    /// views can tell a slow compute from a slow fault injection.
    SlowRequest {
        /// The RPC method (`pst`, `controldep`, ...).
        method: String,
        /// The unit the request resolved to, when it got that far.
        unit: Option<String>,
        /// End-to-end request wall time, nanoseconds.
        total_nanos: u64,
        /// Nanoseconds spent in the analysis compute phase.
        compute_nanos: u64,
    },
    /// The outcome of a `pst bench --compare` gate.
    BenchVerdict {
        /// Baseline file the candidate was gated against.
        baseline: String,
        /// Candidate file (or label) that was gated.
        candidate: String,
        /// Number of regression findings.
        findings: u64,
        /// Whether the gate passed.
        passed: bool,
    },
}

impl Event {
    /// The wire tag stored in the `type` field.
    pub fn type_str(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::RunEnd { .. } => "run_end",
            Event::UnitSummary { .. } => "unit_summary",
            Event::LintFinding { .. } => "lint_finding",
            Event::FuzzCrash { .. } => "fuzz_crash",
            Event::SlowRequest { .. } => "slow_request",
            Event::BenchVerdict { .. } => "bench_verdict",
        }
    }

    /// The default severity this event is journaled at.
    pub fn level(&self) -> Level {
        match self {
            Event::RunStart { .. } | Event::RunEnd { .. } | Event::UnitSummary { .. } => {
                Level::Info
            }
            Event::LintFinding { .. } | Event::SlowRequest { .. } | Event::BenchVerdict { .. } => {
                Level::Warn
            }
            Event::FuzzCrash { .. } => Level::Error,
        }
    }

    /// The variant's payload as the JSON object stored under `data`.
    pub fn data_json(&self) -> Json {
        match self {
            Event::RunStart { command, args } => Json::obj([
                ("command", Json::Str(command.clone())),
                (
                    "args",
                    Json::Arr(args.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
            ]),
            Event::RunEnd {
                command,
                exit_code,
                nanos,
            } => Json::obj([
                ("command", Json::Str(command.clone())),
                ("exit_code", Json::UInt(*exit_code)),
                ("nanos", Json::UInt(*nanos)),
            ]),
            Event::UnitSummary { unit, nanos, count } => Json::obj([
                ("unit", Json::Str(unit.clone())),
                ("nanos", Json::UInt(*nanos)),
                ("count", Json::UInt(*count)),
            ]),
            Event::LintFinding {
                unit,
                rule,
                severity,
                message,
            } => Json::obj([
                ("unit", Json::Str(unit.clone())),
                ("rule", Json::Str(rule.clone())),
                ("severity", Json::Str(severity.clone())),
                ("message", Json::Str(message.clone())),
            ]),
            Event::FuzzCrash {
                seed,
                kind,
                detail,
                reproducer,
            } => Json::obj([
                ("seed", Json::UInt(*seed)),
                ("kind", Json::Str(kind.clone())),
                ("detail", Json::Str(detail.clone())),
                (
                    "reproducer",
                    match reproducer {
                        Some(p) => Json::Str(p.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            Event::SlowRequest {
                method,
                unit,
                total_nanos,
                compute_nanos,
            } => Json::obj([
                ("method", Json::Str(method.clone())),
                (
                    "unit",
                    match unit {
                        Some(u) => Json::Str(u.clone()),
                        None => Json::Null,
                    },
                ),
                ("total_nanos", Json::UInt(*total_nanos)),
                ("compute_nanos", Json::UInt(*compute_nanos)),
            ]),
            Event::BenchVerdict {
                baseline,
                candidate,
                findings,
                passed,
            } => Json::obj([
                ("baseline", Json::Str(baseline.clone())),
                ("candidate", Json::Str(candidate.clone())),
                ("findings", Json::UInt(*findings)),
                ("passed", Json::Bool(*passed)),
            ]),
        }
    }

    fn from_parts(tag: &str, data: &Json) -> Option<Event> {
        fn s(j: &Json, key: &str) -> Option<String> {
            match j.get(key)? {
                Json::Str(v) => Some(v.clone()),
                _ => None,
            }
        }
        match tag {
            "run_start" => {
                let Json::Arr(items) = data.get("args")? else {
                    return None;
                };
                let mut args = Vec::with_capacity(items.len());
                for item in items {
                    let Json::Str(a) = item else { return None };
                    args.push(a.clone());
                }
                Some(Event::RunStart {
                    command: s(data, "command")?,
                    args,
                })
            }
            "run_end" => Some(Event::RunEnd {
                command: s(data, "command")?,
                exit_code: data.get("exit_code")?.as_u64()?,
                nanos: data.get("nanos")?.as_u64()?,
            }),
            "unit_summary" => Some(Event::UnitSummary {
                unit: s(data, "unit")?,
                nanos: data.get("nanos")?.as_u64()?,
                count: data.get("count")?.as_u64()?,
            }),
            "lint_finding" => Some(Event::LintFinding {
                unit: s(data, "unit")?,
                rule: s(data, "rule")?,
                severity: s(data, "severity")?,
                message: s(data, "message")?,
            }),
            "fuzz_crash" => Some(Event::FuzzCrash {
                seed: data.get("seed")?.as_u64()?,
                kind: s(data, "kind")?,
                detail: s(data, "detail")?,
                reproducer: match data.get("reproducer")? {
                    Json::Null => None,
                    Json::Str(p) => Some(p.clone()),
                    _ => return None,
                },
            }),
            "slow_request" => Some(Event::SlowRequest {
                method: s(data, "method")?,
                unit: match data.get("unit")? {
                    Json::Null => None,
                    Json::Str(u) => Some(u.clone()),
                    _ => return None,
                },
                total_nanos: data.get("total_nanos")?.as_u64()?,
                compute_nanos: data.get("compute_nanos")?.as_u64()?,
            }),
            "bench_verdict" => Some(Event::BenchVerdict {
                baseline: s(data, "baseline")?,
                candidate: s(data, "candidate")?,
                findings: data.get("findings")?.as_u64()?,
                passed: match data.get("passed")? {
                    Json::Bool(b) => *b,
                    _ => return None,
                },
            }),
            _ => None,
        }
    }
}

/// One journal line: a sequenced, trace-stamped, levelled [`Event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Monotonic offset within the journal (0-based).
    pub seq: u64,
    /// 16-hex-digit run trace id; all records of one run share it.
    pub trace: String,
    /// Severity.
    pub level: Level,
    /// The event payload.
    pub event: Event,
}

impl Record {
    /// Serializes the record as one JSON object. Schema:
    ///
    /// ```json
    /// {"seq": 0, "trace": "9b60933458e17dc1", "level": "info",
    ///  "type": "run_start", "data": {"command": "bench", "args": []}}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("trace", Json::Str(self.trace.clone())),
            ("level", Json::Str(self.level.as_str().to_string())),
            ("type", Json::Str(self.event.type_str().to_string())),
            ("data", self.event.data_json()),
        ])
    }

    /// Reads a record back from [`Record::to_json`] output. Returns
    /// `None` on any schema mismatch (unknown type tag, wrong field
    /// shapes).
    pub fn from_json(j: &Json) -> Option<Record> {
        let seq = j.get("seq")?.as_u64()?;
        let Json::Str(trace) = j.get("trace")? else {
            return None;
        };
        let Json::Str(level) = j.get("level")? else {
            return None;
        };
        let Json::Str(tag) = j.get("type")? else {
            return None;
        };
        Some(Record {
            seq,
            trace: trace.clone(),
            level: Level::parse(level)?,
            event: Event::from_parts(tag, j.get("data")?)?,
        })
    }

    /// Parses one JSONL line into a record.
    pub fn parse_line(line: &str) -> Option<Record> {
        Record::from_json(&Json::parse(line.trim()).ok()?)
    }
}

/// The installed sink. `None` until [`install`] succeeds; every write
/// holds the lock for one line append (the journal is nowhere near a
/// hot path — events are per-run, per-unit, per-finding).
struct Sink {
    out: Box<dyn std::io::Write + Send>,
    trace: String,
    seq: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// SplitMix64 step — enough mixing to turn a small seed or a timestamp
/// into a well-spread 64-bit trace id.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mints the run trace id: deterministic from `seed` when given (so
/// seeded runs journal reproducibly), otherwise derived from wall-clock
/// nanoseconds.
pub fn mint_trace_id(seed: Option<u64>) -> String {
    let raw = match seed {
        Some(s) => s,
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
    };
    format!("{:016x}", splitmix64(raw))
}

/// Opens the journal sink. `target` is a file path opened in append
/// mode, or `-` for stderr (the `--metrics-json` convention). `seed`
/// makes the trace id deterministic (CLI: `PST_TRACE_SEED`).
/// Reinstalling replaces the sink and restarts `seq` at 0.
pub fn install(target: &str, seed: Option<u64>) -> std::io::Result<()> {
    let out: Box<dyn std::io::Write + Send> = if target == "-" {
        Box::new(std::io::stderr())
    } else {
        Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(target)?,
        )
    };
    let sink = Sink {
        out,
        trace: mint_trace_id(seed),
        seq: 0,
    };
    *lock_sink() = Some(sink);
    Ok(())
}

/// Whether a journal sink is installed.
pub fn installed() -> bool {
    lock_sink().is_some()
}

/// The current run's trace id, if a sink is installed.
pub fn trace_id() -> Option<String> {
    lock_sink().as_ref().map(|s| s.trace.clone())
}

/// Flushes the installed sink without removing it. No-op when no sink
/// is installed. Long-lived processes (the serve daemon's drain path)
/// call this at lifecycle edges; per-event writes already flush
/// line-by-line, so this exists to force out any buffering an exotic
/// sink might add.
pub fn flush() {
    if let Some(sink) = lock_sink().as_mut() {
        let _ = sink.out.flush();
    }
}

/// Removes the sink (tests; also flushes). Subsequent [`emit`]s no-op.
pub fn uninstall() {
    if let Some(mut sink) = lock_sink().take() {
        let _ = sink.out.flush();
    }
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Appends one event at its default severity. No-op when no sink is
/// installed. Returns the record's sequence offset when written.
pub fn emit(event: Event) -> Option<u64> {
    let level = event.level();
    emit_at(level, event)
}

/// Appends one event at an explicit severity. No-op when no sink is
/// installed; write errors are swallowed (telemetry must never take
/// down the pipeline it observes).
pub fn emit_at(level: Level, event: Event) -> Option<u64> {
    let mut guard = lock_sink();
    let sink = guard.as_mut()?;
    let record = Record {
        seq: sink.seq,
        trace: sink.trace.clone(),
        level,
        event,
    };
    sink.seq += 1;
    let line = record.to_json().to_string();
    let _ = writeln!(sink.out, "{line}");
    let _ = sink.out.flush();
    Some(record.seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_deterministic_when_seeded() {
        assert_eq!(mint_trace_id(Some(7)), mint_trace_id(Some(7)));
        assert_ne!(mint_trace_id(Some(7)), mint_trace_id(Some(8)));
        assert_eq!(mint_trace_id(Some(7)).len(), 16);
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let record = Record {
            seq: 3,
            trace: mint_trace_id(Some(42)),
            level: Level::Error,
            event: Event::FuzzCrash {
                seed: 9,
                kind: "panic".into(),
                detail: "index out of bounds: \"quoted\"".into(),
                reproducer: Some("/tmp/repro.edges".into()),
            },
        };
        let line = record.to_json().to_string();
        assert_eq!(Record::parse_line(&line), Some(record));
        assert_eq!(Record::parse_line("not json"), None);
        assert_eq!(Record::parse_line("{\"seq\": 1}"), None);
    }

    #[test]
    fn emit_is_a_noop_without_a_sink_and_sequences_with_one() {
        uninstall();
        assert_eq!(
            emit(Event::UnitSummary {
                unit: "u".into(),
                nanos: 1,
                count: 1
            }),
            None
        );
        let dir = std::env::temp_dir().join(format!("pst-journal-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&path);
        install(path.to_str().unwrap(), Some(1)).unwrap();
        let first = emit(Event::RunStart {
            command: "test".into(),
            args: vec!["a".into()],
        });
        let second = emit_at(
            Level::Warn,
            Event::RunEnd {
                command: "test".into(),
                exit_code: 0,
                nanos: 5,
            },
        );
        uninstall();
        assert_eq!((first, second), (Some(0), Some(1)));
        let text = std::fs::read_to_string(&path).unwrap();
        let records: Vec<Record> = text.lines().map(|l| Record::parse_line(l).unwrap()).collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].event.type_str(), "run_start");
        assert_eq!(records[1].level, Level::Warn);
        assert_eq!(records[0].trace, records[1].trace);
        let _ = std::fs::remove_file(&path);
    }
}
