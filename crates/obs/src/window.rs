//! Windowed telemetry primitives: quantiles and rates *right now*, not
//! since process start.
//!
//! The lifetime [`Histogram`] answers "what was p99 over the whole
//! run"; a long-lived daemon needs "what is p99 over the last few
//! seconds". [`WindowedHistogram`] provides that as a bounded ring of
//! per-tick [`Histogram`] buckets, and [`RollingCounter`] is the same
//! shape for monotone counts (request/error/hit rates).
//!
//! Both are driven by an **injectable tick clock**: every mutation takes
//! an explicit `tick` (the caller derives it however it likes — the
//! serve daemon uses `elapsed_ms / window_ms`), and expiry is pure
//! arithmetic on tick numbers. There is no [`std::time::Instant`]
//! anywhere in the rotate or merge path, so tests can prove bucket
//! expiry exactly, tick by tick.
//!
//! Ticks are expected to be monotone. A stale tick below the retention
//! horizon (older than `windows - 1` ticks before the newest seen) is
//! clamped *to* the horizon rather than dropped: late recordings are
//! slightly mis-binned, never lost. Recording never moves time backwards.
//!
//! Both types serialize through the crate's JSON layer with the usual
//! `to_json` → `from_json` identity round trip.

use crate::hist::Histogram;
use crate::json::Json;

/// A ring of per-tick [`Histogram`] buckets with windowed quantile
/// queries. At most `windows` consecutive ticks are retained; recording
/// at a newer tick expires everything older than the retention horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowedHistogram {
    /// Retained `(tick, bucket)` pairs, sorted by tick ascending. Never
    /// longer than `windows`.
    slots: Vec<(u64, Histogram)>,
    /// Ring capacity in ticks.
    windows: usize,
    /// Newest tick ever seen (0 before any recording).
    tick: u64,
}

impl WindowedHistogram {
    /// An empty ring retaining `windows` ticks (clamped to at least 1).
    pub fn new(windows: usize) -> WindowedHistogram {
        WindowedHistogram {
            slots: Vec::new(),
            windows: windows.max(1),
            tick: 0,
        }
    }

    /// The ring capacity in ticks.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// The newest tick seen so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The oldest tick still retained at the current tick.
    fn horizon(&self) -> u64 {
        self.tick.saturating_sub(self.windows as u64 - 1)
    }

    /// Advances the clock to `tick` (if newer) and drops every bucket
    /// older than the retention horizon. Idle daemons call this before
    /// reading so windows with no traffic expire like any other.
    pub fn advance(&mut self, tick: u64) {
        if tick > self.tick {
            self.tick = tick;
        }
        let horizon = self.horizon();
        self.slots.retain(|(t, _)| *t >= horizon);
    }

    /// Records `value` at `tick` (see [`WindowedHistogram::record_n_at`]).
    pub fn record_at(&mut self, tick: u64, value: u64) {
        self.record_n_at(tick, value, 1);
    }

    /// Records `n` occurrences of `value` into the bucket for `tick`,
    /// first advancing the clock. Stale ticks below the retention
    /// horizon land in the horizon bucket instead of being dropped.
    pub fn record_n_at(&mut self, tick: u64, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.advance(tick);
        let t = tick.max(self.horizon());
        match self.slots.binary_search_by_key(&t, |(slot, _)| *slot) {
            Ok(i) => self.slots[i].1.record_n(value, n),
            Err(i) => {
                let mut h = Histogram::new();
                h.record_n(value, n);
                self.slots.insert(i, (t, h));
            }
        }
    }

    /// Merges the buckets of the last `last_n` ticks (ending at the
    /// current tick, inclusive) into one [`Histogram`]. `last_n` is
    /// clamped to `1..=windows`. Buckets outside the span contribute
    /// nothing; an idle span yields an empty histogram (whose quantiles
    /// are the documented benign 0).
    pub fn merged(&self, last_n: usize) -> Histogram {
        let last_n = last_n.clamp(1, self.windows) as u64;
        let lo = self.tick.saturating_sub(last_n - 1);
        let mut out = Histogram::new();
        for (t, h) in &self.slots {
            if *t >= lo {
                out.merge_from(h);
            }
        }
        out
    }

    /// Total recordings across all retained buckets.
    pub fn retained_count(&self) -> u64 {
        self.slots.iter().map(|(_, h)| h.count()).sum()
    }

    /// Serializes the ring. Schema:
    ///
    /// ```json
    /// {"windows": 8, "tick": 42,
    ///  "slots": [[41, {"count": 3, ...}], [42, {"count": 1, ...}]]}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("windows", Json::UInt(self.windows as u64)),
            ("tick", Json::UInt(self.tick)),
            (
                "slots",
                Json::Arr(
                    self.slots
                        .iter()
                        .map(|(t, h)| Json::Arr(vec![Json::UInt(*t), h.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a ring back from [`WindowedHistogram::to_json`] output.
    /// Returns `None` on any schema defect (unsorted or duplicate
    /// ticks, slots beyond the retention horizon, malformed buckets).
    pub fn from_json(j: &Json) -> Option<WindowedHistogram> {
        let windows = j.get("windows")?.as_u64()? as usize;
        if windows == 0 {
            return None;
        }
        let tick = j.get("tick")?.as_u64()?;
        let Json::Arr(items) = j.get("slots")? else {
            return None;
        };
        let mut out = WindowedHistogram {
            slots: Vec::with_capacity(items.len()),
            windows,
            tick,
        };
        for item in items {
            let Json::Arr(pair) = item else { return None };
            let [t, h] = pair.as_slice() else { return None };
            let t = t.as_u64()?;
            if t > tick || t < out.horizon() {
                return None;
            }
            if let Some((last, _)) = out.slots.last() {
                if *last >= t {
                    return None;
                }
            }
            out.slots.push((t, Histogram::from_json(h)?));
        }
        Some(out)
    }
}

/// A windowed monotone counter: per-tick increments in a bounded ring
/// plus a lifetime total that never expires. `sum(last_n)` answers
/// "how many in the last N ticks" (a rate, once divided by the window
/// span); `total()` stays monotone for exposition formats that require
/// counters to never decrease.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RollingCounter {
    /// Retained `(tick, count)` pairs, sorted by tick ascending.
    slots: Vec<(u64, u64)>,
    /// Ring capacity in ticks.
    windows: usize,
    /// Newest tick ever seen.
    tick: u64,
    /// Lifetime sum of every `add_at`, expired or not.
    total: u64,
}

impl RollingCounter {
    /// An empty counter retaining `windows` ticks (clamped to at least 1).
    pub fn new(windows: usize) -> RollingCounter {
        RollingCounter {
            slots: Vec::new(),
            windows: windows.max(1),
            tick: 0,
            total: 0,
        }
    }

    /// The ring capacity in ticks.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// The newest tick seen so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    fn horizon(&self) -> u64 {
        self.tick.saturating_sub(self.windows as u64 - 1)
    }

    /// Advances the clock to `tick` (if newer), expiring old slots.
    pub fn advance(&mut self, tick: u64) {
        if tick > self.tick {
            self.tick = tick;
        }
        let horizon = self.horizon();
        self.slots.retain(|(t, _)| *t >= horizon);
    }

    /// Adds `n` at `tick`, advancing the clock first. Stale ticks below
    /// the retention horizon are clamped to the horizon; the lifetime
    /// total grows either way.
    pub fn add_at(&mut self, tick: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.advance(tick);
        self.total += n;
        let t = tick.max(self.horizon());
        match self.slots.binary_search_by_key(&t, |(slot, _)| *slot) {
            Ok(i) => self.slots[i].1 += n,
            Err(i) => self.slots.insert(i, (t, n)),
        }
    }

    /// The sum over the last `last_n` ticks ending at the current tick,
    /// inclusive (`last_n` clamped to `1..=windows`).
    pub fn sum(&self, last_n: usize) -> u64 {
        let last_n = last_n.clamp(1, self.windows) as u64;
        let lo = self.tick.saturating_sub(last_n - 1);
        self.slots
            .iter()
            .filter(|(t, _)| *t >= lo)
            .map(|(_, n)| n)
            .sum()
    }

    /// The monotone lifetime total (includes expired ticks).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Serializes the counter. Schema:
    ///
    /// ```json
    /// {"windows": 8, "tick": 42, "total": 129,
    ///  "slots": [[41, 3], [42, 1]]}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("windows", Json::UInt(self.windows as u64)),
            ("tick", Json::UInt(self.tick)),
            ("total", Json::UInt(self.total)),
            (
                "slots",
                Json::Arr(
                    self.slots
                        .iter()
                        .map(|(t, n)| Json::Arr(vec![Json::UInt(*t), Json::UInt(*n)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a counter back from [`RollingCounter::to_json`] output.
    /// Returns `None` on schema defects (zero window, unsorted slots,
    /// retained sum exceeding the lifetime total).
    pub fn from_json(j: &Json) -> Option<RollingCounter> {
        let windows = j.get("windows")?.as_u64()? as usize;
        if windows == 0 {
            return None;
        }
        let tick = j.get("tick")?.as_u64()?;
        let total = j.get("total")?.as_u64()?;
        let Json::Arr(items) = j.get("slots")? else {
            return None;
        };
        let mut out = RollingCounter {
            slots: Vec::with_capacity(items.len()),
            windows,
            tick,
            total,
        };
        for item in items {
            let Json::Arr(pair) = item else { return None };
            let [t, n] = pair.as_slice() else { return None };
            let t = t.as_u64()?;
            if t > tick || t < out.horizon() {
                return None;
            }
            if let Some((last, _)) = out.slots.last() {
                if *last >= t {
                    return None;
                }
            }
            out.slots.push((t, n.as_u64()?));
        }
        if out.slots.iter().map(|(_, n)| n).sum::<u64>() > total {
            return None;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_covers_exactly_the_requested_span() {
        let mut w = WindowedHistogram::new(4);
        for tick in 1..=6u64 {
            w.record_at(tick, tick * 100);
        }
        // Ticks 1 and 2 expired when tick 6 arrived (horizon = 3).
        assert_eq!(w.tick(), 6);
        assert_eq!(w.retained_count(), 4);
        assert_eq!(w.merged(1).count(), 1); // tick 6 only
        assert_eq!(w.merged(2).count(), 2); // ticks 5..=6
        assert_eq!(w.merged(4).count(), 4); // ticks 3..=6
        // last_n beyond capacity clamps to the ring.
        assert_eq!(w.merged(100).count(), 4);
        // The merged histogram's extremes come from the span only.
        assert_eq!(w.merged(4).min(), 300);
        assert_eq!(w.merged(4).max(), 600);
    }

    #[test]
    fn expiry_is_exact_at_the_horizon_tick_by_tick() {
        let mut w = WindowedHistogram::new(3);
        w.record_at(10, 1);
        w.record_at(11, 2);
        w.record_at(12, 3);
        assert_eq!(w.merged(3).count(), 3);
        // Tick 13: horizon moves to 11, the tick-10 bucket drops exactly.
        w.advance(13);
        assert_eq!(w.merged(3).count(), 2);
        assert_eq!(w.merged(3).min(), 2);
        // Two idle ticks later only tick-12 data could remain — and the
        // span ends at tick 15, so even that is outside merged(3).
        w.advance(15);
        assert_eq!(w.retained_count(), 0);
        assert_eq!(w.merged(3).count(), 0);
        assert_eq!(w.merged(3).quantile(0.99), 0);
    }

    #[test]
    fn stale_ticks_clamp_to_the_horizon_and_time_never_rewinds() {
        let mut w = WindowedHistogram::new(2);
        w.record_at(9, 50);
        // Tick 3 is ancient; it lands in the horizon bucket (tick 8).
        w.record_at(3, 70);
        assert_eq!(w.tick(), 9);
        assert_eq!(w.merged(2).count(), 2);
        assert_eq!(w.merged(1).count(), 1);
    }

    #[test]
    fn windowed_histogram_json_round_trips() {
        let mut w = WindowedHistogram::new(4);
        for tick in 5..=7u64 {
            w.record_at(tick, tick * tick);
        }
        let text = w.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(WindowedHistogram::from_json(&parsed), Some(w));
        // Schema defects are rejected, not misread.
        assert_eq!(
            WindowedHistogram::from_json(&Json::parse("{\"windows\":0,\"tick\":1,\"slots\":[]}").unwrap()),
            None
        );
        assert_eq!(
            WindowedHistogram::from_json(
                &Json::parse("{\"windows\":2,\"tick\":1,\"slots\":[[5,{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}]]}").unwrap()
            ),
            None,
            "slots beyond the current tick are rejected"
        );
    }

    #[test]
    fn rolling_counter_sums_windows_and_keeps_lifetime_total() {
        let mut c = RollingCounter::new(3);
        c.add_at(1, 5);
        c.add_at(2, 7);
        c.add_at(3, 1);
        assert_eq!(c.sum(1), 1);
        assert_eq!(c.sum(3), 13);
        assert_eq!(c.total(), 13);
        // Advancing expires the windowed view but never the total.
        c.advance(10);
        assert_eq!(c.sum(3), 0);
        assert_eq!(c.total(), 13);
        c.add_at(10, 2);
        assert_eq!(c.sum(1), 2);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn rolling_counter_json_round_trips_and_rejects_defects() {
        let mut c = RollingCounter::new(5);
        c.add_at(3, 4);
        c.add_at(4, 9);
        let text = c.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(RollingCounter::from_json(&parsed), Some(c));
        // Retained slots must not exceed the monotone total.
        let bad = "{\"windows\":2,\"tick\":4,\"total\":1,\"slots\":[[4,9]]}";
        assert_eq!(RollingCounter::from_json(&Json::parse(bad).unwrap()), None);
    }

    #[test]
    fn zero_increments_are_noops() {
        let mut w = WindowedHistogram::new(2);
        w.record_n_at(5, 123, 0);
        assert_eq!(w.retained_count(), 0);
        assert_eq!(w.tick(), 0, "a zero record does not advance the clock");
        let mut c = RollingCounter::new(2);
        c.add_at(5, 0);
        assert_eq!((c.total(), c.tick()), (0, 0));
    }
}
