//! A zero-dependency log-linear latency histogram (HDR-style).
//!
//! Medians answer "what is typical"; serving a fleet needs "how bad is
//! the tail" — p95/p99 per unit, mergeable across threads, shards, and
//! runs. [`Histogram`] buckets `u64` values on a log-linear grid: exact
//! below [`LINEAR_MAX`], then every power of two split into
//! [`SUBBUCKETS`] linear sub-buckets, bounding the relative quantile
//! error at `1/SUBBUCKETS` (≈3%) while keeping the whole value range in
//! at most ~1900 buckets. Buckets are stored sparsely, so an idle
//! histogram costs nothing and a busy one costs its distinct magnitudes.
//!
//! Merging two histograms sums bucket counts — an exact, associative,
//! commutative fold (proptested in `tests/histogram.rs`), which is what
//! lets per-thread, per-unit, and per-run histograms collapse into one
//! fleet view without re-recording a single sample. The true `min`,
//! `max`, `count`, and `sum` are tracked exactly alongside the buckets;
//! quantile answers are clamped into `[min, max]`.
//!
//! The struct is always compiled (the `pst-perf` statistics use it
//! offline); only the [`histogram!`](crate::histogram) *recording* macro
//! is gated on the `enabled` feature.

use crate::json::Json;

/// Number of linear sub-buckets per power of two; also the bound below
/// which values are bucketed exactly.
pub const SUBBUCKETS: u64 = 32;

/// Values strictly below this are recorded exactly (bucket = value).
pub const LINEAR_MAX: u64 = SUBBUCKETS;

const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// A mergeable log-linear histogram over `u64` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    buckets: Vec<(u32, u64)>,
    /// Number of recorded values.
    count: u64,
    /// Exact sum of recorded values (saturating).
    sum: u64,
    /// Exact smallest recorded value (`u64::MAX` when empty).
    min: u64,
    /// Exact largest recorded value (0 when empty).
    max: u64,
}

/// Maps a value to its bucket index. Exact below [`LINEAR_MAX`];
/// log-linear above, with `SUBBUCKETS` sub-buckets per octave.
fn bucket_index(v: u64) -> u32 {
    if v < LINEAR_MAX {
        return v as u32;
    }
    let e = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let shift = e - SUB_BITS;
    let offset = (v >> shift) as u32 - SUBBUCKETS as u32;
    (e - SUB_BITS + 1) * SUBBUCKETS as u32 + offset
}

/// The inclusive lower bound of a bucket.
fn bucket_low(index: u32) -> u64 {
    let sub = SUBBUCKETS as u32;
    if index < sub {
        return index as u64;
    }
    let block = index / sub; // >= 1
    let offset = (index % sub) as u64;
    let shift = block - 1;
    (SUBBUCKETS + offset) << shift
}

/// A representative value for the bucket: its midpoint, so the error of
/// a quantile answer is at most half a bucket width (≤ `value /
/// SUBBUCKETS`).
fn bucket_mid(index: u32) -> u64 {
    let sub = SUBBUCKETS as u32;
    if index < sub {
        return index as u64;
    }
    let width = 1u64 << ((index / sub) - 1);
    bucket_low(index) + width / 2
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = bucket_index(value);
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (index, n)),
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Bucket counts add
    /// exactly, so merging is associative and commutative and the
    /// per-thread / per-unit / per-run fold order never matters.
    ///
    /// An empty histogram is the merge identity on **both** sides:
    /// merging an empty operand changes nothing (its `min` sentinel is
    /// `u64::MAX` and its `max` is 0, so the extreme folds are no-ops),
    /// and merging into an empty receiver yields an exact copy. The
    /// windowed ring in [`crate::window`] leans on this when idle ticks
    /// contribute empty buckets.
    pub fn merge_from(&mut self, other: &Histogram) {
        for &(index, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (index, n)),
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (clamped into `[0, 1]`): the smallest
    /// bucket whose cumulative count reaches `ceil(q·count)`, answered
    /// as the bucket midpoint clamped into the exact `[min, max]`.
    /// Relative error is bounded by `1/SUBBUCKETS`. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Serializes the histogram. Schema:
    ///
    /// ```json
    /// {"count": 12, "sum": 3400, "min": 3, "max": 900,
    ///  "buckets": [[3, 5], [160, 7]]}
    /// ```
    ///
    /// Bucket indices are the internal log-linear grid (stable across
    /// builds: exact below 32, then 32 sub-buckets per power of two),
    /// which is what makes serialized histograms mergeable.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min())),
            ("max", Json::UInt(self.max)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a histogram back from [`Histogram::to_json`] output.
    /// Returns `None` on any schema mismatch.
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let count = j.get("count")?.as_u64()?;
        let sum = j.get("sum")?.as_u64()?;
        let min = j.get("min")?.as_u64()?;
        let max = j.get("max")?.as_u64()?;
        let Json::Arr(items) = j.get("buckets")? else {
            return None;
        };
        let mut buckets = Vec::with_capacity(items.len());
        let mut total = 0u64;
        for item in items {
            let Json::Arr(pair) = item else { return None };
            if pair.len() != 2 {
                return None;
            }
            let index = pair[0].as_u64()?;
            let n = pair[1].as_u64()?;
            if index > u32::MAX as u64 || n == 0 {
                return None;
            }
            if let Some(&(last, _)) = buckets.last() {
                if last >= index as u32 {
                    return None; // indices must be strictly increasing
                }
            }
            buckets.push((index as u32, n));
            total += n;
        }
        if total != count {
            return None;
        }
        Some(Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        })
    }

    /// One-line human rendering: `count`, `mean`, and the p50/p90/p99
    /// tail.
    pub fn render_line(&self) -> String {
        format!(
            "n={} mean={:.0} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
        assert_eq!(h.count(), LINEAR_MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR_MAX - 1);
    }

    #[test]
    fn bucket_grid_is_monotone_and_tight() {
        let mut last = None;
        for e in 0..64u32 {
            for &v in &[1u64 << e, (1u64 << e) + 1, (1u64 << e).wrapping_sub(1)] {
                if v == 0 {
                    continue;
                }
                let i = bucket_index(v);
                assert!(bucket_low(i) <= v, "low({i}) <= {v}");
                // The representative is within 1/SUBBUCKETS of the value.
                let mid = bucket_mid(i);
                let err = mid.abs_diff(v);
                assert!(
                    err <= v / (SUBBUCKETS / 2) + 1,
                    "bucket {i} rep {mid} too far from {v}"
                );
                if let Some((pv, pi)) = last {
                    if v > pv {
                        assert!(i >= pi, "index must be monotone: {pv}->{pi}, {v}->{i}");
                    }
                }
                last = Some((v, i));
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((470_000..=530_000).contains(&p50), "p50 = {p50}");
        assert!((955_000..=1_000_000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 77, 1_000_000, 12, 77, 40] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 99_999, 77] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 1_000, u64::MAX / 2] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(Histogram::from_json(&parsed), Some(h));
        assert_eq!(Histogram::from_json(&Json::Null), None);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty quantile({q}) is the documented 0");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let j = h.to_json();
        assert_eq!(Histogram::from_json(&j), Some(h));
    }

    #[test]
    fn merge_with_an_empty_operand_is_the_identity_both_ways() {
        let mut populated = Histogram::new();
        for v in [1u64, 31, 32, 4_096, 123_456_789] {
            populated.record(v);
        }

        // Empty on the right: nothing changes, including the exact
        // extremes (the empty min sentinel must not leak through).
        let mut merged = populated.clone();
        merged.merge_from(&Histogram::new());
        assert_eq!(merged, populated);
        assert_eq!((merged.min(), merged.max()), (1, 123_456_789));

        // Empty on the left: the receiver becomes an exact copy.
        let mut receiver = Histogram::new();
        receiver.merge_from(&populated);
        assert_eq!(receiver, populated);
        assert_eq!(receiver.quantile(0.5), populated.quantile(0.5));

        // Empty with empty stays empty (and stays the JSON identity).
        let mut both = Histogram::new();
        both.merge_from(&Histogram::new());
        assert!(both.is_empty());
        assert_eq!(Histogram::from_json(&both.to_json()), Some(both));
    }
}
