//! Zero-dependency observability for the PST pipeline.
//!
//! The paper's headline claim is *linear time*; this crate exists so the
//! reproduction can observe whether a run actually behaves linearly
//! instead of guessing. It provides three things:
//!
//! 1. **Phase spans** — [`Span::enter("cycle_equiv")`](Span::enter)
//!    returns an RAII guard; nested guards build a per-phase tree of
//!    wall-times measured with [`std::time::Instant`] (monotonic).
//! 2. **Hot-path counters and gauges** — [`counter!`] / [`gauge!`]
//!    record into thread-local registries that are folded into a global
//!    aggregate when threads exit and snapshotted by [`report`].
//! 3. **A hand-rolled JSON emitter** — [`json::Json`] serializes span
//!    trees, counters, and `PstStats` without serde (the build
//!    environment is offline).
//!
//! # Feature gating
//!
//! Everything compiles to inert no-ops unless the `enabled` feature is
//! on: `Span::enter` returns a zero-sized guard, `counter!` expands to a
//!  call into an empty `#[inline(always)]` function, and [`report`]
//! returns an empty report. Library crates expose this as their own
//! `obs` feature (default **off**); the CLI and bench harness turn it on
//! by default. See `docs/OBSERVABILITY.md` for naming conventions and
//! the report schema.
//!
//! # Examples
//!
//! ```
//! {
//!     let _pipeline = pst_obs::Span::enter("pipeline");
//!     let _parse = pst_obs::Span::enter("parse");
//!     pst_obs::counter!("tokens", 42);
//! }
//! let report = pst_obs::report();
//! if pst_obs::enabled() {
//!     assert_eq!(report.counter("tokens"), 42);
//!     println!("{}", report.to_json());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;

use json::Json;

/// Whether observability was compiled in (`enabled` feature).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Adds `delta` to the named counter. Prefer the [`counter!`] macro.
#[inline(always)]
pub fn counter_add(name: &'static str, delta: u64) {
    #[cfg(feature = "enabled")]
    imp::counter_add(name, delta);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Sets the named gauge to `value` (last write wins per thread; the
/// report keeps the maximum across threads). Prefer [`gauge!`].
#[inline(always)]
pub fn gauge_set(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    imp::gauge_set(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Increments a named counter: `counter!("brackets_pushed")` or
/// `counter!("brackets_pushed", n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta as u64)
    };
}

/// Sets a named gauge: `gauge!("cfg_nodes", n)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge_set($name, $value as u64)
    };
}

/// A named phase. [`Span::enter`] starts timing; dropping the returned
/// guard stops it and records the elapsed wall-time under the innermost
/// open span of the same thread, building a tree.
pub struct Span;

impl Span {
    /// Opens the named span. Re-entering the same name under the same
    /// parent merges into one node (accumulating time and a hit count),
    /// so loops don't blow up the tree.
    #[inline(always)]
    pub fn enter(name: &'static str) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard(Some(imp::enter(name)))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard(())
        }
    }
}

/// RAII guard for an open [`Span`]; records on drop.
#[must_use = "a span guard records its phase when dropped"]
pub struct SpanGuard(#[cfg(feature = "enabled")] Option<imp::OpenSpan>, #[cfg(not(feature = "enabled"))] ());

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(open) = self.0.take() {
            imp::exit(open);
        }
    }
}

/// One node of the recorded span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name as passed to [`Span::enter`].
    pub name: String,
    /// How many times this span was entered.
    pub count: u64,
    /// Total wall-time spent inside, in nanoseconds.
    pub nanos: u64,
    /// Nanoseconds between the process-wide observability epoch (the
    /// first span entered anywhere) and the first entry of this span.
    /// Lets exporters place merged spans on a shared timeline — see
    /// `pst-perf`'s Chrome `trace_event` export.
    pub start_nanos: u64,
    /// Nested spans, in first-entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn merge_from(&mut self, other: &SpanNode) {
        self.count += other.count;
        self.nanos += other.nanos;
        self.start_nanos = self.start_nanos.min(other.start_nanos);
        for child in &other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(mine) => mine.merge_from(child),
                None => self.children.push(child.clone()),
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("count", Json::UInt(self.count)),
            ("nanos", Json::UInt(self.nanos)),
            ("start_nanos", Json::UInt(self.start_nanos)),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let ms = self.nanos as f64 / 1e6;
        let _ = writeln!(
            out,
            "{:indent$}{:<28} {:>6}x {:>10.3} ms",
            "",
            self.name,
            self.count,
            ms,
            indent = depth * 2
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A point-in-time snapshot of everything recorded so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Top-level spans (phases with no enclosing span).
    pub spans: Vec<SpanNode>,
    /// Counter totals across all threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (maximum across threads).
    pub gauges: BTreeMap<String, u64>,
}

impl Report {
    /// The total of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Serializes the report. Schema:
    ///
    /// ```json
    /// {"spans": [{"name": "...", "count": 1, "nanos": 123,
    ///             "start_nanos": 0, "children": [...]}, ...],
    ///  "counters": {"brackets_pushed": 42, ...},
    ///  "gauges": {"cfg_nodes": 7, ...}}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanNode::to_json).collect()),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable phase tree plus counters (what `pst --trace`
    /// prints to stderr).
    pub fn render_text(&self) -> String {
        let mut out = String::from("phase                            hits        wall\n");
        for s in &self.spans {
            s.render_into(&mut out, 0);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                use std::fmt::Write as _;
                let _ = writeln!(out, "  {k:<30} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                use std::fmt::Write as _;
                let _ = writeln!(out, "  {k:<30} {v:>12}");
            }
        }
        out
    }
}

/// Snapshots all spans, counters, and gauges recorded so far: the
/// global aggregate (threads that exited) folded with the calling
/// thread's live state. Empty when the `enabled` feature is off.
pub fn report() -> Report {
    #[cfg(feature = "enabled")]
    {
        imp::report()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Report::default()
    }
}

/// Clears all recorded data (global aggregate and the calling thread's
/// registries). Tests use this to isolate measurements.
pub fn reset() {
    #[cfg(feature = "enabled")]
    imp::reset();
}

/// Convenience: the current total of one counter.
pub fn counter_value(name: &str) -> u64 {
    report().counter(name)
}

/// Drains the calling thread's counter and gauge registries into the
/// global aggregate immediately.
///
/// Normally a thread's registries fold into the aggregate only when the
/// thread exits, so counters recorded by a live worker are invisible to
/// [`report`] on other threads, and a unit of work whose panic is
/// contained by `catch_unwind` can lose its tally if the thread never
/// exits cleanly. Flushing *moves* the totals (it never double-counts):
/// after the call the thread's local registries are empty and the
/// global aggregate holds the sums. Span trees are not flushed — the
/// thread may still hold open [`SpanGuard`]s pointing into its tree.
pub fn flush_thread() {
    #[cfg(feature = "enabled")]
    imp::flush_thread_metrics();
}

/// RAII version of [`flush_thread`]: folds the calling thread's
/// counters and gauges into the global aggregate on drop — **including
/// drops that happen while a panic unwinds**. `pst fuzz` creates one of
/// these inside every `catch_unwind`-contained unit so the counters a
/// panicking input recorded before its crash still reach the report.
#[must_use = "the guard folds counters when dropped; binding it to `_` drops it immediately"]
pub struct ScopedFold {
    // `!Send`: the guard must drop on the thread whose registries it folds.
    _thread_bound: std::marker::PhantomData<*const ()>,
}

/// Creates a [`ScopedFold`] guard for the current thread.
pub fn fold_on_drop() -> ScopedFold {
    ScopedFold {
        _thread_bound: std::marker::PhantomData,
    }
}

impl Drop for ScopedFold {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        imp::flush_thread_metrics();
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Report, SpanNode};
    use std::cell::RefCell;
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Process-wide time origin for span `start_nanos` offsets: the
    /// instant the first span (on any thread) is entered. Shared so
    /// offsets from different threads land on one comparable timeline.
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the process epoch (which this call may mint).
    fn epoch_offset_nanos() -> u64 {
        EPOCH
            .get_or_init(Instant::now)
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Locks the global aggregate, recovering from poisoning: a panic
    /// on some other thread must never silently discard every later
    /// thread's fold (the registry holds plain counters whose invariants
    /// cannot be torn by an unwind).
    fn lock_global() -> MutexGuard<'static, Report> {
        GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Tree arena: node 0 is the synthetic root.
    #[derive(Default)]
    struct Tree {
        names: Vec<&'static str>,
        counts: Vec<u64>,
        nanos: Vec<u64>,
        starts: Vec<u64>,
        children: Vec<Vec<usize>>,
    }

    impl Tree {
        fn new() -> Self {
            let mut t = Tree::default();
            t.push_node("");
            t
        }

        fn push_node(&mut self, name: &'static str) -> usize {
            self.names.push(name);
            self.counts.push(0);
            self.nanos.push(0);
            self.starts.push(u64::MAX);
            self.children.push(Vec::new());
            self.names.len() - 1
        }

        fn child_named(&mut self, parent: usize, name: &'static str) -> usize {
            if let Some(&c) = self.children[parent]
                .iter()
                .find(|&&c| self.names[c] == name)
            {
                return c;
            }
            let c = self.push_node(name);
            self.children[parent].push(c);
            c
        }

        fn snapshot(&self, node: usize) -> SpanNode {
            SpanNode {
                name: self.names[node].to_string(),
                count: self.counts[node],
                nanos: self.nanos[node],
                start_nanos: match self.starts[node] {
                    u64::MAX => 0,
                    s => s,
                },
                children: self.children[node]
                    .iter()
                    .map(|&c| self.snapshot(c))
                    .collect(),
            }
        }
    }

    struct ThreadState {
        tree: Tree,
        stack: Vec<usize>,
        counters: Vec<(&'static str, u64)>,
        gauges: Vec<(&'static str, u64)>,
    }

    impl ThreadState {
        fn new() -> Self {
            ThreadState {
                tree: Tree::new(),
                stack: vec![0],
                counters: Vec::new(),
                gauges: Vec::new(),
            }
        }

        fn fold_into(&self, agg: &mut Report) {
            for root in self.tree.children[0].iter().map(|&c| self.tree.snapshot(c)) {
                match agg.spans.iter_mut().find(|s| s.name == root.name) {
                    Some(mine) => mine.merge_from(&root),
                    None => agg.spans.push(root),
                }
            }
            for &(name, v) in &self.counters {
                *agg.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for &(name, v) in &self.gauges {
                let slot = agg.gauges.entry(name.to_string()).or_insert(0);
                *slot = (*slot).max(v);
            }
        }
    }

    impl Drop for ThreadState {
        fn drop(&mut self) {
            self.fold_into(&mut lock_global());
        }
    }

    /// Aggregate of every thread that has already exited.
    static GLOBAL: Mutex<Report> = Mutex::new(Report {
        spans: Vec::new(),
        counters: std::collections::BTreeMap::new(),
        gauges: std::collections::BTreeMap::new(),
    });

    thread_local! {
        static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
    }

    pub(super) struct OpenSpan {
        node: usize,
        start: Instant,
    }

    pub(super) fn enter(name: &'static str) -> OpenSpan {
        let offset = epoch_offset_nanos();
        let node = STATE.with(|s| {
            let mut s = s.borrow_mut();
            let parent = *s.stack.last().expect("span stack has a root");
            let node = s.tree.child_named(parent, name);
            s.stack.push(node);
            let start = &mut s.tree.starts[node];
            *start = (*start).min(offset);
            node
        });
        OpenSpan {
            node,
            start: Instant::now(),
        }
    }

    pub(super) fn exit(open: OpenSpan) {
        let elapsed = open.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Pop back to this span's parent. Guards are dropped in
            // LIFO order, so the top of the stack is `open.node` unless
            // a guard was leaked; truncating keeps the tree sane then.
            while s.stack.len() > 1 {
                let top = s.stack.pop().expect("stack non-empty");
                if top == open.node {
                    break;
                }
            }
            s.tree.counts[open.node] += 1;
            s.tree.nanos[open.node] += elapsed;
        });
    }

    #[inline]
    pub(super) fn counter_add(name: &'static str, delta: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Few distinct counters: a linear scan over a small vec is
            // cheaper and more predictable than hashing on this path.
            for slot in s.counters.iter_mut() {
                if std::ptr::eq(slot.0, name) || slot.0 == name {
                    slot.1 += delta;
                    return;
                }
            }
            s.counters.push((name, delta));
        });
    }

    #[inline]
    pub(super) fn gauge_set(name: &'static str, value: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            for slot in s.gauges.iter_mut() {
                if std::ptr::eq(slot.0, name) || slot.0 == name {
                    slot.1 = value;
                    return;
                }
            }
            s.gauges.push((name, value));
        });
    }

    pub(super) fn report() -> Report {
        let mut agg = lock_global().clone();
        STATE.with(|s| s.borrow().fold_into(&mut agg));
        agg
    }

    pub(super) fn reset() {
        *lock_global() = Report::default();
        STATE.with(|s| *s.borrow_mut() = ThreadState::new());
    }

    /// Moves the calling thread's counters and gauges into the global
    /// aggregate (see [`super::flush_thread`]). Uses `try_with` so a
    /// flush racing thread-local destruction is a no-op, not a panic —
    /// the `ThreadState` destructor folds everything anyway.
    pub(super) fn flush_thread_metrics() {
        let _ = STATE.try_with(|s| {
            let mut s = s.borrow_mut();
            let counters = std::mem::take(&mut s.counters);
            let gauges = std::mem::take(&mut s.gauges);
            if counters.is_empty() && gauges.is_empty() {
                return;
            }
            let mut agg = lock_global();
            for (name, v) in counters {
                *agg.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for (name, v) in gauges {
                let slot = agg.gauges.entry(name.to_string()).or_insert(0);
                *slot = (*slot).max(v);
            }
        });
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that reset it.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let _l = locked();
        reset();
        {
            let _outer = Span::enter("outer");
            for _ in 0..3 {
                let _inner = Span::enter("inner");
                counter!("ticks");
            }
            counter!("ticks", 7);
        }
        let r = report();
        assert_eq!(r.counter("ticks"), 10);
        let outer = &r.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.count, 3);
        assert!(outer.nanos >= inner.nanos);
        reset();
    }

    #[test]
    fn worker_thread_state_folds_into_report() {
        let _l = locked();
        reset();
        std::thread::spawn(|| {
            let _s = Span::enter("worker_phase");
            counter!("worker_ticks", 5);
        })
        .join()
        .unwrap();
        let r = report();
        assert_eq!(r.counter("worker_ticks"), 5);
        assert!(r.spans.iter().any(|s| s.name == "worker_phase"));
        reset();
    }

    #[test]
    fn gauges_keep_thread_maximum() {
        let _l = locked();
        reset();
        gauge!("size", 3);
        gauge!("size", 9);
        std::thread::spawn(|| gauge!("size", 6)).join().unwrap();
        assert_eq!(report().gauge("size"), 9);
        reset();
    }

    #[test]
    fn start_offsets_order_siblings_on_one_timeline() {
        let _l = locked();
        reset();
        {
            let _outer = Span::enter("timeline_outer");
            {
                let _a = Span::enter("timeline_a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _b = Span::enter("timeline_b");
        }
        let r = report();
        let outer = r
            .spans
            .iter()
            .find(|s| s.name == "timeline_outer")
            .expect("outer span recorded");
        let a = &outer.children[0];
        let b = &outer.children[1];
        assert_eq!((a.name.as_str(), b.name.as_str()), ("timeline_a", "timeline_b"));
        assert!(outer.start_nanos <= a.start_nanos);
        assert!(
            a.start_nanos < b.start_nanos,
            "b entered after a slept, so its offset must be later"
        );
        reset();
    }

    #[test]
    fn scoped_fold_survives_contained_panic() {
        let _l = locked();
        reset();
        let result = std::panic::catch_unwind(|| {
            let _fold = fold_on_drop();
            counter!("doomed_unit_ticks", 3);
            panic!("unit dies after recording");
        });
        assert!(result.is_err());
        // The guard drained the tally into the global aggregate during
        // the unwind; the report sees it exactly once.
        assert_eq!(report().counter("doomed_unit_ticks"), 3);
        reset();
    }

    #[test]
    fn flush_makes_live_worker_counters_visible_without_double_count() {
        let _l = locked();
        reset();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            counter!("worker_units", 2);
            gauge!("worker_peak", 7);
            flush_thread();
            ready_tx.send(()).unwrap();
            // Stay alive: without the flush the main thread could not
            // see this thread's counters yet.
            release_rx.recv().unwrap();
            counter!("worker_units", 1);
        });
        ready_rx.recv().unwrap();
        assert_eq!(report().counter("worker_units"), 2);
        assert_eq!(report().gauge("worker_peak"), 7);
        release_tx.send(()).unwrap();
        worker.join().unwrap();
        // Thread exit folds the post-flush remainder; no double count.
        assert_eq!(report().counter("worker_units"), 3);
        reset();
    }
}
