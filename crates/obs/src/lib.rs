//! Zero-dependency observability for the PST pipeline.
//!
//! The paper's headline claim is *linear time*; this crate exists so the
//! reproduction can observe whether a run actually behaves linearly
//! instead of guessing. It provides three things:
//!
//! 1. **Phase spans** — [`Span::enter("cycle_equiv")`](Span::enter)
//!    returns an RAII guard; nested guards build a per-phase tree of
//!    wall-times measured with [`std::time::Instant`] (monotonic).
//! 2. **Hot-path counters, gauges, and histograms** — [`counter!`] /
//!    [`gauge!`] / [`histogram!`] record into thread-local registries
//!    that are folded into a global aggregate when threads exit and
//!    snapshotted by [`report`]. Histograms are log-linear
//!    ([`hist::Histogram`]) with mergeable buckets and quantile queries;
//!    [`window`] adds their live counterparts ([`WindowedHistogram`],
//!    [`RollingCounter`]) rotated on an injectable tick clock.
//! 3. **Unit-scoped trace contexts** — [`UnitScope::enter`]`("main#f")`
//!    attributes everything recorded while the guard lives to that unit
//!    (a function, fuzz case, bench workload, shard item) *as well as*
//!    the global aggregate, producing per-unit sub-reports in
//!    [`Report::units`].
//! 4. **A structured event journal** — [`journal`] appends typed JSONL
//!    events (run start/end, unit summaries, lint findings, fuzz
//!    crashes, bench verdicts) carrying a deterministic-when-seeded
//!    trace id and a monotonic sequence offset.
//! 5. **A hand-rolled JSON emitter** — [`json::Json`] serializes span
//!    trees, counters, and `PstStats` without serde (the build
//!    environment is offline).
//!
//! # Feature gating
//!
//! Everything compiles to inert no-ops unless the `enabled` feature is
//! on: `Span::enter` returns a zero-sized guard, `counter!` expands to a
//!  call into an empty `#[inline(always)]` function, and [`report`]
//! returns an empty report. Library crates expose this as their own
//! `obs` feature (default **off**); the CLI and bench harness turn it on
//! by default. See `docs/OBSERVABILITY.md` for naming conventions and
//! the report schema.
//!
//! # Examples
//!
//! ```
//! {
//!     let _pipeline = pst_obs::Span::enter("pipeline");
//!     let _parse = pst_obs::Span::enter("parse");
//!     pst_obs::counter!("tokens", 42);
//! }
//! let report = pst_obs::report();
//! if pst_obs::enabled() {
//!     assert_eq!(report.counter("tokens"), 42);
//!     println!("{}", report.to_json());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod journal;
pub mod json;
pub mod window;

use std::collections::BTreeMap;

pub use hist::Histogram;
pub use window::{RollingCounter, WindowedHistogram};
use json::Json;

/// Whether observability was compiled in (`enabled` feature).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Adds `delta` to the named counter. Prefer the [`counter!`] macro.
#[inline(always)]
pub fn counter_add(name: &'static str, delta: u64) {
    #[cfg(feature = "enabled")]
    imp::counter_add(name, delta);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Sets the named gauge to `value` (last write wins per thread; the
/// report keeps the maximum across threads). Prefer [`gauge!`].
#[inline(always)]
pub fn gauge_set(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    imp::gauge_set(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Records `value` into the named log-linear histogram (per unit when a
/// [`UnitScope`] is open, and always globally). Prefer [`histogram!`].
#[inline(always)]
pub fn histogram_record(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    imp::histogram_record(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Increments a named counter: `counter!("brackets_pushed")` or
/// `counter!("brackets_pushed", n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta as u64)
    };
}

/// Sets a named gauge: `gauge!("cfg_nodes", n)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge_set($name, $value as u64)
    };
}

/// Records a value into a named histogram:
/// `histogram!("phase_nanos_parse", nanos)`. Compiles to a no-op
/// without the `enabled` feature.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::histogram_record($name, $value as u64)
    };
}

/// A named phase. [`Span::enter`] starts timing; dropping the returned
/// guard stops it and records the elapsed wall-time under the innermost
/// open span of the same thread, building a tree.
pub struct Span;

impl Span {
    /// Opens the named span. Re-entering the same name under the same
    /// parent merges into one node (accumulating time and a hit count),
    /// so loops don't blow up the tree.
    #[inline(always)]
    pub fn enter(name: &'static str) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard(Some(imp::enter(name)))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard(())
        }
    }
}

/// RAII guard for an open [`Span`]; records on drop.
#[must_use = "a span guard records its phase when dropped"]
pub struct SpanGuard(#[cfg(feature = "enabled")] Option<imp::OpenSpan>, #[cfg(not(feature = "enabled"))] ());

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(open) = self.0.take() {
            imp::exit(open);
        }
    }
}

/// A unit-scoped trace context. [`UnitScope::enter`] pushes the unit id
/// onto a thread-local stack; while the returned guard lives, every
/// [`counter!`], [`gauge!`], and [`histogram!`] write lands in the
/// *innermost* open unit's sub-report in addition to the global
/// aggregate. Dropping the guard records the unit's wall-time and entry
/// count and folds its tallies into [`Report::units`].
///
/// Units are dynamic ids — a function (`file#fn`), a fuzz seed
/// (`seed:42`), a bench workload, a batch shard item — so names are
/// owned `String`s, unlike the `&'static str` metric names. Nested
/// scopes attribute to the innermost unit only. Like spans, unit state
/// is thread-local and lock-free; it folds into the global aggregate
/// when the thread exits (or on [`flush_thread`]).
pub struct UnitScope;

impl UnitScope {
    /// Opens a unit context named `unit`. Re-entering the same name
    /// later merges into one [`UnitReport`] (summing counts and times).
    #[inline(always)]
    pub fn enter(unit: impl Into<String>) -> UnitGuard {
        #[cfg(feature = "enabled")]
        {
            UnitGuard(Some(imp::unit_enter(unit.into())))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = unit;
            UnitGuard(())
        }
    }
}

/// RAII guard for an open [`UnitScope`]; folds the unit's tallies into
/// the thread's sub-report table on drop. `!Send` when observability is
/// compiled in: the guard must drop on the thread whose unit stack it
/// owns.
#[must_use = "a unit guard records its unit when dropped"]
pub struct UnitGuard(
    #[cfg(feature = "enabled")] Option<imp::OpenUnit>,
    #[cfg(not(feature = "enabled"))] (),
);

impl Drop for UnitGuard {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(open) = self.0.take() {
            imp::unit_exit(open);
        }
    }
}

/// One node of the recorded span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name as passed to [`Span::enter`].
    pub name: String,
    /// How many times this span was entered.
    pub count: u64,
    /// Total wall-time spent inside, in nanoseconds.
    pub nanos: u64,
    /// Nanoseconds between the process-wide observability epoch (the
    /// first span entered anywhere) and the first entry of this span.
    /// Lets exporters place merged spans on a shared timeline — see
    /// `pst-perf`'s Chrome `trace_event` export.
    pub start_nanos: u64,
    /// Nested spans, in first-entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn merge_from(&mut self, other: &SpanNode) {
        self.count += other.count;
        self.nanos += other.nanos;
        self.start_nanos = self.start_nanos.min(other.start_nanos);
        for child in &other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(mine) => mine.merge_from(child),
                None => self.children.push(child.clone()),
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("count", Json::UInt(self.count)),
            ("nanos", Json::UInt(self.nanos)),
            ("start_nanos", Json::UInt(self.start_nanos)),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let ms = self.nanos as f64 / 1e6;
        let _ = writeln!(
            out,
            "{:indent$}{:<28} {:>6}x {:>10.3} ms",
            "",
            self.name,
            self.count,
            ms,
            indent = depth * 2
        );
        // Children are stored in first-entry order (which exporters
        // need for timelines) but *rendered* by name so the text trace
        // is byte-stable across runs and thread interleavings.
        let mut children: Vec<&SpanNode> = self.children.iter().collect();
        children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Per-unit sub-report: what a [`UnitScope`] attributed to one unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitReport {
    /// How many times a scope with this unit id was entered.
    pub count: u64,
    /// Total wall-time spent inside this unit's scopes, in nanoseconds.
    pub nanos: u64,
    /// Counter totals attributed to this unit.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values attributed to this unit (maximum across entries).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms attributed to this unit.
    pub histograms: BTreeMap<String, Histogram>,
}

impl UnitReport {
    /// Folds another sub-report for the same unit into this one.
    pub fn merge_from(&mut self, other: &UnitReport) {
        self.count += other.count;
        self.nanos += other.nanos;
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge_from(h);
        }
    }

    /// Serializes the sub-report (see [`Report::to_json`] for the
    /// enclosing schema).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("nanos", Json::UInt(self.nanos)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a sub-report back from [`UnitReport::to_json`] output.
    pub fn from_json(j: &Json) -> Option<UnitReport> {
        let count = j.get("count")?.as_u64()?;
        let nanos = j.get("nanos")?.as_u64()?;
        let mut report = UnitReport {
            count,
            nanos,
            ..UnitReport::default()
        };
        let Json::Obj(counters) = j.get("counters")? else {
            return None;
        };
        for (k, v) in counters {
            report.counters.insert(k.clone(), v.as_u64()?);
        }
        let Json::Obj(gauges) = j.get("gauges")? else {
            return None;
        };
        for (k, v) in gauges {
            report.gauges.insert(k.clone(), v.as_u64()?);
        }
        let Json::Obj(hists) = j.get("histograms")? else {
            return None;
        };
        for (k, v) in hists {
            report.histograms.insert(k.clone(), Histogram::from_json(v)?);
        }
        Some(report)
    }
}

/// A point-in-time snapshot of everything recorded so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Top-level spans (phases with no enclosing span).
    pub spans: Vec<SpanNode>,
    /// Counter totals across all threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (maximum across threads).
    pub gauges: BTreeMap<String, u64>,
    /// Global histograms (all units plus unscoped recordings).
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-unit sub-reports, keyed by unit id (see [`UnitScope`]).
    pub units: BTreeMap<String, UnitReport>,
}

impl Report {
    /// The total of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram recorded under `name` (empty if never touched).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Serializes the report. Schema:
    ///
    /// ```json
    /// {"spans": [{"name": "...", "count": 1, "nanos": 123,
    ///             "start_nanos": 0, "children": [...]}, ...],
    ///  "counters": {"brackets_pushed": 42, ...},
    ///  "gauges": {"cfg_nodes": 7, ...},
    ///  "histograms": {"phase_nanos_parse": {"count": 3, ...}, ...},
    ///  "units": {"main#f": {"count": 1, "nanos": 123, ...}, ...}}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanNode::to_json).collect()),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "units",
                Json::Obj(
                    self.units
                        .iter()
                        .map(|(k, u)| (k.clone(), u.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable phase tree plus counters, gauges, histograms, and
    /// unit sub-reports (what `pst --trace` prints to stderr). The
    /// output is fully deterministic for a given report: sibling spans
    /// and every listing are sorted by name, so traces are byte-stable
    /// and diffable in CI.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("phase                            hits        wall\n");
        let mut roots: Vec<&SpanNode> = self.spans.iter().collect();
        roots.sort_by(|a, b| a.name.cmp(&b.name));
        for s in roots {
            s.render_into(&mut out, 0);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<30} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<30} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(out, "  {k:<30} {}", h.render_line());
            }
        }
        if !self.units.is_empty() {
            out.push_str("units:\n");
            for (k, u) in &self.units {
                let ms = u.nanos as f64 / 1e6;
                let _ = writeln!(out, "  {:<30} {:>6}x {:>10.3} ms", k, u.count, ms);
            }
        }
        out
    }
}

/// Snapshots all spans, counters, and gauges recorded so far: the
/// global aggregate (threads that exited) folded with the calling
/// thread's live state. Empty when the `enabled` feature is off.
pub fn report() -> Report {
    #[cfg(feature = "enabled")]
    {
        imp::report()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Report::default()
    }
}

/// Clears all recorded data (global aggregate and the calling thread's
/// registries). Tests use this to isolate measurements.
pub fn reset() {
    #[cfg(feature = "enabled")]
    imp::reset();
}

/// Convenience: the current total of one counter.
pub fn counter_value(name: &str) -> u64 {
    report().counter(name)
}

/// Drains the calling thread's counter, gauge, histogram, and completed
/// unit-sub-report registries into the global aggregate immediately.
///
/// Normally a thread's registries fold into the aggregate only when the
/// thread exits, so counters recorded by a live worker are invisible to
/// [`report`] on other threads, and a unit of work whose panic is
/// contained by `catch_unwind` can lose its tally if the thread never
/// exits cleanly. Flushing *moves* the totals (it never double-counts):
/// after the call the thread's local registries are empty and the
/// global aggregate holds the sums. Span trees are not flushed — the
/// thread may still hold open [`SpanGuard`]s pointing into its tree —
/// and neither are still-open unit frames, whose tallies fold when
/// their [`UnitGuard`] drops.
pub fn flush_thread() {
    #[cfg(feature = "enabled")]
    imp::flush_thread_metrics();
}

/// RAII version of [`flush_thread`]: folds the calling thread's
/// counters and gauges into the global aggregate on drop — **including
/// drops that happen while a panic unwinds**. `pst fuzz` creates one of
/// these inside every `catch_unwind`-contained unit so the counters a
/// panicking input recorded before its crash still reach the report.
#[must_use = "the guard folds counters when dropped; binding it to `_` drops it immediately"]
pub struct ScopedFold {
    // `!Send`: the guard must drop on the thread whose registries it folds.
    _thread_bound: std::marker::PhantomData<*const ()>,
}

/// Creates a [`ScopedFold`] guard for the current thread.
pub fn fold_on_drop() -> ScopedFold {
    ScopedFold {
        _thread_bound: std::marker::PhantomData,
    }
}

impl Drop for ScopedFold {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        imp::flush_thread_metrics();
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Histogram, Report, SpanNode, UnitReport};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Process-wide time origin for span `start_nanos` offsets: the
    /// instant the first span (on any thread) is entered. Shared so
    /// offsets from different threads land on one comparable timeline.
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the process epoch (which this call may mint).
    fn epoch_offset_nanos() -> u64 {
        EPOCH
            .get_or_init(Instant::now)
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Locks the global aggregate, recovering from poisoning: a panic
    /// on some other thread must never silently discard every later
    /// thread's fold (the registry holds plain counters whose invariants
    /// cannot be torn by an unwind).
    fn lock_global() -> MutexGuard<'static, Report> {
        GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Tree arena: node 0 is the synthetic root.
    #[derive(Default)]
    struct Tree {
        names: Vec<&'static str>,
        counts: Vec<u64>,
        nanos: Vec<u64>,
        starts: Vec<u64>,
        children: Vec<Vec<usize>>,
    }

    impl Tree {
        fn new() -> Self {
            let mut t = Tree::default();
            t.push_node("");
            t
        }

        fn push_node(&mut self, name: &'static str) -> usize {
            self.names.push(name);
            self.counts.push(0);
            self.nanos.push(0);
            self.starts.push(u64::MAX);
            self.children.push(Vec::new());
            self.names.len() - 1
        }

        fn child_named(&mut self, parent: usize, name: &'static str) -> usize {
            if let Some(&c) = self.children[parent]
                .iter()
                .find(|&&c| self.names[c] == name)
            {
                return c;
            }
            let c = self.push_node(name);
            self.children[parent].push(c);
            c
        }

        fn snapshot(&self, node: usize) -> SpanNode {
            SpanNode {
                name: self.names[node].to_string(),
                count: self.counts[node],
                nanos: self.nanos[node],
                start_nanos: match self.starts[node] {
                    u64::MAX => 0,
                    s => s,
                },
                children: self.children[node]
                    .iter()
                    .map(|&c| self.snapshot(c))
                    .collect(),
            }
        }
    }

    /// One open [`super::UnitScope`]: tallies recorded while this unit
    /// is innermost, folded into the thread's `units` table on exit.
    struct UnitFrame {
        name: String,
        start: Instant,
        counters: Vec<(&'static str, u64)>,
        gauges: Vec<(&'static str, u64)>,
        hists: Vec<(&'static str, Histogram)>,
    }

    /// Adds `delta` to the named slot in a small linear-scan registry.
    /// Few distinct names: a scan over a small vec is cheaper and more
    /// predictable than hashing on this path (`ptr::eq` catches the
    /// common same-literal case without comparing bytes).
    fn slot_add(slots: &mut Vec<(&'static str, u64)>, name: &'static str, delta: u64) {
        for slot in slots.iter_mut() {
            if std::ptr::eq(slot.0, name) || slot.0 == name {
                slot.1 += delta;
                return;
            }
        }
        slots.push((name, delta));
    }

    /// Last-write-wins variant of [`slot_add`] (gauges).
    fn slot_set(slots: &mut Vec<(&'static str, u64)>, name: &'static str, value: u64) {
        for slot in slots.iter_mut() {
            if std::ptr::eq(slot.0, name) || slot.0 == name {
                slot.1 = value;
                return;
            }
        }
        slots.push((name, value));
    }

    /// Records into the named histogram slot.
    fn slot_record(slots: &mut Vec<(&'static str, Histogram)>, name: &'static str, value: u64) {
        for slot in slots.iter_mut() {
            if std::ptr::eq(slot.0, name) || slot.0 == name {
                slot.1.record(value);
                return;
            }
        }
        let mut h = Histogram::new();
        h.record(value);
        slots.push((name, h));
    }

    struct ThreadState {
        tree: Tree,
        stack: Vec<usize>,
        counters: Vec<(&'static str, u64)>,
        gauges: Vec<(&'static str, u64)>,
        hists: Vec<(&'static str, Histogram)>,
        unit_stack: Vec<UnitFrame>,
        /// Completed units on this thread (open frames are still on
        /// `unit_stack` and fold only when their guard drops).
        units: BTreeMap<String, UnitReport>,
    }

    impl ThreadState {
        fn new() -> Self {
            ThreadState {
                tree: Tree::new(),
                stack: vec![0],
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
                unit_stack: Vec::new(),
                units: BTreeMap::new(),
            }
        }

        fn fold_into(&self, agg: &mut Report) {
            for root in self.tree.children[0].iter().map(|&c| self.tree.snapshot(c)) {
                match agg.spans.iter_mut().find(|s| s.name == root.name) {
                    Some(mine) => mine.merge_from(&root),
                    None => agg.spans.push(root),
                }
            }
            for &(name, v) in &self.counters {
                *agg.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for &(name, v) in &self.gauges {
                let slot = agg.gauges.entry(name.to_string()).or_insert(0);
                *slot = (*slot).max(v);
            }
            for (name, h) in &self.hists {
                agg.histograms
                    .entry(name.to_string())
                    .or_default()
                    .merge_from(h);
            }
            for (name, u) in &self.units {
                agg.units.entry(name.clone()).or_default().merge_from(u);
            }
        }
    }

    impl Drop for ThreadState {
        fn drop(&mut self) {
            self.fold_into(&mut lock_global());
        }
    }

    /// Aggregate of every thread that has already exited.
    static GLOBAL: Mutex<Report> = Mutex::new(Report {
        spans: Vec::new(),
        counters: std::collections::BTreeMap::new(),
        gauges: std::collections::BTreeMap::new(),
        histograms: std::collections::BTreeMap::new(),
        units: std::collections::BTreeMap::new(),
    });

    thread_local! {
        static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
    }

    pub(super) struct OpenSpan {
        node: usize,
        start: Instant,
    }

    pub(super) fn enter(name: &'static str) -> OpenSpan {
        let offset = epoch_offset_nanos();
        let node = STATE.with(|s| {
            let mut s = s.borrow_mut();
            let parent = *s.stack.last().expect("span stack has a root");
            let node = s.tree.child_named(parent, name);
            s.stack.push(node);
            let start = &mut s.tree.starts[node];
            *start = (*start).min(offset);
            node
        });
        OpenSpan {
            node,
            start: Instant::now(),
        }
    }

    pub(super) fn exit(open: OpenSpan) {
        let elapsed = open.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Pop back to this span's parent. Guards are dropped in
            // LIFO order, so the top of the stack is `open.node` unless
            // a guard was leaked; truncating keeps the tree sane then.
            while s.stack.len() > 1 {
                let top = s.stack.pop().expect("stack non-empty");
                if top == open.node {
                    break;
                }
            }
            s.tree.counts[open.node] += 1;
            s.tree.nanos[open.node] += elapsed;
        });
    }

    #[inline]
    pub(super) fn counter_add(name: &'static str, delta: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            slot_add(&mut s.counters, name, delta);
            if let Some(frame) = s.unit_stack.last_mut() {
                slot_add(&mut frame.counters, name, delta);
            }
        });
    }

    #[inline]
    pub(super) fn gauge_set(name: &'static str, value: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            slot_set(&mut s.gauges, name, value);
            if let Some(frame) = s.unit_stack.last_mut() {
                slot_set(&mut frame.gauges, name, value);
            }
        });
    }

    #[inline]
    pub(super) fn histogram_record(name: &'static str, value: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            slot_record(&mut s.hists, name, value);
            if let Some(frame) = s.unit_stack.last_mut() {
                slot_record(&mut frame.hists, name, value);
            }
        });
    }

    /// An open unit scope: the index its frame occupies on the thread's
    /// unit stack. `!Send` (raw-pointer phantom) because the guard must
    /// drop on the thread owning that stack.
    pub(super) struct OpenUnit {
        base: usize,
        _thread_bound: std::marker::PhantomData<*const ()>,
    }

    pub(super) fn unit_enter(name: String) -> OpenUnit {
        let base = STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.unit_stack.push(UnitFrame {
                name,
                start: Instant::now(),
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
            });
            s.unit_stack.len() - 1
        });
        OpenUnit {
            base,
            _thread_bound: std::marker::PhantomData,
        }
    }

    pub(super) fn unit_exit(open: OpenUnit) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order, so `open.base` is normally the
            // top of the stack; if an inner guard was leaked, fold every
            // frame above it too so no tallies are lost.
            while s.unit_stack.len() > open.base {
                let frame = s.unit_stack.pop().expect("unit stack non-empty");
                let elapsed = frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let entry = s.units.entry(frame.name).or_default();
                entry.count += 1;
                entry.nanos += elapsed;
                for (name, v) in frame.counters {
                    *entry.counters.entry(name.to_string()).or_insert(0) += v;
                }
                for (name, v) in frame.gauges {
                    let slot = entry.gauges.entry(name.to_string()).or_insert(0);
                    *slot = (*slot).max(v);
                }
                for (name, h) in frame.hists {
                    entry
                        .histograms
                        .entry(name.to_string())
                        .or_default()
                        .merge_from(&h);
                }
            }
        });
    }

    pub(super) fn report() -> Report {
        let mut agg = lock_global().clone();
        STATE.with(|s| s.borrow().fold_into(&mut agg));
        agg
    }

    pub(super) fn reset() {
        *lock_global() = Report::default();
        STATE.with(|s| *s.borrow_mut() = ThreadState::new());
    }

    /// Moves the calling thread's counters, gauges, histograms, and
    /// completed unit sub-reports into the global aggregate (see
    /// [`super::flush_thread`]). Open unit frames stay on the thread —
    /// their tallies fold when their guard drops. Uses `try_with` so a
    /// flush racing thread-local destruction is a no-op, not a panic —
    /// the `ThreadState` destructor folds everything anyway.
    pub(super) fn flush_thread_metrics() {
        let _ = STATE.try_with(|s| {
            let mut s = s.borrow_mut();
            let counters = std::mem::take(&mut s.counters);
            let gauges = std::mem::take(&mut s.gauges);
            let hists = std::mem::take(&mut s.hists);
            let units = std::mem::take(&mut s.units);
            if counters.is_empty() && gauges.is_empty() && hists.is_empty() && units.is_empty() {
                return;
            }
            let mut agg = lock_global();
            for (name, v) in counters {
                *agg.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for (name, v) in gauges {
                let slot = agg.gauges.entry(name.to_string()).or_insert(0);
                *slot = (*slot).max(v);
            }
            for (name, h) in hists {
                agg.histograms
                    .entry(name.to_string())
                    .or_default()
                    .merge_from(&h);
            }
            for (name, u) in units {
                agg.units.entry(name).or_default().merge_from(&u);
            }
        });
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that reset it.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        // Same poison-recovery idiom as every lock in this workspace
        // (see docs/SERVING.md § locking): a panicked holder must not
        // wedge later acquisitions.
        TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let _l = locked();
        reset();
        {
            let _outer = Span::enter("outer");
            for _ in 0..3 {
                let _inner = Span::enter("inner");
                counter!("ticks");
            }
            counter!("ticks", 7);
        }
        let r = report();
        assert_eq!(r.counter("ticks"), 10);
        let outer = &r.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.count, 3);
        assert!(outer.nanos >= inner.nanos);
        reset();
    }

    #[test]
    fn worker_thread_state_folds_into_report() {
        let _l = locked();
        reset();
        std::thread::spawn(|| {
            let _s = Span::enter("worker_phase");
            counter!("worker_ticks", 5);
        })
        .join()
        .unwrap();
        let r = report();
        assert_eq!(r.counter("worker_ticks"), 5);
        assert!(r.spans.iter().any(|s| s.name == "worker_phase"));
        reset();
    }

    #[test]
    fn gauges_keep_thread_maximum() {
        let _l = locked();
        reset();
        gauge!("size", 3);
        gauge!("size", 9);
        std::thread::spawn(|| gauge!("size", 6)).join().unwrap();
        assert_eq!(report().gauge("size"), 9);
        reset();
    }

    #[test]
    fn start_offsets_order_siblings_on_one_timeline() {
        let _l = locked();
        reset();
        {
            let _outer = Span::enter("timeline_outer");
            {
                let _a = Span::enter("timeline_a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _b = Span::enter("timeline_b");
        }
        let r = report();
        let outer = r
            .spans
            .iter()
            .find(|s| s.name == "timeline_outer")
            .expect("outer span recorded");
        let a = &outer.children[0];
        let b = &outer.children[1];
        assert_eq!((a.name.as_str(), b.name.as_str()), ("timeline_a", "timeline_b"));
        assert!(outer.start_nanos <= a.start_nanos);
        assert!(
            a.start_nanos < b.start_nanos,
            "b entered after a slept, so its offset must be later"
        );
        reset();
    }

    #[test]
    fn scoped_fold_survives_contained_panic() {
        let _l = locked();
        reset();
        let result = std::panic::catch_unwind(|| {
            let _fold = fold_on_drop();
            counter!("doomed_unit_ticks", 3);
            panic!("unit dies after recording");
        });
        assert!(result.is_err());
        // The guard drained the tally into the global aggregate during
        // the unwind; the report sees it exactly once.
        assert_eq!(report().counter("doomed_unit_ticks"), 3);
        reset();
    }

    #[test]
    fn unit_scopes_attribute_to_innermost_and_global() {
        let _l = locked();
        reset();
        {
            let _outer = UnitScope::enter("outer_unit");
            counter!("work", 2);
            histogram!("latency", 100);
            {
                let _inner = UnitScope::enter("inner_unit");
                counter!("work", 5);
                gauge!("size", 9);
                histogram!("latency", 300);
            }
            counter!("work", 1);
        }
        let r = report();
        // Global aggregate sees everything.
        assert_eq!(r.counter("work"), 8);
        assert_eq!(r.gauge("size"), 9);
        assert_eq!(r.histogram("latency").count(), 2);
        // Innermost attribution: inner unit got the 5, outer the 2+1.
        let outer = &r.units["outer_unit"];
        let inner = &r.units["inner_unit"];
        assert_eq!(outer.counters["work"], 3);
        assert_eq!(inner.counters["work"], 5);
        assert_eq!(inner.gauges["size"], 9);
        assert!(!outer.gauges.contains_key("size"));
        assert_eq!(outer.histograms["latency"].count(), 1);
        assert_eq!(inner.histograms["latency"].count(), 1);
        assert_eq!(outer.count, 1);
        assert!(outer.nanos >= inner.nanos);
        reset();
    }

    #[test]
    fn reentering_a_unit_merges_and_survives_threads_and_flush() {
        let _l = locked();
        reset();
        {
            let _u = UnitScope::enter("shared");
            counter!("ticks", 1);
        }
        flush_thread();
        std::thread::spawn(|| {
            let _u = UnitScope::enter("shared");
            counter!("ticks", 4);
        })
        .join()
        .unwrap();
        let r = report();
        let shared = &r.units["shared"];
        assert_eq!(shared.count, 2);
        assert_eq!(shared.counters["ticks"], 5);
        assert_eq!(r.counter("ticks"), 5);
        reset();
    }

    #[test]
    fn unit_scope_survives_contained_panic_via_scoped_fold() {
        let _l = locked();
        reset();
        let result = std::panic::catch_unwind(|| {
            let _fold = fold_on_drop();
            let _u = UnitScope::enter("doomed");
            counter!("doomed_work", 2);
            panic!("unit dies");
        });
        assert!(result.is_err());
        // The UnitGuard dropped (folding the frame into the thread's
        // table) before ScopedFold drained the table into the global.
        assert_eq!(report().units["doomed"].counters["doomed_work"], 2);
        reset();
    }

    #[test]
    fn report_json_round_trips_units_and_histograms() {
        let _l = locked();
        reset();
        {
            let _u = UnitScope::enter("u1");
            histogram!("h", 42);
            counter!("c", 3);
        }
        let r = report();
        let j = r.to_json().to_string();
        let parsed = Json::parse(&j).unwrap();
        let u1 = UnitReport::from_json(parsed.get("units").unwrap().get("u1").unwrap()).unwrap();
        assert_eq!(&u1, &r.units["u1"]);
        let h = Histogram::from_json(parsed.get("histograms").unwrap().get("h").unwrap()).unwrap();
        assert_eq!(h, r.histograms["h"]);
        reset();
    }

    #[test]
    fn render_text_sorts_siblings_and_sections_by_name() {
        let _l = locked();
        reset();
        {
            let _outer = Span::enter("zeta");
            {
                let _b = Span::enter("bravo");
            }
            let _a = Span::enter("alpha");
        }
        {
            let _first = Span::enter("apex");
        }
        histogram!("hist_b", 2);
        histogram!("hist_a", 1);
        let text = report().render_text();
        let apex = text.find("apex").unwrap();
        let zeta = text.find("zeta").unwrap();
        let alpha = text.find("alpha").unwrap();
        let bravo = text.find("bravo").unwrap();
        assert!(apex < zeta, "top-level spans sorted by name:\n{text}");
        assert!(alpha < bravo, "sibling children sorted by name:\n{text}");
        assert!(text.find("hist_a").unwrap() < text.find("hist_b").unwrap());
        reset();
    }

    #[test]
    fn flush_makes_live_worker_counters_visible_without_double_count() {
        let _l = locked();
        reset();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            counter!("worker_units", 2);
            gauge!("worker_peak", 7);
            flush_thread();
            ready_tx.send(()).unwrap();
            // Stay alive: without the flush the main thread could not
            // see this thread's counters yet.
            release_rx.recv().unwrap();
            counter!("worker_units", 1);
        });
        ready_rx.recv().unwrap();
        assert_eq!(report().counter("worker_units"), 2);
        assert_eq!(report().gauge("worker_peak"), 7);
        release_tx.send(()).unwrap();
        worker.join().unwrap();
        // Thread exit folds the post-flush remainder; no double count.
        assert_eq!(report().counter("worker_units"), 3);
        reset();
    }
}
